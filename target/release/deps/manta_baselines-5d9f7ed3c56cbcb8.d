/root/repo/target/release/deps/manta_baselines-5d9f7ed3c56cbcb8.d: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

/root/repo/target/release/deps/libmanta_baselines-5d9f7ed3c56cbcb8.rlib: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

/root/repo/target/release/deps/libmanta_baselines-5d9f7ed3c56cbcb8.rmeta: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

crates/manta-baselines/src/lib.rs:
crates/manta-baselines/src/bugtools.rs:
crates/manta-baselines/src/dirty.rs:
crates/manta-baselines/src/ghidra.rs:
crates/manta-baselines/src/retdec.rs:
crates/manta-baselines/src/retypd.rs:
crates/manta-baselines/src/tool.rs:
