/root/repo/target/release/deps/manta-104e5444f8c068ad.d: crates/manta-cli/src/main.rs

/root/repo/target/release/deps/manta-104e5444f8c068ad: crates/manta-cli/src/main.rs

crates/manta-cli/src/main.rs:
