/root/repo/target/release/deps/exp_all-8d6997fcbb3e8810.d: crates/manta-bench/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-8d6997fcbb3e8810: crates/manta-bench/src/bin/exp_all.rs

crates/manta-bench/src/bin/exp_all.rs:
