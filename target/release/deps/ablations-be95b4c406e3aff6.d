/root/repo/target/release/deps/ablations-be95b4c406e3aff6.d: crates/manta-bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-be95b4c406e3aff6: crates/manta-bench/benches/ablations.rs

crates/manta-bench/benches/ablations.rs:
