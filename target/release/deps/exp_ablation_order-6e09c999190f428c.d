/root/repo/target/release/deps/exp_ablation_order-6e09c999190f428c.d: crates/manta-bench/src/bin/exp_ablation_order.rs

/root/repo/target/release/deps/exp_ablation_order-6e09c999190f428c: crates/manta-bench/src/bin/exp_ablation_order.rs

crates/manta-bench/src/bin/exp_ablation_order.rs:
