/root/repo/target/release/deps/exp_table4-dad07f52712d70d9.d: crates/manta-bench/src/bin/exp_table4.rs

/root/repo/target/release/deps/exp_table4-dad07f52712d70d9: crates/manta-bench/src/bin/exp_table4.rs

crates/manta-bench/src/bin/exp_table4.rs:
