/root/repo/target/release/deps/exp_table5-802f71584ec6546c.d: crates/manta-bench/src/bin/exp_table5.rs

/root/repo/target/release/deps/exp_table5-802f71584ec6546c: crates/manta-bench/src/bin/exp_table5.rs

crates/manta-bench/src/bin/exp_table5.rs:
