/root/repo/target/release/deps/manta_tests-70b76c12f0376417.d: crates/manta-tests/src/lib.rs

/root/repo/target/release/deps/libmanta_tests-70b76c12f0376417.rlib: crates/manta-tests/src/lib.rs

/root/repo/target/release/deps/libmanta_tests-70b76c12f0376417.rmeta: crates/manta-tests/src/lib.rs

crates/manta-tests/src/lib.rs:
