/root/repo/target/release/deps/exp_ablation_order-74b903b1f9e66eaa.d: crates/manta-bench/src/bin/exp_ablation_order.rs

/root/repo/target/release/deps/exp_ablation_order-74b903b1f9e66eaa: crates/manta-bench/src/bin/exp_ablation_order.rs

crates/manta-bench/src/bin/exp_ablation_order.rs:
