/root/repo/target/release/deps/exp_table4-e85416853589f720.d: crates/manta-bench/src/bin/exp_table4.rs

/root/repo/target/release/deps/exp_table4-e85416853589f720: crates/manta-bench/src/bin/exp_table4.rs

crates/manta-bench/src/bin/exp_table4.rs:
