/root/repo/target/release/deps/exp_figure12-5eb76f7c1a01c79b.d: crates/manta-bench/src/bin/exp_figure12.rs

/root/repo/target/release/deps/exp_figure12-5eb76f7c1a01c79b: crates/manta-bench/src/bin/exp_figure12.rs

crates/manta-bench/src/bin/exp_figure12.rs:
