/root/repo/target/release/deps/exp_all-0cfda9fd54e9beed.d: crates/manta-bench/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-0cfda9fd54e9beed: crates/manta-bench/src/bin/exp_all.rs

crates/manta-bench/src/bin/exp_all.rs:
