/root/repo/target/release/deps/inference-8cc8e5f23eca0fff.d: crates/manta-bench/benches/inference.rs

/root/repo/target/release/deps/inference-8cc8e5f23eca0fff: crates/manta-bench/benches/inference.rs

crates/manta-bench/benches/inference.rs:
