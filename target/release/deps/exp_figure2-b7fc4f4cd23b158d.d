/root/repo/target/release/deps/exp_figure2-b7fc4f4cd23b158d.d: crates/manta-bench/src/bin/exp_figure2.rs

/root/repo/target/release/deps/exp_figure2-b7fc4f4cd23b158d: crates/manta-bench/src/bin/exp_figure2.rs

crates/manta-bench/src/bin/exp_figure2.rs:
