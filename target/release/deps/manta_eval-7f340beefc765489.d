/root/repo/target/release/deps/manta_eval-7f340beefc765489.d: crates/manta-eval/src/lib.rs crates/manta-eval/src/adapters.rs crates/manta-eval/src/experiments/mod.rs crates/manta-eval/src/experiments/ablation_order.rs crates/manta-eval/src/experiments/figure10.rs crates/manta-eval/src/experiments/figure11.rs crates/manta-eval/src/experiments/figure12.rs crates/manta-eval/src/experiments/figure2.rs crates/manta-eval/src/experiments/figure9.rs crates/manta-eval/src/experiments/table3.rs crates/manta-eval/src/experiments/table4.rs crates/manta-eval/src/experiments/table5.rs crates/manta-eval/src/metrics.rs crates/manta-eval/src/runner.rs crates/manta-eval/src/table.rs

/root/repo/target/release/deps/libmanta_eval-7f340beefc765489.rlib: crates/manta-eval/src/lib.rs crates/manta-eval/src/adapters.rs crates/manta-eval/src/experiments/mod.rs crates/manta-eval/src/experiments/ablation_order.rs crates/manta-eval/src/experiments/figure10.rs crates/manta-eval/src/experiments/figure11.rs crates/manta-eval/src/experiments/figure12.rs crates/manta-eval/src/experiments/figure2.rs crates/manta-eval/src/experiments/figure9.rs crates/manta-eval/src/experiments/table3.rs crates/manta-eval/src/experiments/table4.rs crates/manta-eval/src/experiments/table5.rs crates/manta-eval/src/metrics.rs crates/manta-eval/src/runner.rs crates/manta-eval/src/table.rs

/root/repo/target/release/deps/libmanta_eval-7f340beefc765489.rmeta: crates/manta-eval/src/lib.rs crates/manta-eval/src/adapters.rs crates/manta-eval/src/experiments/mod.rs crates/manta-eval/src/experiments/ablation_order.rs crates/manta-eval/src/experiments/figure10.rs crates/manta-eval/src/experiments/figure11.rs crates/manta-eval/src/experiments/figure12.rs crates/manta-eval/src/experiments/figure2.rs crates/manta-eval/src/experiments/figure9.rs crates/manta-eval/src/experiments/table3.rs crates/manta-eval/src/experiments/table4.rs crates/manta-eval/src/experiments/table5.rs crates/manta-eval/src/metrics.rs crates/manta-eval/src/runner.rs crates/manta-eval/src/table.rs

crates/manta-eval/src/lib.rs:
crates/manta-eval/src/adapters.rs:
crates/manta-eval/src/experiments/mod.rs:
crates/manta-eval/src/experiments/ablation_order.rs:
crates/manta-eval/src/experiments/figure10.rs:
crates/manta-eval/src/experiments/figure11.rs:
crates/manta-eval/src/experiments/figure12.rs:
crates/manta-eval/src/experiments/figure2.rs:
crates/manta-eval/src/experiments/figure9.rs:
crates/manta-eval/src/experiments/table3.rs:
crates/manta-eval/src/experiments/table4.rs:
crates/manta-eval/src/experiments/table5.rs:
crates/manta-eval/src/metrics.rs:
crates/manta-eval/src/runner.rs:
crates/manta-eval/src/table.rs:
