/root/repo/target/release/deps/manta_cli-c3ecaec6c41e4b6e.d: crates/manta-cli/src/lib.rs

/root/repo/target/release/deps/libmanta_cli-c3ecaec6c41e4b6e.rlib: crates/manta-cli/src/lib.rs

/root/repo/target/release/deps/libmanta_cli-c3ecaec6c41e4b6e.rmeta: crates/manta-cli/src/lib.rs

crates/manta-cli/src/lib.rs:
