/root/repo/target/release/deps/telemetry-c0c6a159fd92ee43.d: crates/manta-bench/benches/telemetry.rs

/root/repo/target/release/deps/telemetry-c0c6a159fd92ee43: crates/manta-bench/benches/telemetry.rs

crates/manta-bench/benches/telemetry.rs:
