/root/repo/target/release/deps/manta-0359e6861aaabd51.d: crates/manta/src/lib.rs crates/manta/src/classify.rs crates/manta/src/ctx_refine.rs crates/manta/src/flow_insensitive.rs crates/manta/src/flow_refine.rs crates/manta/src/interval.rs crates/manta/src/reveal.rs crates/manta/src/unify.rs

/root/repo/target/release/deps/libmanta-0359e6861aaabd51.rlib: crates/manta/src/lib.rs crates/manta/src/classify.rs crates/manta/src/ctx_refine.rs crates/manta/src/flow_insensitive.rs crates/manta/src/flow_refine.rs crates/manta/src/interval.rs crates/manta/src/reveal.rs crates/manta/src/unify.rs

/root/repo/target/release/deps/libmanta-0359e6861aaabd51.rmeta: crates/manta/src/lib.rs crates/manta/src/classify.rs crates/manta/src/ctx_refine.rs crates/manta/src/flow_insensitive.rs crates/manta/src/flow_refine.rs crates/manta/src/interval.rs crates/manta/src/reveal.rs crates/manta/src/unify.rs

crates/manta/src/lib.rs:
crates/manta/src/classify.rs:
crates/manta/src/ctx_refine.rs:
crates/manta/src/flow_insensitive.rs:
crates/manta/src/flow_refine.rs:
crates/manta/src/interval.rs:
crates/manta/src/reveal.rs:
crates/manta/src/unify.rs:
