/root/repo/target/release/deps/manta-b2d7f8f48f7116cf.d: crates/manta-cli/src/main.rs

/root/repo/target/release/deps/manta-b2d7f8f48f7116cf: crates/manta-cli/src/main.rs

crates/manta-cli/src/main.rs:
