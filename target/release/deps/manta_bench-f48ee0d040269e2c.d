/root/repo/target/release/deps/manta_bench-f48ee0d040269e2c.d: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

/root/repo/target/release/deps/libmanta_bench-f48ee0d040269e2c.rlib: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

/root/repo/target/release/deps/libmanta_bench-f48ee0d040269e2c.rmeta: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

crates/manta-bench/src/lib.rs:
crates/manta-bench/src/harness.rs:
