/root/repo/target/release/deps/exp_table5-2d975f30f8e24fe4.d: crates/manta-bench/src/bin/exp_table5.rs

/root/repo/target/release/deps/exp_table5-2d975f30f8e24fe4: crates/manta-bench/src/bin/exp_table5.rs

crates/manta-bench/src/bin/exp_table5.rs:
