/root/repo/target/release/deps/exp_figure9-95e11e884d713e7c.d: crates/manta-bench/src/bin/exp_figure9.rs

/root/repo/target/release/deps/exp_figure9-95e11e884d713e7c: crates/manta-bench/src/bin/exp_figure9.rs

crates/manta-bench/src/bin/exp_figure9.rs:
