/root/repo/target/release/deps/exp_table4-8f2bbc1c7b0bc21c.d: crates/manta-bench/src/bin/exp_table4.rs

/root/repo/target/release/deps/exp_table4-8f2bbc1c7b0bc21c: crates/manta-bench/src/bin/exp_table4.rs

crates/manta-bench/src/bin/exp_table4.rs:
