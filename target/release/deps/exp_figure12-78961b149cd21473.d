/root/repo/target/release/deps/exp_figure12-78961b149cd21473.d: crates/manta-bench/src/bin/exp_figure12.rs

/root/repo/target/release/deps/exp_figure12-78961b149cd21473: crates/manta-bench/src/bin/exp_figure12.rs

crates/manta-bench/src/bin/exp_figure12.rs:
