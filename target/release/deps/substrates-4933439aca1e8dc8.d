/root/repo/target/release/deps/substrates-4933439aca1e8dc8.d: crates/manta-bench/benches/substrates.rs

/root/repo/target/release/deps/substrates-4933439aca1e8dc8: crates/manta-bench/benches/substrates.rs

crates/manta-bench/benches/substrates.rs:
