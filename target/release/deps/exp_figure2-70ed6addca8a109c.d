/root/repo/target/release/deps/exp_figure2-70ed6addca8a109c.d: crates/manta-bench/src/bin/exp_figure2.rs

/root/repo/target/release/deps/exp_figure2-70ed6addca8a109c: crates/manta-bench/src/bin/exp_figure2.rs

crates/manta-bench/src/bin/exp_figure2.rs:
