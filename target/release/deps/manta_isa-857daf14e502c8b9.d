/root/repo/target/release/deps/manta_isa-857daf14e502c8b9.d: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

/root/repo/target/release/deps/libmanta_isa-857daf14e502c8b9.rlib: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

/root/repo/target/release/deps/libmanta_isa-857daf14e502c8b9.rmeta: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

crates/manta-isa/src/lib.rs:
crates/manta-isa/src/asm.rs:
crates/manta-isa/src/image.rs:
crates/manta-isa/src/inst.rs:
crates/manta-isa/src/lift.rs:
