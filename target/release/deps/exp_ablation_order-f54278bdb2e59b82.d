/root/repo/target/release/deps/exp_ablation_order-f54278bdb2e59b82.d: crates/manta-bench/src/bin/exp_ablation_order.rs

/root/repo/target/release/deps/exp_ablation_order-f54278bdb2e59b82: crates/manta-bench/src/bin/exp_ablation_order.rs

crates/manta-bench/src/bin/exp_ablation_order.rs:
