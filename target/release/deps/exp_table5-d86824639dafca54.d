/root/repo/target/release/deps/exp_table5-d86824639dafca54.d: crates/manta-bench/src/bin/exp_table5.rs

/root/repo/target/release/deps/exp_table5-d86824639dafca54: crates/manta-bench/src/bin/exp_table5.rs

crates/manta-bench/src/bin/exp_table5.rs:
