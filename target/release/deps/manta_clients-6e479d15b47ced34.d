/root/repo/target/release/deps/manta_clients-6e479d15b47ced34.d: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs

/root/repo/target/release/deps/libmanta_clients-6e479d15b47ced34.rlib: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs

/root/repo/target/release/deps/libmanta_clients-6e479d15b47ced34.rmeta: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs

crates/manta-clients/src/lib.rs:
crates/manta-clients/src/checkers.rs:
crates/manta-clients/src/custom.rs:
crates/manta-clients/src/ddg_prune.rs:
crates/manta-clients/src/icall.rs:
crates/manta-clients/src/slicing.rs:
