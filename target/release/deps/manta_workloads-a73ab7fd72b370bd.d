/root/repo/target/release/deps/manta_workloads-a73ab7fd72b370bd.d: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

/root/repo/target/release/deps/libmanta_workloads-a73ab7fd72b370bd.rlib: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

/root/repo/target/release/deps/libmanta_workloads-a73ab7fd72b370bd.rmeta: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

crates/manta-workloads/src/lib.rs:
crates/manta-workloads/src/firmware.rs:
crates/manta-workloads/src/generator.rs:
crates/manta-workloads/src/mix.rs:
crates/manta-workloads/src/projects.rs:
crates/manta-workloads/src/rng.rs:
crates/manta-workloads/src/truth.rs:
