/root/repo/target/release/deps/exp_table3-afea1b7f88f03ce7.d: crates/manta-bench/src/bin/exp_table3.rs

/root/repo/target/release/deps/exp_table3-afea1b7f88f03ce7: crates/manta-bench/src/bin/exp_table3.rs

crates/manta-bench/src/bin/exp_table3.rs:
