/root/repo/target/release/deps/manta_baselines-e1453c3055a51d34.d: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

/root/repo/target/release/deps/libmanta_baselines-e1453c3055a51d34.rlib: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

/root/repo/target/release/deps/libmanta_baselines-e1453c3055a51d34.rmeta: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

crates/manta-baselines/src/lib.rs:
crates/manta-baselines/src/bugtools.rs:
crates/manta-baselines/src/dirty.rs:
crates/manta-baselines/src/ghidra.rs:
crates/manta-baselines/src/retdec.rs:
crates/manta-baselines/src/retypd.rs:
crates/manta-baselines/src/tool.rs:
