/root/repo/target/release/deps/exp_table3-2905efab3f5c5351.d: crates/manta-bench/src/bin/exp_table3.rs

/root/repo/target/release/deps/exp_table3-2905efab3f5c5351: crates/manta-bench/src/bin/exp_table3.rs

crates/manta-bench/src/bin/exp_table3.rs:
