/root/repo/target/release/deps/manta_telemetry-98ce9e40d41d4016.d: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

/root/repo/target/release/deps/libmanta_telemetry-98ce9e40d41d4016.rlib: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

/root/repo/target/release/deps/libmanta_telemetry-98ce9e40d41d4016.rmeta: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

crates/manta-telemetry/src/lib.rs:
crates/manta-telemetry/src/json.rs:
crates/manta-telemetry/src/metrics.rs:
crates/manta-telemetry/src/report.rs:
crates/manta-telemetry/src/sink.rs:
crates/manta-telemetry/src/span.rs:
