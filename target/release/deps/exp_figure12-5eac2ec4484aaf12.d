/root/repo/target/release/deps/exp_figure12-5eac2ec4484aaf12.d: crates/manta-bench/src/bin/exp_figure12.rs

/root/repo/target/release/deps/exp_figure12-5eac2ec4484aaf12: crates/manta-bench/src/bin/exp_figure12.rs

crates/manta-bench/src/bin/exp_figure12.rs:
