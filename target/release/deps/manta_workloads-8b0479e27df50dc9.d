/root/repo/target/release/deps/manta_workloads-8b0479e27df50dc9.d: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

/root/repo/target/release/deps/libmanta_workloads-8b0479e27df50dc9.rlib: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

/root/repo/target/release/deps/libmanta_workloads-8b0479e27df50dc9.rmeta: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

crates/manta-workloads/src/lib.rs:
crates/manta-workloads/src/firmware.rs:
crates/manta-workloads/src/generator.rs:
crates/manta-workloads/src/mix.rs:
crates/manta-workloads/src/projects.rs:
crates/manta-workloads/src/rng.rs:
crates/manta-workloads/src/truth.rs:
