/root/repo/target/release/deps/manta_telemetry-f64d51c755b45e5b.d: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

/root/repo/target/release/deps/libmanta_telemetry-f64d51c755b45e5b.rlib: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

/root/repo/target/release/deps/libmanta_telemetry-f64d51c755b45e5b.rmeta: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

crates/manta-telemetry/src/lib.rs:
crates/manta-telemetry/src/json.rs:
crates/manta-telemetry/src/metrics.rs:
crates/manta-telemetry/src/report.rs:
crates/manta-telemetry/src/sink.rs:
crates/manta-telemetry/src/span.rs:
