/root/repo/target/release/deps/exp_figure10-02eb4e1d35f07bbd.d: crates/manta-bench/src/bin/exp_figure10.rs

/root/repo/target/release/deps/exp_figure10-02eb4e1d35f07bbd: crates/manta-bench/src/bin/exp_figure10.rs

crates/manta-bench/src/bin/exp_figure10.rs:
