/root/repo/target/release/deps/exp_table3-caeaa02599e2a7b4.d: crates/manta-bench/src/bin/exp_table3.rs

/root/repo/target/release/deps/exp_table3-caeaa02599e2a7b4: crates/manta-bench/src/bin/exp_table3.rs

crates/manta-bench/src/bin/exp_table3.rs:
