/root/repo/target/release/deps/exp_figure2-20357fb569e45c15.d: crates/manta-bench/src/bin/exp_figure2.rs

/root/repo/target/release/deps/exp_figure2-20357fb569e45c15: crates/manta-bench/src/bin/exp_figure2.rs

crates/manta-bench/src/bin/exp_figure2.rs:
