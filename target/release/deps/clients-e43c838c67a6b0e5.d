/root/repo/target/release/deps/clients-e43c838c67a6b0e5.d: crates/manta-bench/benches/clients.rs

/root/repo/target/release/deps/clients-e43c838c67a6b0e5: crates/manta-bench/benches/clients.rs

crates/manta-bench/benches/clients.rs:
