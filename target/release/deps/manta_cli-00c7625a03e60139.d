/root/repo/target/release/deps/manta_cli-00c7625a03e60139.d: crates/manta-cli/src/lib.rs

/root/repo/target/release/deps/libmanta_cli-00c7625a03e60139.rlib: crates/manta-cli/src/lib.rs

/root/repo/target/release/deps/libmanta_cli-00c7625a03e60139.rmeta: crates/manta-cli/src/lib.rs

crates/manta-cli/src/lib.rs:
