/root/repo/target/release/deps/exp_figure9-83d711fe79afef3c.d: crates/manta-bench/src/bin/exp_figure9.rs

/root/repo/target/release/deps/exp_figure9-83d711fe79afef3c: crates/manta-bench/src/bin/exp_figure9.rs

crates/manta-bench/src/bin/exp_figure9.rs:
