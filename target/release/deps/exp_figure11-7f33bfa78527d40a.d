/root/repo/target/release/deps/exp_figure11-7f33bfa78527d40a.d: crates/manta-bench/src/bin/exp_figure11.rs

/root/repo/target/release/deps/exp_figure11-7f33bfa78527d40a: crates/manta-bench/src/bin/exp_figure11.rs

crates/manta-bench/src/bin/exp_figure11.rs:
