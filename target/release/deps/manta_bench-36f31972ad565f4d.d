/root/repo/target/release/deps/manta_bench-36f31972ad565f4d.d: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

/root/repo/target/release/deps/manta_bench-36f31972ad565f4d: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

crates/manta-bench/src/lib.rs:
crates/manta-bench/src/harness.rs:
