/root/repo/target/release/deps/exp_figure10-4a2255849b3c913e.d: crates/manta-bench/src/bin/exp_figure10.rs

/root/repo/target/release/deps/exp_figure10-4a2255849b3c913e: crates/manta-bench/src/bin/exp_figure10.rs

crates/manta-bench/src/bin/exp_figure10.rs:
