/root/repo/target/release/deps/exp_all-28834d485f1a57e5.d: crates/manta-bench/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-28834d485f1a57e5: crates/manta-bench/src/bin/exp_all.rs

crates/manta-bench/src/bin/exp_all.rs:
