/root/repo/target/release/deps/manta_isa-a5e07b4d568b2359.d: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

/root/repo/target/release/deps/libmanta_isa-a5e07b4d568b2359.rlib: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

/root/repo/target/release/deps/libmanta_isa-a5e07b4d568b2359.rmeta: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

crates/manta-isa/src/lib.rs:
crates/manta-isa/src/asm.rs:
crates/manta-isa/src/image.rs:
crates/manta-isa/src/inst.rs:
crates/manta-isa/src/lift.rs:
