/root/repo/target/release/deps/manta_bench-942f66978e013ccf.d: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

/root/repo/target/release/deps/libmanta_bench-942f66978e013ccf.rlib: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

/root/repo/target/release/deps/libmanta_bench-942f66978e013ccf.rmeta: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

crates/manta-bench/src/lib.rs:
crates/manta-bench/src/harness.rs:
