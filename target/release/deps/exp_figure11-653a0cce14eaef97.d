/root/repo/target/release/deps/exp_figure11-653a0cce14eaef97.d: crates/manta-bench/src/bin/exp_figure11.rs

/root/repo/target/release/deps/exp_figure11-653a0cce14eaef97: crates/manta-bench/src/bin/exp_figure11.rs

crates/manta-bench/src/bin/exp_figure11.rs:
