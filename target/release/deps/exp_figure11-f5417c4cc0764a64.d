/root/repo/target/release/deps/exp_figure11-f5417c4cc0764a64.d: crates/manta-bench/src/bin/exp_figure11.rs

/root/repo/target/release/deps/exp_figure11-f5417c4cc0764a64: crates/manta-bench/src/bin/exp_figure11.rs

crates/manta-bench/src/bin/exp_figure11.rs:
