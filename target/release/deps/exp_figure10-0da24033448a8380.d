/root/repo/target/release/deps/exp_figure10-0da24033448a8380.d: crates/manta-bench/src/bin/exp_figure10.rs

/root/repo/target/release/deps/exp_figure10-0da24033448a8380: crates/manta-bench/src/bin/exp_figure10.rs

crates/manta-bench/src/bin/exp_figure10.rs:
