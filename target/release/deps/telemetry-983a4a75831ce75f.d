/root/repo/target/release/deps/telemetry-983a4a75831ce75f.d: crates/manta-bench/benches/telemetry.rs

/root/repo/target/release/deps/telemetry-983a4a75831ce75f: crates/manta-bench/benches/telemetry.rs

crates/manta-bench/benches/telemetry.rs:
