/root/repo/target/release/deps/exp_figure9-db12224a8bde51ec.d: crates/manta-bench/src/bin/exp_figure9.rs

/root/repo/target/release/deps/exp_figure9-db12224a8bde51ec: crates/manta-bench/src/bin/exp_figure9.rs

crates/manta-bench/src/bin/exp_figure9.rs:
