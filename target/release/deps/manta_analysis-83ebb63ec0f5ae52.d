/root/repo/target/release/deps/manta_analysis-83ebb63ec0f5ae52.d: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs

/root/repo/target/release/deps/libmanta_analysis-83ebb63ec0f5ae52.rlib: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs

/root/repo/target/release/deps/libmanta_analysis-83ebb63ec0f5ae52.rmeta: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs

crates/manta-analysis/src/lib.rs:
crates/manta-analysis/src/callgraph.rs:
crates/manta-analysis/src/cfl.rs:
crates/manta-analysis/src/ddg.rs:
crates/manta-analysis/src/pointsto.rs:
crates/manta-analysis/src/preprocess.rs:
