/root/repo/target/debug/deps/exp_figure2-7a3fc3d8ffd5afaf.d: crates/manta-bench/src/bin/exp_figure2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure2-7a3fc3d8ffd5afaf.rmeta: crates/manta-bench/src/bin/exp_figure2.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
