/root/repo/target/debug/deps/exp_figure11-3e225cb1ec71c8dc.d: crates/manta-bench/src/bin/exp_figure11.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure11-3e225cb1ec71c8dc.rmeta: crates/manta-bench/src/bin/exp_figure11.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
