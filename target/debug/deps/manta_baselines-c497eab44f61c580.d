/root/repo/target/debug/deps/manta_baselines-c497eab44f61c580.d: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

/root/repo/target/debug/deps/manta_baselines-c497eab44f61c580: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

crates/manta-baselines/src/lib.rs:
crates/manta-baselines/src/bugtools.rs:
crates/manta-baselines/src/dirty.rs:
crates/manta-baselines/src/ghidra.rs:
crates/manta-baselines/src/retdec.rs:
crates/manta-baselines/src/retypd.rs:
crates/manta-baselines/src/tool.rs:
