/root/repo/target/debug/deps/exp_figure9-666477c389108bc4.d: crates/manta-bench/src/bin/exp_figure9.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure9-666477c389108bc4.rmeta: crates/manta-bench/src/bin/exp_figure9.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
