/root/repo/target/debug/deps/manta_isa-f6c95ea4850389c1.d: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

/root/repo/target/debug/deps/manta_isa-f6c95ea4850389c1: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

crates/manta-isa/src/lib.rs:
crates/manta-isa/src/asm.rs:
crates/manta-isa/src/image.rs:
crates/manta-isa/src/inst.rs:
crates/manta-isa/src/lift.rs:
