/root/repo/target/debug/deps/exp_figure12-e2f0378444a21d06.d: crates/manta-bench/src/bin/exp_figure12.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure12-e2f0378444a21d06.rmeta: crates/manta-bench/src/bin/exp_figure12.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
