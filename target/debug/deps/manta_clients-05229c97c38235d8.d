/root/repo/target/debug/deps/manta_clients-05229c97c38235d8.d: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs

/root/repo/target/debug/deps/manta_clients-05229c97c38235d8: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs

crates/manta-clients/src/lib.rs:
crates/manta-clients/src/checkers.rs:
crates/manta-clients/src/custom.rs:
crates/manta-clients/src/ddg_prune.rs:
crates/manta-clients/src/icall.rs:
crates/manta-clients/src/slicing.rs:
