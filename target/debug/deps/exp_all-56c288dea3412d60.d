/root/repo/target/debug/deps/exp_all-56c288dea3412d60.d: crates/manta-bench/src/bin/exp_all.rs Cargo.toml

/root/repo/target/debug/deps/libexp_all-56c288dea3412d60.rmeta: crates/manta-bench/src/bin/exp_all.rs Cargo.toml

crates/manta-bench/src/bin/exp_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
