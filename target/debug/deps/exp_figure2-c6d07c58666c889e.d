/root/repo/target/debug/deps/exp_figure2-c6d07c58666c889e.d: crates/manta-bench/src/bin/exp_figure2.rs

/root/repo/target/debug/deps/exp_figure2-c6d07c58666c889e: crates/manta-bench/src/bin/exp_figure2.rs

crates/manta-bench/src/bin/exp_figure2.rs:
