/root/repo/target/debug/deps/manta-0cb9a5d3ba9e1895.d: crates/manta-cli/src/main.rs

/root/repo/target/debug/deps/manta-0cb9a5d3ba9e1895: crates/manta-cli/src/main.rs

crates/manta-cli/src/main.rs:
