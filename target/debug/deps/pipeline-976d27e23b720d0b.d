/root/repo/target/debug/deps/pipeline-976d27e23b720d0b.d: crates/manta-tests/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-976d27e23b720d0b: crates/manta-tests/../../tests/pipeline.rs

crates/manta-tests/../../tests/pipeline.rs:
