/root/repo/target/debug/deps/manta-208dc27da92e9d24.d: crates/manta-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmanta-208dc27da92e9d24.rmeta: crates/manta-cli/src/main.rs Cargo.toml

crates/manta-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
