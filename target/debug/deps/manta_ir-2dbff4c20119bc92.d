/root/repo/target/debug/deps/manta_ir-2dbff4c20119bc92.d: crates/manta-ir/src/lib.rs crates/manta-ir/src/builder.rs crates/manta-ir/src/cfg.rs crates/manta-ir/src/dom.rs crates/manta-ir/src/externs.rs crates/manta-ir/src/function.rs crates/manta-ir/src/ids.rs crates/manta-ir/src/inst.rs crates/manta-ir/src/module.rs crates/manta-ir/src/parser.rs crates/manta-ir/src/printer.rs crates/manta-ir/src/types.rs crates/manta-ir/src/value.rs crates/manta-ir/src/verify.rs

/root/repo/target/debug/deps/manta_ir-2dbff4c20119bc92: crates/manta-ir/src/lib.rs crates/manta-ir/src/builder.rs crates/manta-ir/src/cfg.rs crates/manta-ir/src/dom.rs crates/manta-ir/src/externs.rs crates/manta-ir/src/function.rs crates/manta-ir/src/ids.rs crates/manta-ir/src/inst.rs crates/manta-ir/src/module.rs crates/manta-ir/src/parser.rs crates/manta-ir/src/printer.rs crates/manta-ir/src/types.rs crates/manta-ir/src/value.rs crates/manta-ir/src/verify.rs

crates/manta-ir/src/lib.rs:
crates/manta-ir/src/builder.rs:
crates/manta-ir/src/cfg.rs:
crates/manta-ir/src/dom.rs:
crates/manta-ir/src/externs.rs:
crates/manta-ir/src/function.rs:
crates/manta-ir/src/ids.rs:
crates/manta-ir/src/inst.rs:
crates/manta-ir/src/module.rs:
crates/manta-ir/src/parser.rs:
crates/manta-ir/src/printer.rs:
crates/manta-ir/src/types.rs:
crates/manta-ir/src/value.rs:
crates/manta-ir/src/verify.rs:
