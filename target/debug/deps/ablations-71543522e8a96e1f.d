/root/repo/target/debug/deps/ablations-71543522e8a96e1f.d: crates/manta-bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-71543522e8a96e1f.rmeta: crates/manta-bench/benches/ablations.rs Cargo.toml

crates/manta-bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
