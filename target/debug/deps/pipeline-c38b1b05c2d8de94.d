/root/repo/target/debug/deps/pipeline-c38b1b05c2d8de94.d: crates/manta-tests/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-c38b1b05c2d8de94.rmeta: crates/manta-tests/../../tests/pipeline.rs Cargo.toml

crates/manta-tests/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
