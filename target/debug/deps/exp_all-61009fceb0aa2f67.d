/root/repo/target/debug/deps/exp_all-61009fceb0aa2f67.d: crates/manta-bench/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-61009fceb0aa2f67: crates/manta-bench/src/bin/exp_all.rs

crates/manta-bench/src/bin/exp_all.rs:
