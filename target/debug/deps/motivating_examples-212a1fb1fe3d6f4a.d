/root/repo/target/debug/deps/motivating_examples-212a1fb1fe3d6f4a.d: crates/manta-tests/../../tests/motivating_examples.rs

/root/repo/target/debug/deps/motivating_examples-212a1fb1fe3d6f4a: crates/manta-tests/../../tests/motivating_examples.rs

crates/manta-tests/../../tests/motivating_examples.rs:
