/root/repo/target/debug/deps/telemetry-015861edb275b6cb.d: crates/manta-bench/benches/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-015861edb275b6cb.rmeta: crates/manta-bench/benches/telemetry.rs Cargo.toml

crates/manta-bench/benches/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
