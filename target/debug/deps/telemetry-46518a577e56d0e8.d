/root/repo/target/debug/deps/telemetry-46518a577e56d0e8.d: crates/manta-telemetry/tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-46518a577e56d0e8.rmeta: crates/manta-telemetry/tests/telemetry.rs Cargo.toml

crates/manta-telemetry/tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
