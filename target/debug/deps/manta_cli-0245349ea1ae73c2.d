/root/repo/target/debug/deps/manta_cli-0245349ea1ae73c2.d: crates/manta-cli/src/lib.rs

/root/repo/target/debug/deps/manta_cli-0245349ea1ae73c2: crates/manta-cli/src/lib.rs

crates/manta-cli/src/lib.rs:
