/root/repo/target/debug/deps/experiment_shapes-f9c3b0ec25f5a6d9.d: crates/manta-tests/../../tests/experiment_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libexperiment_shapes-f9c3b0ec25f5a6d9.rmeta: crates/manta-tests/../../tests/experiment_shapes.rs Cargo.toml

crates/manta-tests/../../tests/experiment_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
