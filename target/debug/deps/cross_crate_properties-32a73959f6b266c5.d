/root/repo/target/debug/deps/cross_crate_properties-32a73959f6b266c5.d: crates/manta-tests/../../tests/cross_crate_properties.rs

/root/repo/target/debug/deps/cross_crate_properties-32a73959f6b266c5: crates/manta-tests/../../tests/cross_crate_properties.rs

crates/manta-tests/../../tests/cross_crate_properties.rs:
