/root/repo/target/debug/deps/exp_figure11-9edae623647c2867.d: crates/manta-bench/src/bin/exp_figure11.rs

/root/repo/target/debug/deps/exp_figure11-9edae623647c2867: crates/manta-bench/src/bin/exp_figure11.rs

crates/manta-bench/src/bin/exp_figure11.rs:
