/root/repo/target/debug/deps/manta_bench-ac3b6034c01cef11.d: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

/root/repo/target/debug/deps/manta_bench-ac3b6034c01cef11: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

crates/manta-bench/src/lib.rs:
crates/manta-bench/src/harness.rs:
