/root/repo/target/debug/deps/manta_cli-efe952c4fc500864.d: crates/manta-cli/src/lib.rs

/root/repo/target/debug/deps/manta_cli-efe952c4fc500864: crates/manta-cli/src/lib.rs

crates/manta-cli/src/lib.rs:
