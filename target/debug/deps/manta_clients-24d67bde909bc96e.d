/root/repo/target/debug/deps/manta_clients-24d67bde909bc96e.d: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs

/root/repo/target/debug/deps/libmanta_clients-24d67bde909bc96e.rlib: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs

/root/repo/target/debug/deps/libmanta_clients-24d67bde909bc96e.rmeta: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs

crates/manta-clients/src/lib.rs:
crates/manta-clients/src/checkers.rs:
crates/manta-clients/src/custom.rs:
crates/manta-clients/src/ddg_prune.rs:
crates/manta-clients/src/icall.rs:
crates/manta-clients/src/slicing.rs:
