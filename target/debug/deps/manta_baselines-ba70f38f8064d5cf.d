/root/repo/target/debug/deps/manta_baselines-ba70f38f8064d5cf.d: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

/root/repo/target/debug/deps/libmanta_baselines-ba70f38f8064d5cf.rlib: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

/root/repo/target/debug/deps/libmanta_baselines-ba70f38f8064d5cf.rmeta: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs

crates/manta-baselines/src/lib.rs:
crates/manta-baselines/src/bugtools.rs:
crates/manta-baselines/src/dirty.rs:
crates/manta-baselines/src/ghidra.rs:
crates/manta-baselines/src/retdec.rs:
crates/manta-baselines/src/retypd.rs:
crates/manta-baselines/src/tool.rs:
