/root/repo/target/debug/deps/manta_eval-9293045a8eb1ab83.d: crates/manta-eval/src/lib.rs crates/manta-eval/src/adapters.rs crates/manta-eval/src/experiments/mod.rs crates/manta-eval/src/experiments/ablation_order.rs crates/manta-eval/src/experiments/figure10.rs crates/manta-eval/src/experiments/figure11.rs crates/manta-eval/src/experiments/figure12.rs crates/manta-eval/src/experiments/figure2.rs crates/manta-eval/src/experiments/figure9.rs crates/manta-eval/src/experiments/table3.rs crates/manta-eval/src/experiments/table4.rs crates/manta-eval/src/experiments/table5.rs crates/manta-eval/src/metrics.rs crates/manta-eval/src/runner.rs crates/manta-eval/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_eval-9293045a8eb1ab83.rmeta: crates/manta-eval/src/lib.rs crates/manta-eval/src/adapters.rs crates/manta-eval/src/experiments/mod.rs crates/manta-eval/src/experiments/ablation_order.rs crates/manta-eval/src/experiments/figure10.rs crates/manta-eval/src/experiments/figure11.rs crates/manta-eval/src/experiments/figure12.rs crates/manta-eval/src/experiments/figure2.rs crates/manta-eval/src/experiments/figure9.rs crates/manta-eval/src/experiments/table3.rs crates/manta-eval/src/experiments/table4.rs crates/manta-eval/src/experiments/table5.rs crates/manta-eval/src/metrics.rs crates/manta-eval/src/runner.rs crates/manta-eval/src/table.rs Cargo.toml

crates/manta-eval/src/lib.rs:
crates/manta-eval/src/adapters.rs:
crates/manta-eval/src/experiments/mod.rs:
crates/manta-eval/src/experiments/ablation_order.rs:
crates/manta-eval/src/experiments/figure10.rs:
crates/manta-eval/src/experiments/figure11.rs:
crates/manta-eval/src/experiments/figure12.rs:
crates/manta-eval/src/experiments/figure2.rs:
crates/manta-eval/src/experiments/figure9.rs:
crates/manta-eval/src/experiments/table3.rs:
crates/manta-eval/src/experiments/table4.rs:
crates/manta-eval/src/experiments/table5.rs:
crates/manta-eval/src/metrics.rs:
crates/manta-eval/src/runner.rs:
crates/manta-eval/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
