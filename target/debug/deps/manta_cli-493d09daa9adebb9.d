/root/repo/target/debug/deps/manta_cli-493d09daa9adebb9.d: crates/manta-cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_cli-493d09daa9adebb9.rmeta: crates/manta-cli/src/lib.rs Cargo.toml

crates/manta-cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
