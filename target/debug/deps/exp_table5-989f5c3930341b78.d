/root/repo/target/debug/deps/exp_table5-989f5c3930341b78.d: crates/manta-bench/src/bin/exp_table5.rs

/root/repo/target/debug/deps/exp_table5-989f5c3930341b78: crates/manta-bench/src/bin/exp_table5.rs

crates/manta-bench/src/bin/exp_table5.rs:
