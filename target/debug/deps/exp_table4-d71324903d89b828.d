/root/repo/target/debug/deps/exp_table4-d71324903d89b828.d: crates/manta-bench/src/bin/exp_table4.rs

/root/repo/target/debug/deps/exp_table4-d71324903d89b828: crates/manta-bench/src/bin/exp_table4.rs

crates/manta-bench/src/bin/exp_table4.rs:
