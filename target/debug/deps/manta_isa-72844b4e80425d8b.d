/root/repo/target/debug/deps/manta_isa-72844b4e80425d8b.d: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

/root/repo/target/debug/deps/libmanta_isa-72844b4e80425d8b.rlib: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

/root/repo/target/debug/deps/libmanta_isa-72844b4e80425d8b.rmeta: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs

crates/manta-isa/src/lib.rs:
crates/manta-isa/src/asm.rs:
crates/manta-isa/src/image.rs:
crates/manta-isa/src/inst.rs:
crates/manta-isa/src/lift.rs:
