/root/repo/target/debug/deps/manta-b77c26e5e8802478.d: crates/manta-cli/src/main.rs

/root/repo/target/debug/deps/manta-b77c26e5e8802478: crates/manta-cli/src/main.rs

crates/manta-cli/src/main.rs:
