/root/repo/target/debug/deps/exp_ablation_order-ac758492079bf884.d: crates/manta-bench/src/bin/exp_ablation_order.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_order-ac758492079bf884.rmeta: crates/manta-bench/src/bin/exp_ablation_order.rs Cargo.toml

crates/manta-bench/src/bin/exp_ablation_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
