/root/repo/target/debug/deps/cross_crate_properties-22e1fdb72a8d3a39.d: crates/manta-tests/../../tests/cross_crate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate_properties-22e1fdb72a8d3a39.rmeta: crates/manta-tests/../../tests/cross_crate_properties.rs Cargo.toml

crates/manta-tests/../../tests/cross_crate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
