/root/repo/target/debug/deps/manta_cli-0422cb5da0f5f2b8.d: crates/manta-cli/src/lib.rs

/root/repo/target/debug/deps/libmanta_cli-0422cb5da0f5f2b8.rlib: crates/manta-cli/src/lib.rs

/root/repo/target/debug/deps/libmanta_cli-0422cb5da0f5f2b8.rmeta: crates/manta-cli/src/lib.rs

crates/manta-cli/src/lib.rs:
