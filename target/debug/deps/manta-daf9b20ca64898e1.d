/root/repo/target/debug/deps/manta-daf9b20ca64898e1.d: crates/manta-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmanta-daf9b20ca64898e1.rmeta: crates/manta-cli/src/main.rs Cargo.toml

crates/manta-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
