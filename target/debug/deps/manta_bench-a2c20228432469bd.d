/root/repo/target/debug/deps/manta_bench-a2c20228432469bd.d: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_bench-a2c20228432469bd.rmeta: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs Cargo.toml

crates/manta-bench/src/lib.rs:
crates/manta-bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
