/root/repo/target/debug/deps/clients_behavior-5b1eb52a274cb266.d: crates/manta-tests/../../tests/clients_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libclients_behavior-5b1eb52a274cb266.rmeta: crates/manta-tests/../../tests/clients_behavior.rs Cargo.toml

crates/manta-tests/../../tests/clients_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
