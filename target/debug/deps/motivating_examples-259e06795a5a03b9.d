/root/repo/target/debug/deps/motivating_examples-259e06795a5a03b9.d: crates/manta-tests/../../tests/motivating_examples.rs Cargo.toml

/root/repo/target/debug/deps/libmotivating_examples-259e06795a5a03b9.rmeta: crates/manta-tests/../../tests/motivating_examples.rs Cargo.toml

crates/manta-tests/../../tests/motivating_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
