/root/repo/target/debug/deps/manta_tests-788fac7ae57e39e0.d: crates/manta-tests/src/lib.rs

/root/repo/target/debug/deps/manta_tests-788fac7ae57e39e0: crates/manta-tests/src/lib.rs

crates/manta-tests/src/lib.rs:
