/root/repo/target/debug/deps/manta_analysis-d15fbe0f7d270d2f.d: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_analysis-d15fbe0f7d270d2f.rmeta: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs Cargo.toml

crates/manta-analysis/src/lib.rs:
crates/manta-analysis/src/callgraph.rs:
crates/manta-analysis/src/cfl.rs:
crates/manta-analysis/src/ddg.rs:
crates/manta-analysis/src/pointsto.rs:
crates/manta-analysis/src/preprocess.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
