/root/repo/target/debug/deps/exp_figure9-52326224d9886946.d: crates/manta-bench/src/bin/exp_figure9.rs

/root/repo/target/debug/deps/exp_figure9-52326224d9886946: crates/manta-bench/src/bin/exp_figure9.rs

crates/manta-bench/src/bin/exp_figure9.rs:
