/root/repo/target/debug/deps/telemetry-3b6e644b93fbe298.d: crates/manta-telemetry/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-3b6e644b93fbe298: crates/manta-telemetry/tests/telemetry.rs

crates/manta-telemetry/tests/telemetry.rs:
