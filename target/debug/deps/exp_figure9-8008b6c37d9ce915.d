/root/repo/target/debug/deps/exp_figure9-8008b6c37d9ce915.d: crates/manta-bench/src/bin/exp_figure9.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure9-8008b6c37d9ce915.rmeta: crates/manta-bench/src/bin/exp_figure9.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
