/root/repo/target/debug/deps/manta_baselines-fb277deb1a05798e.d: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_baselines-fb277deb1a05798e.rmeta: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs Cargo.toml

crates/manta-baselines/src/lib.rs:
crates/manta-baselines/src/bugtools.rs:
crates/manta-baselines/src/dirty.rs:
crates/manta-baselines/src/ghidra.rs:
crates/manta-baselines/src/retdec.rs:
crates/manta-baselines/src/retypd.rs:
crates/manta-baselines/src/tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
