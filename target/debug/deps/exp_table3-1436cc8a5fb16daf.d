/root/repo/target/debug/deps/exp_table3-1436cc8a5fb16daf.d: crates/manta-bench/src/bin/exp_table3.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table3-1436cc8a5fb16daf.rmeta: crates/manta-bench/src/bin/exp_table3.rs Cargo.toml

crates/manta-bench/src/bin/exp_table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
