/root/repo/target/debug/deps/exp_all-c4aa92ca0d604c5b.d: crates/manta-bench/src/bin/exp_all.rs Cargo.toml

/root/repo/target/debug/deps/libexp_all-c4aa92ca0d604c5b.rmeta: crates/manta-bench/src/bin/exp_all.rs Cargo.toml

crates/manta-bench/src/bin/exp_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
