/root/repo/target/debug/deps/manta_workloads-be95ed7e1ff180b7.d: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_workloads-be95ed7e1ff180b7.rmeta: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs Cargo.toml

crates/manta-workloads/src/lib.rs:
crates/manta-workloads/src/firmware.rs:
crates/manta-workloads/src/generator.rs:
crates/manta-workloads/src/mix.rs:
crates/manta-workloads/src/projects.rs:
crates/manta-workloads/src/rng.rs:
crates/manta-workloads/src/truth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
