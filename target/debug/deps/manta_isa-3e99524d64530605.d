/root/repo/target/debug/deps/manta_isa-3e99524d64530605.d: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_isa-3e99524d64530605.rmeta: crates/manta-isa/src/lib.rs crates/manta-isa/src/asm.rs crates/manta-isa/src/image.rs crates/manta-isa/src/inst.rs crates/manta-isa/src/lift.rs Cargo.toml

crates/manta-isa/src/lib.rs:
crates/manta-isa/src/asm.rs:
crates/manta-isa/src/image.rs:
crates/manta-isa/src/inst.rs:
crates/manta-isa/src/lift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
