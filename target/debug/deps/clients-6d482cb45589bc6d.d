/root/repo/target/debug/deps/clients-6d482cb45589bc6d.d: crates/manta-bench/benches/clients.rs Cargo.toml

/root/repo/target/debug/deps/libclients-6d482cb45589bc6d.rmeta: crates/manta-bench/benches/clients.rs Cargo.toml

crates/manta-bench/benches/clients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
