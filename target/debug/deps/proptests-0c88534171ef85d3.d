/root/repo/target/debug/deps/proptests-0c88534171ef85d3.d: crates/manta-isa/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0c88534171ef85d3: crates/manta-isa/tests/proptests.rs

crates/manta-isa/tests/proptests.rs:
