/root/repo/target/debug/deps/exp_table5-62603b55cc2757eb.d: crates/manta-bench/src/bin/exp_table5.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table5-62603b55cc2757eb.rmeta: crates/manta-bench/src/bin/exp_table5.rs Cargo.toml

crates/manta-bench/src/bin/exp_table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
