/root/repo/target/debug/deps/manta_cli-e2915a9bf95f753a.d: crates/manta-cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_cli-e2915a9bf95f753a.rmeta: crates/manta-cli/src/lib.rs Cargo.toml

crates/manta-cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
