/root/repo/target/debug/deps/manta_analysis-5e6ff640a4c4b978.d: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs

/root/repo/target/debug/deps/libmanta_analysis-5e6ff640a4c4b978.rlib: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs

/root/repo/target/debug/deps/libmanta_analysis-5e6ff640a4c4b978.rmeta: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs

crates/manta-analysis/src/lib.rs:
crates/manta-analysis/src/callgraph.rs:
crates/manta-analysis/src/cfl.rs:
crates/manta-analysis/src/ddg.rs:
crates/manta-analysis/src/pointsto.rs:
crates/manta-analysis/src/preprocess.rs:
