/root/repo/target/debug/deps/manta_tests-dc4964929992c903.d: crates/manta-tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_tests-dc4964929992c903.rmeta: crates/manta-tests/src/lib.rs Cargo.toml

crates/manta-tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
