/root/repo/target/debug/deps/manta_telemetry-4e8546cdc7a2f335.d: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

/root/repo/target/debug/deps/manta_telemetry-4e8546cdc7a2f335: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

crates/manta-telemetry/src/lib.rs:
crates/manta-telemetry/src/json.rs:
crates/manta-telemetry/src/metrics.rs:
crates/manta-telemetry/src/report.rs:
crates/manta-telemetry/src/sink.rs:
crates/manta-telemetry/src/span.rs:
