/root/repo/target/debug/deps/manta_cli-294db65128da630b.d: crates/manta-cli/src/lib.rs

/root/repo/target/debug/deps/libmanta_cli-294db65128da630b.rlib: crates/manta-cli/src/lib.rs

/root/repo/target/debug/deps/libmanta_cli-294db65128da630b.rmeta: crates/manta-cli/src/lib.rs

crates/manta-cli/src/lib.rs:
