/root/repo/target/debug/deps/manta_workloads-f964b048db63a9c3.d: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

/root/repo/target/debug/deps/manta_workloads-f964b048db63a9c3: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

crates/manta-workloads/src/lib.rs:
crates/manta-workloads/src/firmware.rs:
crates/manta-workloads/src/generator.rs:
crates/manta-workloads/src/mix.rs:
crates/manta-workloads/src/projects.rs:
crates/manta-workloads/src/rng.rs:
crates/manta-workloads/src/truth.rs:
