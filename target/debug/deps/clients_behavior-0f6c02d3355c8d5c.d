/root/repo/target/debug/deps/clients_behavior-0f6c02d3355c8d5c.d: crates/manta-tests/../../tests/clients_behavior.rs

/root/repo/target/debug/deps/clients_behavior-0f6c02d3355c8d5c: crates/manta-tests/../../tests/clients_behavior.rs

crates/manta-tests/../../tests/clients_behavior.rs:
