/root/repo/target/debug/deps/manta_baselines-dc8a06e142bf3f6b.d: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_baselines-dc8a06e142bf3f6b.rmeta: crates/manta-baselines/src/lib.rs crates/manta-baselines/src/bugtools.rs crates/manta-baselines/src/dirty.rs crates/manta-baselines/src/ghidra.rs crates/manta-baselines/src/retdec.rs crates/manta-baselines/src/retypd.rs crates/manta-baselines/src/tool.rs Cargo.toml

crates/manta-baselines/src/lib.rs:
crates/manta-baselines/src/bugtools.rs:
crates/manta-baselines/src/dirty.rs:
crates/manta-baselines/src/ghidra.rs:
crates/manta-baselines/src/retdec.rs:
crates/manta-baselines/src/retypd.rs:
crates/manta-baselines/src/tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
