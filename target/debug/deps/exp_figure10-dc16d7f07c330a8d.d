/root/repo/target/debug/deps/exp_figure10-dc16d7f07c330a8d.d: crates/manta-bench/src/bin/exp_figure10.rs

/root/repo/target/debug/deps/exp_figure10-dc16d7f07c330a8d: crates/manta-bench/src/bin/exp_figure10.rs

crates/manta-bench/src/bin/exp_figure10.rs:
