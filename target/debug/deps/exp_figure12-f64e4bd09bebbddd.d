/root/repo/target/debug/deps/exp_figure12-f64e4bd09bebbddd.d: crates/manta-bench/src/bin/exp_figure12.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure12-f64e4bd09bebbddd.rmeta: crates/manta-bench/src/bin/exp_figure12.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
