/root/repo/target/debug/deps/manta_workloads-9e22e6b0dc8d32ac.d: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_workloads-9e22e6b0dc8d32ac.rmeta: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs Cargo.toml

crates/manta-workloads/src/lib.rs:
crates/manta-workloads/src/firmware.rs:
crates/manta-workloads/src/generator.rs:
crates/manta-workloads/src/mix.rs:
crates/manta-workloads/src/projects.rs:
crates/manta-workloads/src/rng.rs:
crates/manta-workloads/src/truth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
