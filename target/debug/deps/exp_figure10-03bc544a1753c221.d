/root/repo/target/debug/deps/exp_figure10-03bc544a1753c221.d: crates/manta-bench/src/bin/exp_figure10.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure10-03bc544a1753c221.rmeta: crates/manta-bench/src/bin/exp_figure10.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
