/root/repo/target/debug/deps/exp_table3-6b0adad1b70c38a3.d: crates/manta-bench/src/bin/exp_table3.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table3-6b0adad1b70c38a3.rmeta: crates/manta-bench/src/bin/exp_table3.rs Cargo.toml

crates/manta-bench/src/bin/exp_table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
