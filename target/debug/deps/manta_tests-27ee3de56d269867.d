/root/repo/target/debug/deps/manta_tests-27ee3de56d269867.d: crates/manta-tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_tests-27ee3de56d269867.rmeta: crates/manta-tests/src/lib.rs Cargo.toml

crates/manta-tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
