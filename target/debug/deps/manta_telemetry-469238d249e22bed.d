/root/repo/target/debug/deps/manta_telemetry-469238d249e22bed.d: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

/root/repo/target/debug/deps/libmanta_telemetry-469238d249e22bed.rlib: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

/root/repo/target/debug/deps/libmanta_telemetry-469238d249e22bed.rmeta: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs

crates/manta-telemetry/src/lib.rs:
crates/manta-telemetry/src/json.rs:
crates/manta-telemetry/src/metrics.rs:
crates/manta-telemetry/src/report.rs:
crates/manta-telemetry/src/sink.rs:
crates/manta-telemetry/src/span.rs:
