/root/repo/target/debug/deps/proptests-6340cec3cac677a0.d: crates/manta-isa/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6340cec3cac677a0.rmeta: crates/manta-isa/tests/proptests.rs Cargo.toml

crates/manta-isa/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
