/root/repo/target/debug/deps/exp_ablation_order-176499903bac23c6.d: crates/manta-bench/src/bin/exp_ablation_order.rs

/root/repo/target/debug/deps/exp_ablation_order-176499903bac23c6: crates/manta-bench/src/bin/exp_ablation_order.rs

crates/manta-bench/src/bin/exp_ablation_order.rs:
