/root/repo/target/debug/deps/manta-d726f51cc6733e9b.d: crates/manta/src/lib.rs crates/manta/src/classify.rs crates/manta/src/ctx_refine.rs crates/manta/src/flow_insensitive.rs crates/manta/src/flow_refine.rs crates/manta/src/interval.rs crates/manta/src/reveal.rs crates/manta/src/unify.rs

/root/repo/target/debug/deps/manta-d726f51cc6733e9b: crates/manta/src/lib.rs crates/manta/src/classify.rs crates/manta/src/ctx_refine.rs crates/manta/src/flow_insensitive.rs crates/manta/src/flow_refine.rs crates/manta/src/interval.rs crates/manta/src/reveal.rs crates/manta/src/unify.rs

crates/manta/src/lib.rs:
crates/manta/src/classify.rs:
crates/manta/src/ctx_refine.rs:
crates/manta/src/flow_insensitive.rs:
crates/manta/src/flow_refine.rs:
crates/manta/src/interval.rs:
crates/manta/src/reveal.rs:
crates/manta/src/unify.rs:
