/root/repo/target/debug/deps/exp_ablation_order-068681032d0a9fbe.d: crates/manta-bench/src/bin/exp_ablation_order.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_order-068681032d0a9fbe.rmeta: crates/manta-bench/src/bin/exp_ablation_order.rs Cargo.toml

crates/manta-bench/src/bin/exp_ablation_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
