/root/repo/target/debug/deps/exp_table4-e2d188effb33632b.d: crates/manta-bench/src/bin/exp_table4.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table4-e2d188effb33632b.rmeta: crates/manta-bench/src/bin/exp_table4.rs Cargo.toml

crates/manta-bench/src/bin/exp_table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
