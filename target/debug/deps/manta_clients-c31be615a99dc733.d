/root/repo/target/debug/deps/manta_clients-c31be615a99dc733.d: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_clients-c31be615a99dc733.rmeta: crates/manta-clients/src/lib.rs crates/manta-clients/src/checkers.rs crates/manta-clients/src/custom.rs crates/manta-clients/src/ddg_prune.rs crates/manta-clients/src/icall.rs crates/manta-clients/src/slicing.rs Cargo.toml

crates/manta-clients/src/lib.rs:
crates/manta-clients/src/checkers.rs:
crates/manta-clients/src/custom.rs:
crates/manta-clients/src/ddg_prune.rs:
crates/manta-clients/src/icall.rs:
crates/manta-clients/src/slicing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
