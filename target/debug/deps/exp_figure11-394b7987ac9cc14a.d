/root/repo/target/debug/deps/exp_figure11-394b7987ac9cc14a.d: crates/manta-bench/src/bin/exp_figure11.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure11-394b7987ac9cc14a.rmeta: crates/manta-bench/src/bin/exp_figure11.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
