/root/repo/target/debug/deps/manta_ir-bed2fd2748b4da34.d: crates/manta-ir/src/lib.rs crates/manta-ir/src/builder.rs crates/manta-ir/src/cfg.rs crates/manta-ir/src/dom.rs crates/manta-ir/src/externs.rs crates/manta-ir/src/function.rs crates/manta-ir/src/ids.rs crates/manta-ir/src/inst.rs crates/manta-ir/src/module.rs crates/manta-ir/src/parser.rs crates/manta-ir/src/printer.rs crates/manta-ir/src/types.rs crates/manta-ir/src/value.rs crates/manta-ir/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_ir-bed2fd2748b4da34.rmeta: crates/manta-ir/src/lib.rs crates/manta-ir/src/builder.rs crates/manta-ir/src/cfg.rs crates/manta-ir/src/dom.rs crates/manta-ir/src/externs.rs crates/manta-ir/src/function.rs crates/manta-ir/src/ids.rs crates/manta-ir/src/inst.rs crates/manta-ir/src/module.rs crates/manta-ir/src/parser.rs crates/manta-ir/src/printer.rs crates/manta-ir/src/types.rs crates/manta-ir/src/value.rs crates/manta-ir/src/verify.rs Cargo.toml

crates/manta-ir/src/lib.rs:
crates/manta-ir/src/builder.rs:
crates/manta-ir/src/cfg.rs:
crates/manta-ir/src/dom.rs:
crates/manta-ir/src/externs.rs:
crates/manta-ir/src/function.rs:
crates/manta-ir/src/ids.rs:
crates/manta-ir/src/inst.rs:
crates/manta-ir/src/module.rs:
crates/manta-ir/src/parser.rs:
crates/manta-ir/src/printer.rs:
crates/manta-ir/src/types.rs:
crates/manta-ir/src/value.rs:
crates/manta-ir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
