/root/repo/target/debug/deps/manta-781417ccf18f01b4.d: crates/manta/src/lib.rs crates/manta/src/classify.rs crates/manta/src/ctx_refine.rs crates/manta/src/flow_insensitive.rs crates/manta/src/flow_refine.rs crates/manta/src/interval.rs crates/manta/src/reveal.rs crates/manta/src/unify.rs Cargo.toml

/root/repo/target/debug/deps/libmanta-781417ccf18f01b4.rmeta: crates/manta/src/lib.rs crates/manta/src/classify.rs crates/manta/src/ctx_refine.rs crates/manta/src/flow_insensitive.rs crates/manta/src/flow_refine.rs crates/manta/src/interval.rs crates/manta/src/reveal.rs crates/manta/src/unify.rs Cargo.toml

crates/manta/src/lib.rs:
crates/manta/src/classify.rs:
crates/manta/src/ctx_refine.rs:
crates/manta/src/flow_insensitive.rs:
crates/manta/src/flow_refine.rs:
crates/manta/src/interval.rs:
crates/manta/src/reveal.rs:
crates/manta/src/unify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
