/root/repo/target/debug/deps/inference-350f5fee259d2b1f.d: crates/manta-bench/benches/inference.rs Cargo.toml

/root/repo/target/debug/deps/libinference-350f5fee259d2b1f.rmeta: crates/manta-bench/benches/inference.rs Cargo.toml

crates/manta-bench/benches/inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
