/root/repo/target/debug/deps/substrates-435ce777899dff27.d: crates/manta-bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-435ce777899dff27.rmeta: crates/manta-bench/benches/substrates.rs Cargo.toml

crates/manta-bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
