/root/repo/target/debug/deps/exp_figure2-5574688fe36a1f91.d: crates/manta-bench/src/bin/exp_figure2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure2-5574688fe36a1f91.rmeta: crates/manta-bench/src/bin/exp_figure2.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
