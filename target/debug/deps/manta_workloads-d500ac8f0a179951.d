/root/repo/target/debug/deps/manta_workloads-d500ac8f0a179951.d: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

/root/repo/target/debug/deps/libmanta_workloads-d500ac8f0a179951.rlib: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

/root/repo/target/debug/deps/libmanta_workloads-d500ac8f0a179951.rmeta: crates/manta-workloads/src/lib.rs crates/manta-workloads/src/firmware.rs crates/manta-workloads/src/generator.rs crates/manta-workloads/src/mix.rs crates/manta-workloads/src/projects.rs crates/manta-workloads/src/rng.rs crates/manta-workloads/src/truth.rs

crates/manta-workloads/src/lib.rs:
crates/manta-workloads/src/firmware.rs:
crates/manta-workloads/src/generator.rs:
crates/manta-workloads/src/mix.rs:
crates/manta-workloads/src/projects.rs:
crates/manta-workloads/src/rng.rs:
crates/manta-workloads/src/truth.rs:
