/root/repo/target/debug/deps/manta_bench-e1a70bdbbd198ed5.d: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

/root/repo/target/debug/deps/libmanta_bench-e1a70bdbbd198ed5.rlib: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

/root/repo/target/debug/deps/libmanta_bench-e1a70bdbbd198ed5.rmeta: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs

crates/manta-bench/src/lib.rs:
crates/manta-bench/src/harness.rs:
