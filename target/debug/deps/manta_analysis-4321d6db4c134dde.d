/root/repo/target/debug/deps/manta_analysis-4321d6db4c134dde.d: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs

/root/repo/target/debug/deps/manta_analysis-4321d6db4c134dde: crates/manta-analysis/src/lib.rs crates/manta-analysis/src/callgraph.rs crates/manta-analysis/src/cfl.rs crates/manta-analysis/src/ddg.rs crates/manta-analysis/src/pointsto.rs crates/manta-analysis/src/preprocess.rs

crates/manta-analysis/src/lib.rs:
crates/manta-analysis/src/callgraph.rs:
crates/manta-analysis/src/cfl.rs:
crates/manta-analysis/src/ddg.rs:
crates/manta-analysis/src/pointsto.rs:
crates/manta-analysis/src/preprocess.rs:
