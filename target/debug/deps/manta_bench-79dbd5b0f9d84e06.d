/root/repo/target/debug/deps/manta_bench-79dbd5b0f9d84e06.d: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_bench-79dbd5b0f9d84e06.rmeta: crates/manta-bench/src/lib.rs crates/manta-bench/src/harness.rs Cargo.toml

crates/manta-bench/src/lib.rs:
crates/manta-bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
