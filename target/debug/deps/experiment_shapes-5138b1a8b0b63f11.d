/root/repo/target/debug/deps/experiment_shapes-5138b1a8b0b63f11.d: crates/manta-tests/../../tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-5138b1a8b0b63f11: crates/manta-tests/../../tests/experiment_shapes.rs

crates/manta-tests/../../tests/experiment_shapes.rs:
