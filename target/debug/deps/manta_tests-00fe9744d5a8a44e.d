/root/repo/target/debug/deps/manta_tests-00fe9744d5a8a44e.d: crates/manta-tests/src/lib.rs

/root/repo/target/debug/deps/libmanta_tests-00fe9744d5a8a44e.rlib: crates/manta-tests/src/lib.rs

/root/repo/target/debug/deps/libmanta_tests-00fe9744d5a8a44e.rmeta: crates/manta-tests/src/lib.rs

crates/manta-tests/src/lib.rs:
