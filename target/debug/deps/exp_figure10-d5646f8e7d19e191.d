/root/repo/target/debug/deps/exp_figure10-d5646f8e7d19e191.d: crates/manta-bench/src/bin/exp_figure10.rs Cargo.toml

/root/repo/target/debug/deps/libexp_figure10-d5646f8e7d19e191.rmeta: crates/manta-bench/src/bin/exp_figure10.rs Cargo.toml

crates/manta-bench/src/bin/exp_figure10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
