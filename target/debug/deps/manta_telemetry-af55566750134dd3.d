/root/repo/target/debug/deps/manta_telemetry-af55566750134dd3.d: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libmanta_telemetry-af55566750134dd3.rmeta: crates/manta-telemetry/src/lib.rs crates/manta-telemetry/src/json.rs crates/manta-telemetry/src/metrics.rs crates/manta-telemetry/src/report.rs crates/manta-telemetry/src/sink.rs crates/manta-telemetry/src/span.rs Cargo.toml

crates/manta-telemetry/src/lib.rs:
crates/manta-telemetry/src/json.rs:
crates/manta-telemetry/src/metrics.rs:
crates/manta-telemetry/src/report.rs:
crates/manta-telemetry/src/sink.rs:
crates/manta-telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
