/root/repo/target/debug/deps/exp_figure12-bc60727d6ba5eeb5.d: crates/manta-bench/src/bin/exp_figure12.rs

/root/repo/target/debug/deps/exp_figure12-bc60727d6ba5eeb5: crates/manta-bench/src/bin/exp_figure12.rs

crates/manta-bench/src/bin/exp_figure12.rs:
