/root/repo/target/debug/deps/exp_table3-dc979b72d594ac5d.d: crates/manta-bench/src/bin/exp_table3.rs

/root/repo/target/debug/deps/exp_table3-dc979b72d594ac5d: crates/manta-bench/src/bin/exp_table3.rs

crates/manta-bench/src/bin/exp_table3.rs:
