/root/repo/target/debug/examples/firmware_audit-609ede8243305d86.d: crates/manta-bench/../../examples/firmware_audit.rs

/root/repo/target/debug/examples/firmware_audit-609ede8243305d86: crates/manta-bench/../../examples/firmware_audit.rs

crates/manta-bench/../../examples/firmware_audit.rs:
