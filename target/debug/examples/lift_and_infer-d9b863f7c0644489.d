/root/repo/target/debug/examples/lift_and_infer-d9b863f7c0644489.d: crates/manta-bench/../../examples/lift_and_infer.rs

/root/repo/target/debug/examples/lift_and_infer-d9b863f7c0644489: crates/manta-bench/../../examples/lift_and_infer.rs

crates/manta-bench/../../examples/lift_and_infer.rs:
