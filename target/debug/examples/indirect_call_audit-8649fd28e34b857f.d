/root/repo/target/debug/examples/indirect_call_audit-8649fd28e34b857f.d: crates/manta-bench/../../examples/indirect_call_audit.rs

/root/repo/target/debug/examples/indirect_call_audit-8649fd28e34b857f: crates/manta-bench/../../examples/indirect_call_audit.rs

crates/manta-bench/../../examples/indirect_call_audit.rs:
