/root/repo/target/debug/examples/indirect_call_audit-104600bfec1a9eb4.d: crates/manta-bench/../../examples/indirect_call_audit.rs Cargo.toml

/root/repo/target/debug/examples/libindirect_call_audit-104600bfec1a9eb4.rmeta: crates/manta-bench/../../examples/indirect_call_audit.rs Cargo.toml

crates/manta-bench/../../examples/indirect_call_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
