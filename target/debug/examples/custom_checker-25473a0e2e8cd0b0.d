/root/repo/target/debug/examples/custom_checker-25473a0e2e8cd0b0.d: crates/manta-bench/../../examples/custom_checker.rs

/root/repo/target/debug/examples/custom_checker-25473a0e2e8cd0b0: crates/manta-bench/../../examples/custom_checker.rs

crates/manta-bench/../../examples/custom_checker.rs:
