/root/repo/target/debug/examples/custom_checker-b4a4fdd3471544fa.d: crates/manta-bench/../../examples/custom_checker.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_checker-b4a4fdd3471544fa.rmeta: crates/manta-bench/../../examples/custom_checker.rs Cargo.toml

crates/manta-bench/../../examples/custom_checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
