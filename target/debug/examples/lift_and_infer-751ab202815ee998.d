/root/repo/target/debug/examples/lift_and_infer-751ab202815ee998.d: crates/manta-bench/../../examples/lift_and_infer.rs Cargo.toml

/root/repo/target/debug/examples/liblift_and_infer-751ab202815ee998.rmeta: crates/manta-bench/../../examples/lift_and_infer.rs Cargo.toml

crates/manta-bench/../../examples/lift_and_infer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
