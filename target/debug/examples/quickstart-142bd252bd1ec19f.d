/root/repo/target/debug/examples/quickstart-142bd252bd1ec19f.d: crates/manta-bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-142bd252bd1ec19f.rmeta: crates/manta-bench/../../examples/quickstart.rs Cargo.toml

crates/manta-bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
