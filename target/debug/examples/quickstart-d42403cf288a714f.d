/root/repo/target/debug/examples/quickstart-d42403cf288a714f.d: crates/manta-bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d42403cf288a714f: crates/manta-bench/../../examples/quickstart.rs

crates/manta-bench/../../examples/quickstart.rs:
