/root/repo/target/debug/examples/firmware_audit-7506d7d76ff6d255.d: crates/manta-bench/../../examples/firmware_audit.rs Cargo.toml

/root/repo/target/debug/examples/libfirmware_audit-7506d7d76ff6d255.rmeta: crates/manta-bench/../../examples/firmware_audit.rs Cargo.toml

crates/manta-bench/../../examples/firmware_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
