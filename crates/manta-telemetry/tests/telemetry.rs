//! Behavior tests for the telemetry layer: span nesting and unwind
//! safety, counter atomicity under contention, JSON round-tripping via the
//! hand-rolled parser, and the disabled/NullSink no-op guarantee.
//!
//! The collector is a process-wide singleton, so every test that enables
//! collection serializes through [`exclusive`].

use std::sync::Mutex;

use manta_store::json;
use manta_telemetry::{Counter, Histogram, NullSink, Report, TelemetrySink};

static GATE: Mutex<()> = Mutex::new(());

/// Runs `f` with exclusive access to the global collector, enabled and
/// freshly reset; collection is off again afterwards.
fn exclusive<T>(f: impl FnOnce() -> T) -> T {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    manta_telemetry::set_enabled(true);
    manta_telemetry::reset();
    let out = f();
    manta_telemetry::set_enabled(false);
    out
}

#[test]
fn spans_nest_by_lexical_scope() {
    let report = exclusive(|| {
        {
            manta_telemetry::span!("outer");
            {
                manta_telemetry::span!("inner");
            }
            {
                manta_telemetry::span!("inner");
            }
            manta_telemetry::span!("sibling-after"); // nests under outer
        }
        manta_telemetry::report()
    });
    let outer = report.span("outer").expect("outer recorded");
    assert_eq!(outer.count, 1);
    let inner = outer.child("inner").expect("inner nested under outer");
    assert_eq!(inner.count, 2, "same path aggregates");
    assert!(
        outer.child("sibling-after").is_some(),
        "later span! in the same block nests"
    );
    assert!(report.span("inner").is_none(), "inner must not be a root");
    assert!(outer.total_ns >= inner.total_ns, "parent covers child");
}

#[test]
fn panicking_scope_does_not_corrupt_the_tree() {
    let report = exclusive(|| {
        let boom = std::panic::catch_unwind(|| {
            manta_telemetry::span!("doomed");
            {
                manta_telemetry::span!("doomed-child");
                panic!("checker exploded");
            }
        });
        assert!(boom.is_err());
        // The tree must still accept spans at the correct (root) depth.
        {
            manta_telemetry::span!("after");
        }
        manta_telemetry::report()
    });
    let doomed = report.span("doomed").expect("unwound span still recorded");
    assert_eq!(doomed.count, 1);
    assert_eq!(doomed.child("doomed-child").map(|c| c.count), Some(1));
    let after = report.span("after").expect("collector survives the panic");
    assert!(after.children.is_empty());
    assert!(
        doomed.child("after").is_none(),
        "a panic must pop its spans; `after` cannot nest under `doomed`"
    );
}

#[test]
fn counters_are_atomic_under_contention() {
    static CONTENDED: Counter = Counter::new("test.contended");
    let total = exclusive(|| {
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        CONTENDED.incr();
                    }
                });
            }
        });
        assert_eq!(
            manta_telemetry::report().counter("test.contended"),
            threads * per_thread
        );
        CONTENDED.get()
    });
    assert_eq!(total, 80_000);
}

#[test]
fn scoped_capture_is_thread_local() {
    let (spans, report) = exclusive(|| {
        let other = std::thread::spawn(|| {
            manta_telemetry::span!("other-thread");
        });
        let ((), spans) = manta_telemetry::scoped(|| {
            manta_telemetry::span!("scoped-stage");
        });
        other.join().unwrap();
        (spans, manta_telemetry::report())
    });
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].name, "scoped-stage");
    // The global report still contains both.
    assert!(report.span("scoped-stage").is_some());
    assert!(report.span("other-thread").is_some());
}

#[test]
fn scoped_capture_works_while_disabled() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    manta_telemetry::set_enabled(false);
    manta_telemetry::reset();
    let (out, spans) = manta_telemetry::scoped(|| {
        manta_telemetry::span!("quiet");
        21 * 2
    });
    assert_eq!(out, 42);
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].name, "quiet");
    assert_eq!(spans[0].count, 1);
}

#[test]
fn json_report_roundtrips_through_hand_parser() {
    static HITS: Counter = Counter::new("test.json.hits");
    static DIST: Histogram = Histogram::new("test.json.dist");
    let report = exclusive(|| {
        {
            manta_telemetry::span!("stage-a");
            {
                manta_telemetry::span!("stage-a.sub");
            }
        }
        HITS.add(5);
        DIST.record(1);
        DIST.record(100);
        manta_telemetry::report()
    });
    let text = report.to_json();
    let v = json::parse(&text).expect("report JSON parses");
    let spans = v.get("spans").unwrap().as_array().unwrap();
    let a = spans
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("stage-a"))
        .expect("stage-a serialized");
    assert_eq!(a.get("count").unwrap().as_f64(), Some(1.0));
    let kids = a.get("children").unwrap().as_array().unwrap();
    assert_eq!(kids[0].get("name").unwrap().as_str(), Some("stage-a.sub"));
    assert_eq!(
        v.get("counters")
            .unwrap()
            .get("test.json.hits")
            .unwrap()
            .as_f64(),
        Some(5.0)
    );
    let d = v.get("histograms").unwrap().get("test.json.dist").unwrap();
    assert_eq!(d.get("count").unwrap().as_f64(), Some(2.0));
    assert_eq!(d.get("sum").unwrap().as_f64(), Some(101.0));
    assert_eq!(d.get("min").unwrap().as_f64(), Some(1.0));
    assert_eq!(d.get("max").unwrap().as_f64(), Some(100.0));
}

#[test]
fn disabled_collection_records_nothing() {
    static DEAD: Counter = Counter::new("test.noop.dead");
    static DEAD_H: Histogram = Histogram::new("test.noop.hist");
    let report = exclusive(|| {
        manta_telemetry::set_enabled(false);
        {
            manta_telemetry::span!("test-noop-invisible");
        }
        DEAD.add(1_000);
        DEAD_H.record(9);
        manta_telemetry::counter("test.noop.dyn", 3);
        manta_telemetry::set_enabled(true);
        manta_telemetry::report()
    });
    assert!(report.span("test-noop-invisible").is_none());
    assert_eq!(report.counter("test.noop.dead"), 0);
    assert_eq!(report.counter("test.noop.dyn"), 0);
    assert!(!report.histograms.contains_key("test.noop.hist"));
}

#[test]
fn null_sink_accepts_everything() {
    let mut sink = NullSink;
    sink.emit(&Report::default()).unwrap();
    let report = exclusive(|| {
        {
            manta_telemetry::span!("for-null");
        }
        manta_telemetry::report()
    });
    sink.emit(&report).unwrap();
}

#[test]
fn reset_clears_and_stale_guards_are_ignored() {
    let report = exclusive(|| {
        {
            manta_telemetry::span!("pre-reset");
        }
        static PRE: Counter = Counter::new("test.reset.pre");
        PRE.add(3);
        let held = manta_telemetry::span("held-across-reset");
        manta_telemetry::reset();
        drop(held); // stale epoch: must not resurrect or crash
        {
            manta_telemetry::span!("post-reset");
        }
        manta_telemetry::report()
    });
    assert!(report.span("pre-reset").is_none());
    assert!(report.span("held-across-reset").is_none());
    assert_eq!(report.counter("test.reset.pre"), 0);
    assert_eq!(report.span("post-reset").map(|s| s.count), Some(1));
}
