//! Chrome trace-event collection and export.
//!
//! When trace collection is on ([`set_trace_enabled`]), every closed
//! span additionally records one *complete* event (`"ph":"X"`) carrying
//! a process-relative monotonic timestamp and the recording thread's
//! id. [`render_chrome_trace`] serializes the buffer as a Chrome
//! trace-event JSON document (the `traceEvents` object form), loadable
//! in Perfetto or `chrome://tracing`.
//!
//! Collection is independent of the span/counter switch: tracing can be
//! on with aggregation off and vice versa. Both share the same
//! span-site instrumentation, so trace events carry exactly the span
//! names the text report shows.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::span::lock;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// One complete ("ph":"X") event: a closed span occurrence.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Recording thread (small dense id, assigned on first event).
    pub tid: u64,
    /// Start, microseconds since the process-local trace epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// The instant all trace timestamps are relative to. Pinned the first
/// time tracing is enabled so `ts` starts near zero.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Dense per-thread ids: assigned in first-event order, starting at 1
/// (Chrome reserves meaning for tid 0 in some renderers).
fn thread_id() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|c| {
        let mut id = c.get();
        if id == 0 {
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    })
}

/// Turns trace-event collection on or off. Enabling pins the trace
/// epoch; the span instrumentation starts buffering complete events.
pub fn set_trace_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether trace-event collection is on.
#[inline(always)]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Buffers one complete event for a span that ran `start..start+dur`.
pub(crate) fn record_complete(name: &'static str, start: Instant, dur_ns: u64) {
    let ts_us = start.saturating_duration_since(epoch()).as_nanos() as f64 / 1_000.0;
    let event = TraceEvent {
        name,
        tid: thread_id(),
        ts_us,
        dur_us: dur_ns as f64 / 1_000.0,
    };
    lock(&EVENTS).push(event);
}

/// Number of buffered trace events.
#[must_use]
pub fn trace_event_count() -> usize {
    lock(&EVENTS).len()
}

/// Drops every buffered trace event (part of [`crate::reset`]).
pub(crate) fn reset_trace() {
    lock(&EVENTS).clear();
}

/// Snapshots the buffered events (sorted by timestamp, then thread).
#[must_use]
pub fn trace_events() -> Vec<TraceEvent> {
    let mut events = lock(&EVENTS).clone();
    events.sort_by(|a, b| {
        a.ts_us
            .total_cmp(&b.ts_us)
            .then(a.tid.cmp(&b.tid))
            .then(a.name.cmp(b.name))
    });
    events
}

/// Renders the buffered events as a Chrome trace-event JSON document:
/// `{"displayTimeUnit":"ms","traceEvents":[{"name":…,"cat":"manta",
/// "ph":"X","ts":…,"dur":…,"pid":1,"tid":…}, …]}`. Microsecond
/// timestamps, as the format requires; loadable in Perfetto.
#[must_use]
pub fn render_chrome_trace() -> String {
    let events = trace_events();
    let mut w = manta_store::json::JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit");
    w.string("ms");
    w.key("traceEvents");
    w.begin_array();
    for e in &events {
        w.begin_object();
        w.key("name");
        w.string(e.name);
        w.key("cat");
        w.string("manta");
        w.key("ph");
        w.string("X");
        w.key("ts");
        w.float(e.ts_us);
        w.key("dur");
        w.float(e.dur_us);
        w.key("pid");
        w.uint(1);
        w.key("tid");
        w.uint(e.tid);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Serializes tests that flip the global trace switch.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn spans_emit_parseable_complete_events() {
        let _g = guard();
        set_trace_enabled(true);
        reset_trace();
        {
            crate::span!("trace.outer");
            crate::span!("trace.inner");
        }
        set_trace_enabled(false);
        assert_eq!(trace_event_count(), 2);
        let doc = render_chrome_trace();
        let v = manta_store::json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("tid").unwrap().as_f64().unwrap() >= 1.0);
            assert_eq!(e.get("pid").unwrap().as_f64(), Some(1.0));
        }
        // The inner span closes first: it sorts after its parent by ts.
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"trace.outer"));
        assert!(names.contains(&"trace.inner"));
        reset_trace();
    }

    #[test]
    fn disabled_tracing_buffers_nothing() {
        let _g = guard();
        reset_trace();
        set_trace_enabled(false);
        {
            crate::span!("trace.ignored");
        }
        assert_eq!(trace_event_count(), 0);
    }
}
