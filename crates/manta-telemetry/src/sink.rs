//! Pluggable report destinations.

use std::io;

use crate::report::Report;

/// Where a finished [`Report`] goes. The pipeline is instrumented
/// unconditionally; choosing [`NullSink`] (and leaving collection
/// disabled) makes the whole layer free.
pub trait TelemetrySink {
    /// Emits one report.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the underlying destination.
    fn emit(&mut self, report: &Report) -> io::Result<()>;
}

/// Discards reports. With collection disabled this is the zero-overhead
/// configuration (verified by `manta-bench`'s `telemetry` bench).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn emit(&mut self, _report: &Report) -> io::Result<()> {
        Ok(())
    }
}

/// Renders the human-readable span tree + counters to a writer.
#[derive(Debug)]
pub struct TextSink<W: io::Write>(pub W);

impl<W: io::Write> TelemetrySink for TextSink<W> {
    fn emit(&mut self, report: &Report) -> io::Result<()> {
        self.0.write_all(report.render_text().as_bytes())
    }
}

/// Writes the JSON form (one document per emit) to a writer.
#[derive(Debug)]
pub struct JsonSink<W: io::Write>(pub W);

impl<W: io::Write> TelemetrySink for JsonSink<W> {
    fn emit(&mut self, report: &Report) -> io::Result<()> {
        self.0.write_all(report.to_json().as_bytes())?;
        self.0.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinks_write_where_told() {
        let report = Report {
            spans: vec![crate::SpanReport {
                name: "stage".into(),
                count: 2,
                total_ns: 1_500_000,
                children: vec![],
            }],
            counters: [("k".to_string(), 7u64)].into_iter().collect(),
            histograms: Default::default(),
        };
        let mut text = Vec::new();
        TextSink(&mut text).emit(&report).unwrap();
        let text = String::from_utf8(text).unwrap();
        assert!(text.contains("stage"), "{text}");
        assert!(text.contains("×2"), "{text}");

        let mut json = Vec::new();
        JsonSink(&mut json).emit(&report).unwrap();
        let v = manta_store::json::parse(std::str::from_utf8(&json).unwrap().trim()).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("k").unwrap().as_f64(),
            Some(7.0)
        );

        NullSink.emit(&report).unwrap();
    }
}
