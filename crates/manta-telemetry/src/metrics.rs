//! Named counters and histograms.
//!
//! Counters are plain relaxed atomics registered in a global map; a
//! [`Counter`] `static` caches its atomic so a hot-loop increment is one
//! branch plus one `fetch_add`. Histograms bucket values by power of two.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::report::HistogramReport;
use crate::span::lock;

/// Name → cell. Cells are leaked so handles can be `&'static` and survive
/// [`crate::reset`] (which zeroes rather than drops them).
static COUNTERS: Mutex<BTreeMap<String, &'static AtomicU64>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<String, &'static HistCore>> = Mutex::new(BTreeMap::new());

fn counter_cell(name: &str) -> &'static AtomicU64 {
    let mut map = lock(&COUNTERS);
    if let Some(&c) = map.get(name) {
        return c;
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    map.insert(name.to_string(), cell);
    cell
}

/// A named monotonically increasing counter. Declare as a `static` next to
/// the code it measures:
///
/// ```
/// static UNIFY_OPS: manta_telemetry::Counter =
///     manta_telemetry::Counter::new("unify.ops");
/// manta_telemetry::set_enabled(true);
/// UNIFY_OPS.incr();
/// assert_eq!(UNIFY_OPS.get(), 1);
/// manta_telemetry::set_enabled(false);
/// ```
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// Declares a counter; it registers itself on first use.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn cell(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| counter_cell(self.name))
    }

    /// Adds `delta`. No-op while collection is disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if crate::is_enabled() {
            self.cell().fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one. No-op while collection is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Overwrites the value (for quantities that are sampled, not summed,
    /// e.g. a chosen parallelism). No-op while collection is disabled.
    #[inline]
    pub fn set(&self, value: u64) {
        if crate::is_enabled() {
            self.cell().store(value, Ordering::Relaxed);
        }
    }

    /// Raises the value to `value` if it is larger (high-water marks,
    /// e.g. peak queue depth). No-op while collection is disabled.
    #[inline]
    pub fn record_max(&self, value: u64) {
        if crate::is_enabled() {
            self.cell().fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

/// Adds `delta` to the counter named `name` (ad-hoc, non-hot-path form of
/// [`Counter::add`]).
pub fn counter(name: &str, delta: u64) {
    if crate::is_enabled() {
        counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }
}

/// Overwrites the counter named `name` (ad-hoc form of [`Counter::set`]).
pub fn counter_set(name: &str, value: u64) {
    if crate::is_enabled() {
        counter_cell(name).store(value, Ordering::Relaxed);
    }
}

const BUCKETS: usize = 65;

struct HistCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// `buckets[i]` counts values whose bit length is `i`, i.e. value 0 in
    /// bucket 0, `[2^(i-1), 2^i)` in bucket `i`.
    buckets: [AtomicU64; BUCKETS],
}

impl HistCore {
    fn new() -> HistCore {
        HistCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    fn report(&self) -> HistogramReport {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                // Bucket upper bound: the largest value with bit length i.
                (n > 0).then(|| {
                    (
                        if i == 0 {
                            0
                        } else {
                            (1u64 << i).wrapping_sub(1)
                        },
                        n,
                    )
                })
            })
            .collect();
        HistogramReport {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

fn histogram_cell(name: &str) -> &'static HistCore {
    let mut map = lock(&HISTOGRAMS);
    if let Some(&h) = map.get(name) {
        return h;
    }
    let cell: &'static HistCore = Box::leak(Box::new(HistCore::new()));
    map.insert(name.to_string(), cell);
    cell
}

/// A named power-of-two-bucketed distribution of `u64` samples.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistCore>,
}

impl Histogram {
    /// Declares a histogram; it registers itself on first use.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Records one sample. No-op while collection is disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if crate::is_enabled() {
            self.cell
                .get_or_init(|| histogram_cell(self.name))
                .record(value);
        }
    }
}

pub(crate) fn snapshot_counters() -> BTreeMap<String, u64> {
    lock(&COUNTERS)
        .iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
        .collect()
}

pub(crate) fn snapshot_histograms() -> BTreeMap<String, HistogramReport> {
    lock(&HISTOGRAMS)
        .iter()
        .filter(|(_, core)| core.count.load(Ordering::Relaxed) > 0)
        .map(|(name, core)| (name.clone(), core.report()))
        .collect()
}

pub(crate) fn reset_metrics() {
    for cell in lock(&COUNTERS).values() {
        cell.store(0, Ordering::Relaxed);
    }
    for core in lock(&HISTOGRAMS).values() {
        core.reset();
    }
}
