//! Hierarchical wall-time spans with a thread-safe global collector.
//!
//! Each thread owns one span tree (registered globally on first use) plus
//! a stack of open spans. Identical name paths aggregate. [`scoped`]
//! temporarily swaps in a private tree to capture one closure's spans —
//! that is how the evaluation runner gets per-project breakdowns while
//! building projects in parallel.

use std::cell::{Cell, RefCell};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::report::SpanReport;

/// One aggregated node: a unique name path from the root.
#[derive(Clone, Debug, Default)]
pub(crate) struct SpanNode {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub children: Vec<usize>,
}

/// An arena-allocated aggregation tree.
#[derive(Debug, Default)]
pub(crate) struct SpanTree {
    pub nodes: Vec<SpanNode>,
    pub roots: Vec<usize>,
    /// Bumped by [`crate::reset`] so stale guards from before the reset
    /// cannot touch recycled node slots.
    pub epoch: u64,
}

impl SpanTree {
    /// Finds or creates the child of `parent` (`None` = a root) named
    /// `name`.
    fn child_of(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode {
            name,
            ..Default::default()
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Adds every span of `other` into `self`, grafting `other`'s roots
    /// under `under` (or as roots).
    pub(crate) fn merge_from(&mut self, other: &SpanTree, under: Option<usize>) {
        for &r in &other.roots {
            self.merge_node(other, r, under);
        }
    }

    fn merge_node(&mut self, other: &SpanTree, src: usize, parent: Option<usize>) {
        let node = &other.nodes[src];
        let dst = self.child_of(parent, node.name);
        self.nodes[dst].count += node.count;
        self.nodes[dst].total_ns += node.total_ns;
        let children = other.nodes[src].children.clone();
        for c in children {
            self.merge_node(other, c, Some(dst));
        }
    }

    pub(crate) fn to_reports(&self) -> Vec<SpanReport> {
        self.roots.iter().map(|&r| self.report_node(r)).collect()
    }

    fn report_node(&self, idx: usize) -> SpanReport {
        let n = &self.nodes[idx];
        SpanReport {
            name: n.name.to_string(),
            count: n.count,
            total_ns: n.total_ns,
            children: n.children.iter().map(|&c| self.report_node(c)).collect(),
        }
    }
}

/// Poison-tolerant lock: a panic inside an instrumented scope must not
/// disable telemetry for everyone else.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// All trees ever registered (one per thread, plus one per scope that
/// outlived its thread). Snapshotting merges them by name path.
static TREES: Mutex<Vec<Arc<Mutex<SpanTree>>>> = Mutex::new(Vec::new());

/// Spans record when globally enabled, or while a [`scoped`] capture is
/// active **on this thread** (so captures work with collection off
/// without perturbing other threads). The flag is a plain `Cell` kept in
/// sync by [`ScopeGuard`], so the disabled fast path is one atomic load
/// plus one thread-local byte read.
#[inline]
fn recording() -> bool {
    crate::is_enabled() || SCOPE_ACTIVE.with(|c| c.get())
}

thread_local! {
    /// Whether a [`scoped`] capture is open on this thread (mirrors
    /// `LocalState::saved.is_empty()`).
    static SCOPE_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

struct LocalState {
    tree: Arc<Mutex<SpanTree>>,
    /// Open-span node indices into `tree`, innermost last.
    stack: Vec<usize>,
    /// Epoch of `tree` the stack indices belong to.
    epoch: u64,
    /// Saved outer states while scopes are active.
    saved: Vec<(Arc<Mutex<SpanTree>>, Vec<usize>, u64)>,
}

impl LocalState {
    fn new() -> LocalState {
        let tree = Arc::new(Mutex::new(SpanTree::default()));
        lock(&TREES).push(tree.clone());
        LocalState {
            tree,
            stack: Vec::new(),
            epoch: 0,
            saved: Vec::new(),
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalState>> = const { RefCell::new(None) };
}

fn with_local<T>(f: impl FnOnce(&mut LocalState) -> T) -> T {
    LOCAL.with(|l| f(l.borrow_mut().get_or_insert_with(LocalState::new)))
}

/// An open span; dropping it records the elapsed wall time. Returned by
/// [`span`]. Dropping is panic-safe: an unwinding scope still closes its
/// span and leaves the tree consistent.
#[must_use = "a span records when this guard drops"]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

struct GuardInner {
    name: &'static str,
    start: Instant,
    /// Aggregation-tree bookkeeping; absent when only tracing is on.
    slot: Option<TreeSlot>,
    /// Whether a Chrome trace event should be emitted on close.
    traced: bool,
}

struct TreeSlot {
    tree: Arc<Mutex<SpanTree>>,
    node: usize,
    epoch: u64,
}

/// Opens a span named `name` under the current thread's innermost open
/// span. No-op (and near-free) while both collection and trace capture
/// are disabled. With trace capture on, the close additionally buffers
/// a Chrome complete event carrying this thread's id and monotonic
/// process-relative timestamps.
pub fn span(name: &'static str) -> SpanGuard {
    let traced = crate::trace_enabled();
    if !recording() && !traced {
        return SpanGuard { inner: None };
    }
    let slot = recording().then(|| {
        with_local(|local| {
            let mut tree = lock(&local.tree);
            if local.epoch != tree.epoch {
                // A reset happened since this thread last recorded.
                local.stack.clear();
                local.epoch = tree.epoch;
            }
            let node = tree.child_of(local.stack.last().copied(), name);
            local.stack.push(node);
            TreeSlot {
                tree: local.tree.clone(),
                node,
                epoch: tree.epoch,
            }
        })
    });
    SpanGuard {
        inner: Some(GuardInner {
            name,
            start: Instant::now(),
            slot,
            traced,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(g) = self.inner.take() else { return };
        let ns = g.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(slot) = &g.slot {
            {
                let mut tree = lock(&slot.tree);
                if tree.epoch == slot.epoch {
                    let node = &mut tree.nodes[slot.node];
                    node.count += 1;
                    node.total_ns += ns;
                }
            }
            with_local(|local| {
                if Arc::ptr_eq(&local.tree, &slot.tree)
                    && local.epoch == slot.epoch
                    && local.stack.last() == Some(&slot.node)
                {
                    local.stack.pop();
                }
            });
        }
        if g.traced {
            crate::trace::record_complete(g.name, g.start, ns);
        }
    }
}

/// Restores the enclosing collector even if the closure panics.
struct ScopeGuard {
    scope_tree: Arc<Mutex<SpanTree>>,
}

impl ScopeGuard {
    fn enter() -> ScopeGuard {
        let scope_tree = Arc::new(Mutex::new(SpanTree::default()));
        with_local(|local| {
            let outer_tree = std::mem::replace(&mut local.tree, scope_tree.clone());
            let outer_stack = std::mem::take(&mut local.stack);
            let outer_epoch = std::mem::replace(&mut local.epoch, 0);
            local.saved.push((outer_tree, outer_stack, outer_epoch));
        });
        SCOPE_ACTIVE.with(|c| c.set(true));
        ScopeGuard { scope_tree }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        with_local(|local| {
            let (outer_tree, outer_stack, outer_epoch) =
                local.saved.pop().expect("scope guard nests");
            SCOPE_ACTIVE.with(|c| c.set(!local.saved.is_empty()));
            local.tree = outer_tree;
            local.stack = outer_stack;
            local.epoch = outer_epoch;
            // Fold the captured spans into the enclosing tree under the
            // span that was open when the scope began, so global totals
            // still include scoped work.
            let scope = lock(&self.scope_tree);
            let mut outer = lock(&local.tree);
            if local.epoch == outer.epoch {
                let under = local.stack.last().copied();
                outer.merge_from(&scope, under);
            }
        });
    }
}

/// Runs `f` capturing the spans it records **on this thread**, returning
/// the closure's result and the captured span forest. The captured spans
/// are also folded into the global collector, so [`crate::report`] still
/// sees them. Capture works even while global collection is disabled.
pub fn scoped<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanReport>) {
    let guard = ScopeGuard::enter();
    let out = f();
    let reports = lock(&guard.scope_tree).to_reports();
    drop(guard);
    (out, reports)
}

pub(crate) fn snapshot_spans() -> Vec<SpanReport> {
    let mut merged = SpanTree::default();
    for tree in lock(&TREES).iter() {
        merged.merge_from(&lock(tree), None);
    }
    merged.to_reports()
}

pub(crate) fn reset_spans() {
    for tree in lock(&TREES).iter() {
        let mut t = lock(tree);
        t.nodes.clear();
        t.roots.clear();
        t.epoch += 1;
    }
}
