//! Snapshot structures and their text/JSON renderings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use manta_store::json::JsonWriter;

/// One aggregated span: a unique name path, its hit count and total wall
/// time, and its child spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanReport {
    /// Span name (the argument to [`crate::span!`]).
    pub name: String,
    /// How many times this exact path was entered.
    pub count: u64,
    /// Total wall time across all entries, in nanoseconds.
    pub total_ns: u64,
    /// Nested spans.
    pub children: Vec<SpanReport>,
}

impl SpanReport {
    /// Total wall time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanReport> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// Snapshot of one histogram.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramReport {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty `(inclusive upper bound, count)` power-of-two buckets.
    pub buckets: Vec<(u64, u64)>,
}

/// A full telemetry snapshot: the merged span forest plus every counter
/// and histogram.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Report {
    /// Merged span forest across all threads.
    pub spans: Vec<SpanReport>,
    /// Counter name → value (registered counters only).
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → snapshot (non-empty histograms only).
    pub histograms: BTreeMap<String, HistogramReport>,
}

impl Report {
    /// Looks up a top-level span by name.
    pub fn span(&self, name: &str) -> Option<&SpanReport> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Counter value, defaulting to 0 for never-touched counters.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the indented span tree followed by counters and histograms.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                render_span(s, 1, &mut out);
            }
        }
        let live: Vec<_> = self.counters.iter().filter(|(_, &v)| v > 0).collect();
        if !live.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in live {
                let _ = writeln!(out, "  {name:<40} {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                let _ = writeln!(
                    out,
                    "  {name:<40} n={} mean={mean:.1} min={} max={}",
                    h.count, h.min, h.max
                );
            }
        }
        out
    }

    /// Serializes the whole report as a JSON object:
    ///
    /// ```json
    /// {
    ///   "spans": [
    ///     {"name": "...", "count": 1, "total_ns": 12, "total_ms": 0.000012,
    ///      "children": [ ... ]}
    ///   ],
    ///   "counters": {"name": 42, ...},
    ///   "histograms": {
    ///     "name": {"count": 3, "sum": 10, "min": 1, "max": 6,
    ///              "buckets": [[1, 1], [7, 2]]}
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("spans");
        write_spans(&mut w, &self.spans);
        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.key(name);
            w.uint(*value);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.uint(h.count);
            w.key("sum");
            w.uint(h.sum);
            w.key("min");
            w.uint(h.min);
            w.key("max");
            w.uint(h.max);
            w.key("buckets");
            w.begin_array();
            for &(bound, n) in &h.buckets {
                w.begin_array();
                w.uint(bound);
                w.uint(n);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

fn write_spans(w: &mut JsonWriter, spans: &[SpanReport]) {
    w.begin_array();
    for s in spans {
        w.begin_object();
        w.key("name");
        w.string(&s.name);
        w.key("count");
        w.uint(s.count);
        w.key("total_ns");
        w.uint(s.total_ns);
        w.key("total_ms");
        w.float(s.total_ms());
        w.key("children");
        write_spans(w, &s.children);
        w.end_object();
    }
    w.end_array();
}

fn render_span(s: &SpanReport, depth: usize, out: &mut String) {
    let _ = writeln!(
        out,
        "{:indent$}{:<width$} {:>10.3} ms  ×{}",
        "",
        s.name,
        s.total_ms(),
        s.count,
        indent = depth * 2,
        width = 32usize.saturating_sub(depth * 2),
    );
    for c in &s.children {
        render_span(c, depth + 1, out);
    }
}
