//! Minimal JSON writing and parsing — enough for telemetry reports and
//! their tests, with no external crates.
//!
//! The implementation lives in [`manta_store::json`] (the store is the
//! bottom-most crate, so both this crate and `manta-bench` share one
//! copy); this module re-exports it under the historical path.

pub use manta_store::json::{parse, JsonValue, JsonWriter};
