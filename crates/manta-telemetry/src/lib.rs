//! # manta-telemetry
//!
//! A self-contained observability layer for the Manta pipeline: no
//! external crates, `std` only (the build environment cannot fetch
//! dependencies, and the hot paths want full control over overhead).
//!
//! Three instruments, one global collector:
//!
//! * **Spans** — RAII wall-time scopes forming a tree. [`span`] (or the
//!   [`span!`] macro) opens a scope; dropping the guard records its
//!   duration under the innermost open span of the current thread.
//!   Identical paths aggregate (`count`, `total_ns`), so a stage that runs
//!   once per project shows up once with its call count.
//! * **Counters** — named monotonically increasing `u64`s for the
//!   analysis quantities the paper reasons about (unification operations,
//!   worklist iterations, CFL queries, `|V_P|`/`|V_O|`/`|V_U|`, alarms
//!   raised vs. pruned). Declare a [`Counter`] as a `static` for hot
//!   paths, or use [`counter`] for ad-hoc names.
//! * **Histograms** — power-of-two bucketed distributions ([`Histogram`])
//!   for per-item quantities such as per-variable refinement visit counts.
//!
//! Everything is **disabled by default**: every instrument's fast path is
//! one relaxed atomic load and a branch, so instrumented release builds
//! pay effectively nothing until [`set_enabled`]`(true)` (the `NullSink`
//! guarantee — see `benches/telemetry.rs` in `manta-bench`).
//!
//! [`report`] snapshots everything into a [`Report`], renderable as an
//! indented span tree ([`Report::render_text`]) or JSON
//! ([`Report::to_json`]); [`TelemetrySink`] implementations
//! ([`NullSink`], [`TextSink`], [`JsonSink`]) plug that into files or
//! streams. [`scoped`] captures the spans of one closure on one thread —
//! the evaluation runner uses it for per-project stage breakdowns even
//! while projects build in parallel.
//!
//! ```
//! manta_telemetry::set_enabled(true);
//! manta_telemetry::reset();
//! {
//!     manta_telemetry::span!("pointsto");
//!     manta_telemetry::counter("pointsto.worklist_iters", 3);
//!     {
//!         manta_telemetry::span!("fi.unify");
//!     }
//! }
//! let report = manta_telemetry::report();
//! assert_eq!(report.counters["pointsto.worklist_iters"], 3);
//! assert_eq!(report.spans[0].name, "pointsto");
//! assert_eq!(report.spans[0].children[0].name, "fi.unify");
//! manta_telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]

mod metrics;
mod report;
mod sink;
mod span;
mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use metrics::{counter, counter_set, Counter, Histogram};
pub use report::{HistogramReport, Report, SpanReport};
pub use sink::{JsonSink, NullSink, TelemetrySink, TextSink};
pub use span::{scoped, span, SpanGuard};
pub use trace::{
    render_chrome_trace, set_trace_enabled, trace_enabled, trace_event_count, trace_events,
    TraceEvent,
};

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROVENANCE: AtomicBool = AtomicBool::new(false);

/// Turns global collection on or off. Off (the default) makes every
/// instrument a near-free no-op.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global collection is on.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns type-provenance recording on or off (the switch lives here so
/// the analysis crates can gate their recording without depending on
/// the engine crate). Off — the default — keeps every provenance hook
/// down to one relaxed load and a branch.
pub fn set_provenance_enabled(on: bool) {
    PROVENANCE.store(on, Ordering::Relaxed);
}

/// Whether type-provenance recording is on.
#[inline(always)]
pub fn provenance_enabled() -> bool {
    PROVENANCE.load(Ordering::Relaxed)
}

/// Clears all recorded spans, counters, histograms and buffered trace
/// events. Call between runs (ideally with no spans in flight;
/// in-flight guards from a previous epoch are discarded safely).
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
    trace::reset_trace();
}

/// Snapshots every thread's span tree plus all counters and histograms.
pub fn report() -> Report {
    Report {
        spans: span::snapshot_spans(),
        counters: metrics::snapshot_counters(),
        histograms: metrics::snapshot_histograms(),
    }
}

/// Opens a wall-time span for the rest of the enclosing scope.
///
/// `span!("name")` binds an invisible guard; two invocations in the same
/// block nest (the second opens inside the first).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _manta_span_guard = $crate::span($name);
    };
}
