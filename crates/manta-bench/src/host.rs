//! Host metadata stamped into every `BENCH_*.json` baseline.
//!
//! The regression guards in `bench_perf --check` and
//! `bench_incremental --check` skip thread-scaling comparisons on
//! underpowered hosts; recording the core count and the exact skip
//! reasons next to the numbers makes a committed baseline
//! self-describing — a reader (or a later `--check` run) can tell which
//! guards were live when it was recorded.

use manta_store::json::JsonWriter;

/// What the recording host looked like when a baseline was written.
#[derive(Clone, Debug)]
pub struct HostMeta {
    /// `available_parallelism` at measurement time.
    pub cores: usize,
    /// Worker threads the `manta-parallel` pool resolves to (after any
    /// `--threads`/`MANTA_THREADS` override; equals `cores` by default).
    pub effective_threads: usize,
    /// Human-readable reasons for every thread-dependent guard this
    /// host cannot exercise. Empty on a full-size host.
    pub guard_skips: Vec<String>,
}

/// Probes the current host and derives the guard-skip reasons, mirroring
/// the conditions `bench_perf`'s `--check` mode applies.
#[must_use]
pub fn host_meta() -> HostMeta {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut guard_skips = Vec::new();
    if cores <= 1 {
        guard_skips.push("thread-scaling guard skipped: single-core host".to_string());
    }
    if cores < 4 {
        guard_skips.push(format!(
            "batch guard skipped: host has {cores} cores; needs >= 4"
        ));
        guard_skips.push(format!(
            "partitioned points-to guard skipped: host has {cores} cores; needs >= 4"
        ));
    }
    HostMeta {
        cores,
        effective_threads: manta_parallel::threads(),
        guard_skips,
    }
}

/// Writes `"host": {…}` into an already-open JSON object.
pub fn write_host(w: &mut JsonWriter, meta: &HostMeta) {
    w.key("host");
    w.begin_object();
    w.key("cores");
    w.uint(meta.cores as u64);
    w.key("effective_threads");
    w.uint(meta.effective_threads as u64);
    w.key("guard_skips");
    w.begin_array();
    for reason in &meta.guard_skips {
        w.string(reason);
    }
    w.end_array();
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_object_is_valid_json_and_consistent() {
        let meta = host_meta();
        assert!(meta.cores >= 1);
        assert!(meta.effective_threads >= 1);
        let mut w = JsonWriter::new();
        w.begin_object();
        write_host(&mut w, &meta);
        w.end_object();
        let v = manta_store::json::parse(&w.finish()).expect("valid JSON");
        let host = v.get("host").unwrap();
        assert_eq!(host.get("cores").unwrap().as_f64(), Some(meta.cores as f64));
        let skips = host.get("guard_skips").unwrap().as_array().unwrap();
        assert_eq!(skips.len(), meta.guard_skips.len());
        if meta.cores >= 4 {
            assert!(skips.is_empty(), "full-size hosts skip nothing");
        } else {
            assert!(!skips.is_empty(), "small hosts must record why");
        }
    }
}
