//! Regenerates the §6.4 refinement-order ablation.
use manta_eval::experiments::ablation_order;
use manta_eval::runner::load_projects;

fn main() {
    println!("{}", ablation_order::run(&load_projects()).render());
}
