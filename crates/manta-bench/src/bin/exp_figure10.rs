//! Regenerates Figure 10: inference time/memory scaling with a linear fit.
use manta_eval::experiments::figure10;
use manta_eval::runner::load_projects;

fn main() {
    println!("{}", figure10::run(&load_projects()).render());
}
