//! Incremental-recomputation benchmark: cold vs warm vs one-spec-edit
//! evaluation wall time through the persistent analysis cache.
//!
//! ```text
//! bench_incremental                 measure, write BENCH_incremental.json
//!                                   into the CWD
//! bench_incremental --out <dir>     write the JSON elsewhere
//! bench_incremental --projects <n>  limit to the first n suite projects
//! bench_incremental --check <incremental.json>
//!                                   measure fresh and fail (exit 1) when
//!                                   the warm speedup regressed against
//!                                   the committed baseline or fell below
//!                                   the 2x acceptance floor
//! ```
//!
//! The warm leg also asserts correctness, not just speed: warm rows must
//! be byte-identical to cold rows (at two different pool sizes), every
//! warm project must be served from the cache, and an edited spec must
//! rebuild exactly itself while the rest stay cached. A run that is fast
//! but wrong aborts here rather than producing a green number.

use std::sync::Arc;
use std::time::Instant;

use manta::{AnalysisCache, Engine, MantaConfig};
use manta_bench::harness::median;
use manta_eval::run_suite;
use manta_store::json::{parse, JsonValue, JsonWriter};
use manta_workloads::project_suite;

/// The acceptance contract: a fully warm suite evaluation must be at
/// least this much faster than the cold run that populated the cache.
const WARM_FLOOR: f64 = 2.0;

/// Pool sizes the warm leg sweeps (0 = `available_parallelism`); the
/// recorded warm time is the median over the sweep.
const WARM_THREADS: [usize; 3] = [1, 2, 0];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut limit: Option<usize> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = it.next().expect("--out requires a directory").clone(),
            "--projects" => {
                limit = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--projects requires a number"),
                )
            }
            "--check" => check = Some(it.next().expect("--check requires a baseline path").clone()),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let bench = bench_incremental(limit);

    match check {
        None => {
            let path = format!("{out_dir}/BENCH_incremental.json");
            std::fs::write(&path, render(&bench)).expect("write BENCH_incremental.json");
            println!("wrote {path}");
        }
        Some(baseline) => {
            if !check_regression(&bench, &baseline) {
                std::process::exit(1);
            }
            println!(
                "bench check passed (warm speedup {:.2}x >= {WARM_FLOOR}x floor)",
                bench.warm_speedup
            );
        }
    }
}

struct IncrementalBench {
    projects: usize,
    cold_ms: f64,
    warm_ms: f64,
    edit_ms: f64,
    warm_speedup: f64,
    edit_speedup: f64,
}

fn suite(limit: Option<usize>) -> Vec<manta_workloads::ProjectSpec> {
    let mut specs = project_suite();
    if let Some(n) = limit {
        specs.truncate(n.max(2));
    }
    specs
}

fn bench_incremental(limit: Option<usize>) -> IncrementalBench {
    let dir = std::env::temp_dir().join(format!("manta-bench-incr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(AnalysisCache::open(&dir).expect("open cache"));
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .cache(cache)
        .build()
        .expect("prebuilt cache cannot fail to attach");
    let specs = suite(limit);
    let n = specs.len();

    // Cold: empty cache, every project generates, analyzes, infers.
    let start = Instant::now();
    let cold = run_suite(specs.clone(), &engine);
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(cold.failures.is_empty(), "suite must build");
    assert_eq!(cold.skipped_builds, 0, "cold run must not hit the cache");
    let cold_rows = cold.render_rows();

    // Warm: every project served from the cache, rows byte-identical.
    // Sweep two pool sizes to prove thread count cannot leak into
    // cached results.
    let mut warms = Vec::new();
    for &threads in &WARM_THREADS {
        manta_parallel::set_threads(threads);
        let start = Instant::now();
        let warm = run_suite(specs.clone(), &engine);
        warms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(warm.skipped_builds, n, "warm run must skip every build");
        assert_eq!(
            warm.render_rows(),
            cold_rows,
            "warm rows must be byte-identical to cold rows (threads={threads})"
        );
    }
    manta_parallel::set_threads(0);
    let warm_ms = median(&mut warms);

    // Edit: one spec's seed changes; exactly that project rebuilds.
    let mut edited = specs.clone();
    edited[0].seed ^= 0x5eed;
    let start = Instant::now();
    let edit = run_suite(edited, &engine);
    let edit_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        edit.skipped_builds,
        n - 1,
        "an edit must rebuild exactly the edited project"
    );
    assert_eq!(edit.rows.len(), n);

    let _ = std::fs::remove_dir_all(&dir);
    let warm_speedup = cold_ms / warm_ms.max(1e-6);
    let edit_speedup = cold_ms / edit_ms.max(1e-6);
    println!(
        "incremental: cold {cold_ms:9.2} ms  warm {warm_ms:9.2} ms ({warm_speedup:6.2}x)  \
         1-edit {edit_ms:9.2} ms ({edit_speedup:6.2}x)  [{n} projects]"
    );
    IncrementalBench {
        projects: n,
        cold_ms,
        warm_ms,
        edit_ms,
        warm_speedup,
        edit_speedup,
    }
}

fn render(b: &IncrementalBench) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("manta-bench/incremental/v1");
    manta_bench::host::write_host(&mut w, &manta_bench::host::host_meta());
    w.key("projects");
    w.uint(b.projects as u64);
    w.key("cold_ms");
    w.float(b.cold_ms);
    w.key("warm_ms");
    w.float(b.warm_ms);
    w.key("edit_ms");
    w.float(b.edit_ms);
    w.key("warm_speedup");
    w.float(b.warm_speedup);
    w.key("edit_speedup");
    w.float(b.edit_speedup);
    w.end_object();
    w.finish()
}

/// The warm speedup must clear the absolute [`WARM_FLOOR`] — that is
/// the feature's acceptance contract, independent of host. On top of
/// that, a drop below 90% of the committed baseline is flagged, but
/// only fails when it also loses the floor: warm runs are mostly fixed
/// I/O cost, so a high baseline ratio from a fast-cold host can shrink
/// on another machine while the cache demonstrably still works.
fn check_regression(bench: &IncrementalBench, baseline_path: &str) -> bool {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let base =
        parse(&text).unwrap_or_else(|e| panic!("baseline {baseline_path} is not valid JSON: {e}"));
    let base_warm = base
        .get("warm_speedup")
        .and_then(JsonValue::as_f64)
        .expect("baseline warm_speedup");
    if bench.warm_speedup < WARM_FLOOR {
        eprintln!(
            "REGRESSION: warm speedup fell to {:.2}x, below the {WARM_FLOOR}x acceptance floor \
             (baseline {base_warm:.2}x)",
            bench.warm_speedup
        );
        return false;
    }
    if bench.warm_speedup < 0.9 * base_warm {
        println!(
            "warm speedup {:.2}x is below 90% of the {base_warm:.2}x baseline but above the \
             {WARM_FLOOR}x floor — treating as noise",
            bench.warm_speedup
        );
    }
    true
}
