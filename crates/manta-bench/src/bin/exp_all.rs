//! Runs every experiment in sequence — the full §6 reproduction.
use manta_eval::experiments::*;
use manta_eval::runner::{load_coreutils, load_firmware, load_projects};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let projects = load_projects();
    let coreutils = load_coreutils();
    let firmware = load_firmware();
    eprintln!("[suites generated+analyzed in {:.1?}]", t0.elapsed());
    println!("{}", manta_eval::runner::stage_breakdown_table(&projects));
    println!("{}", manta_eval::runner::solver_shape_table(&projects));

    println!("{}", table3::run(&projects, &coreutils).render());
    let mut corpus: Vec<_> = Vec::new();
    // Figure 2 runs over all 118 binaries.
    corpus.extend(load_projects());
    corpus.extend(load_coreutils());
    println!("{}", figure2::run(&corpus).render());
    println!("{}", figure9::run(&projects).render());
    println!("{}", figure10::run(&projects).render());
    let t4 = table4::run(&projects);
    println!("{}", t4.render());
    println!("{}", figure11::run(&t4).render());
    println!("{}", figure12::run(&firmware).render());
    println!("{}", ablation_order::run(&projects).render());
    println!("{}", table5::run(&firmware).render());
    eprintln!("[all experiments done in {:.1?}]", t0.elapsed());
}
