//! Regenerates Figure 12: source-sink slicing F1 per tool.
use manta_eval::experiments::figure12;
use manta_eval::runner::load_firmware;

fn main() {
    println!("{}", figure12::run(&load_firmware()).render());
}
