//! Summary-mode benchmark: one-function-edit re-analysis through the
//! compositional per-function summary cache vs the full (non-summary)
//! pipeline.
//!
//! ```text
//! bench_summaries                 measure, write BENCH_summaries.json
//!                                 into the CWD
//! bench_summaries --out <dir>     write the JSON elsewhere
//! bench_summaries --clusters <n>  scale the workload (default 48)
//! bench_summaries --check <summaries.json>
//!                                 measure fresh and fail (exit 1) when
//!                                 the edit speedup regressed against
//!                                 the committed baseline or fell below
//!                                 the 3x acceptance floor
//! bench_summaries --probe         print state size and per-stage spans
//!                                 for one edit solve (diagnostics)
//! ```
//!
//! The summary leg asserts correctness in-bench, not just speed: every
//! edited module's summary-mode result is compared bit-for-bit against
//! a fresh whole-module solve, and a `SolveReport` probe proves the
//! recompute set stays inside the edited function's footprint cluster
//! while every other cluster replays. A run that is fast but wrong (or
//! fast because it silently recomputed everything) aborts here rather
//! than producing a green number.

use std::sync::Arc;
use std::time::Instant;

use manta::cache::results_identical;
use manta::{summaries, AnalysisCache, Engine, Manta, MantaConfig};
use manta_analysis::ModuleAnalysis;
use manta_bench::harness::median;
use manta_ir::{BinOp, ModuleBuilder, Width};
use manta_store::json::{parse, JsonValue, JsonWriter};

/// The acceptance contract: re-analyzing after a one-function edit in
/// summary mode must be at least this much faster than the non-summary
/// edit path (a full pipeline run on the edited module).
const EDIT_FLOOR: f64 = 3.0;

/// Distinct one-function edits per timed leg; the recorded time is the
/// median across them.
const EDITS: usize = 7;

/// Call-chain depth per cluster. Per-candidate walk cost is capped by
/// the walk budget, so depth scales total walk volume linearly — deep
/// enough that refinement dominates the global passes, which is the
/// regime whole-program binaries live in.
const DEPTH: usize = 40;

/// Polymorphic users per cluster (half int callers, half pointer
/// callers) — the fan-in every context-sensitive walk must cross.
const USERS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut clusters = 48usize;
    let mut check: Option<String> = None;
    let mut probe_mode = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = it.next().expect("--out requires a directory").clone(),
            "--clusters" => {
                clusters = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--clusters requires a number");
                clusters = clusters.max(2);
            }
            "--probe" => probe_mode = true,
            "--check" => check = Some(it.next().expect("--check requires a baseline path").clone()),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    if probe_mode {
        probe(clusters);
        return;
    }

    let bench = bench_summaries(clusters);

    match check {
        None => {
            let path = format!("{out_dir}/BENCH_summaries.json");
            std::fs::write(&path, render(&bench)).expect("write BENCH_summaries.json");
            println!("wrote {path}");
        }
        Some(baseline) => {
            if !check_regression(&bench, &baseline) {
                std::process::exit(1);
            }
            println!(
                "bench check passed (edit speedup {:.2}x >= {EDIT_FLOOR}x floor)",
                bench.edit_speedup
            );
        }
    }
}

struct SummaryBench {
    functions: usize,
    clusters: usize,
    cold_ms: f64,
    full_edit_ms: f64,
    summary_edit_ms: f64,
    edit_speedup: f64,
    replayed: usize,
    recomputed: usize,
    max_wavefront_width: usize,
}

/// A module of `clusters` independent polymorphic call clusters. Each
/// cluster is a `DEPTH`-deep identity-relay chain fed by `USERS` callers
/// that alternate int and heap-pointer arguments, so every chain
/// parameter becomes a context-sensitivity candidate whose CFL walk
/// spans the whole cluster — and nothing outside it. `edit` perturbs
/// one arithmetic constant inside cluster 0's first user: a ~1%
/// single-function text change whose summary-dirty set is exactly
/// cluster 0.
fn build_module(clusters: usize, edit: Option<u64>) -> manta_ir::Module {
    let mut mb = ModuleBuilder::new("summbench");
    let malloc = mb.extern_fn("malloc", &[], None);
    for k in 0..clusters {
        // Chain, built bottom-up so each link can call the next.
        let mut next = None;
        for i in (0..DEPTH).rev() {
            let (f, mut fb) = mb.function(&format!("w{k}_{i}"), &[Width::W64], Some(Width::W64));
            let x = fb.param(0);
            let y = fb.binop(BinOp::Add, x, x, Width::W64);
            let _ = y;
            let out = match next {
                Some(callee) => fb.call(callee, &[x], Some(Width::W64)).unwrap(),
                None => x,
            };
            fb.ret(Some(out));
            mb.finish_function(fb);
            next = Some(f);
        }
        let head = next.expect("DEPTH > 0");
        for u in 0..USERS {
            let (_, mut ub) = mb.function(&format!("u{k}_{u}"), &[Width::W64], None);
            if u % 2 == 0 {
                // Int caller; the edit retunes user 0 of cluster 0 only.
                let c = if k == 0 && u == 0 {
                    7 + edit.unwrap_or(0)
                } else {
                    7
                };
                let n = ub.const_int(c as i64, Width::W64);
                let p = ub.param(0);
                let n2 = ub.binop(BinOp::Mul, n, p, Width::W64);
                let r = ub.call(head, &[n2], Some(Width::W64)).unwrap();
                let s = ub.alloca(8);
                ub.store(s, r);
            } else {
                let sz = ub.const_int(16, Width::W64);
                let buf = ub.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
                let r = ub.call(head, &[buf], Some(Width::W64)).unwrap();
                let v = ub.load(r, Width::W64);
                let _ = v;
            }
            ub.ret(None);
            mb.finish_function(ub);
        }
    }
    mb.finish()
}

fn analysis(clusters: usize, edit: Option<u64>) -> ModuleAnalysis {
    ModuleAnalysis::build(build_module(clusters, edit))
}

fn bench_summaries(clusters: usize) -> SummaryBench {
    let config = MantaConfig::full();
    let dir = std::env::temp_dir().join(format!("manta-bench-summ-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(AnalysisCache::open(&dir).expect("open cache"));
    let summary_engine = Engine::builder()
        .config(config)
        .cache(cache)
        .summaries(true)
        .build()
        .expect("prebuilt cache cannot fail to attach");
    // The non-summary edit path: a cacheless engine, so leg A pays no
    // store I/O at all — the comparison is conservative in its favor.
    let plain_engine = Engine::new(config);

    let base = analysis(clusters, None);
    let functions = base.module().function_count();

    // Cold: populate the summary state (every chunk computes).
    let start = Instant::now();
    let cold = summary_engine
        .analyze(&base)
        .expect("non-strict cannot fail");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(cold.degradations.is_empty(), "{:?}", cold.degradations);

    // Precision probe through the driver directly: a one-function edit
    // must recompute only cluster 0's chunks while every other cluster
    // replays. This is the same invalidation logic the engine leg uses;
    // probing here keeps the timed loops free of report bookkeeping.
    let (_, state, _) = summaries::solve(&base, &config, None);
    let probe = analysis(clusters, Some(1));
    let (probe_result, _, report) = summaries::solve(&probe, &config, Some(&state));
    let probe_full = Manta::new(config).infer(&probe);
    assert!(
        results_identical(&probe_result, &probe_full),
        "summary-mode solve diverged from the whole-module solve"
    );
    assert!(!report.reused.is_empty(), "clean clusters must replay");
    for name in &report.recomputed {
        let in_cluster0 = name.starts_with("w0_") || name.starts_with("u0_");
        assert!(
            in_cluster0,
            "recompute leaked outside the edited cluster: {name} ({report:?})"
        );
    }
    assert!(
        report.recomputed.iter().any(|n| n == "u0_0"),
        "the edited function itself must recompute: {report:?}"
    );
    let replayed = report.reused.len();
    let recomputed = report.recomputed.len();
    let max_wavefront_width = report.wavefront_widths.iter().copied().max().unwrap_or(0);

    // Leg A — full pipeline on each edited module (what a non-summary
    // engine does on any edit: the module fingerprint changed, so the
    // result cache misses and the whole cascade re-runs).
    let edited: Vec<ModuleAnalysis> = (0..EDITS as u64)
        .map(|i| analysis(clusters, Some(10 + i)))
        .collect();
    let mut full_times = Vec::new();
    for a in &edited {
        let start = Instant::now();
        let r = plain_engine.analyze(a).expect("non-strict cannot fail");
        full_times.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(r.degradations.is_empty());
    }
    let full_edit_ms = median(&mut full_times);

    // Leg B — the same class of edits through the summary engine. Each
    // run validates footprints, replays every clean cluster, and
    // recomputes only the dirty one. Bit-identity vs a fresh
    // whole-module solve is asserted per edit, outside the timer.
    let edited_b: Vec<ModuleAnalysis> = (0..EDITS as u64)
        .map(|i| analysis(clusters, Some(100 + i)))
        .collect();
    let mut summ_times = Vec::new();
    for a in &edited_b {
        let start = Instant::now();
        let r = summary_engine.analyze(a).expect("non-strict cannot fail");
        summ_times.push(start.elapsed().as_secs_f64() * 1e3);
        let full = Manta::new(config).infer(a);
        assert!(
            results_identical(&r, &full),
            "summary-mode engine result diverged after an edit"
        );
    }
    let summary_edit_ms = median(&mut summ_times);

    let _ = std::fs::remove_dir_all(&dir);
    let edit_speedup = full_edit_ms / summary_edit_ms.max(1e-6);
    println!(
        "summaries: cold {cold_ms:9.2} ms  full-edit {full_edit_ms:9.2} ms  \
         summary-edit {summary_edit_ms:9.2} ms ({edit_speedup:6.2}x)  \
         [{functions} funcs, {replayed} replayed / {recomputed} recomputed chunks]"
    );
    SummaryBench {
        functions,
        clusters,
        cold_ms,
        full_edit_ms,
        summary_edit_ms,
        edit_speedup,
        replayed,
        recomputed,
        max_wavefront_width,
    }
}

fn render(b: &SummaryBench) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("manta-bench/summaries/v1");
    manta_bench::host::write_host(&mut w, &manta_bench::host::host_meta());
    w.key("functions");
    w.uint(b.functions as u64);
    w.key("clusters");
    w.uint(b.clusters as u64);
    w.key("cold_ms");
    w.float(b.cold_ms);
    w.key("full_edit_ms");
    w.float(b.full_edit_ms);
    w.key("summary_edit_ms");
    w.float(b.summary_edit_ms);
    w.key("edit_speedup");
    w.float(b.edit_speedup);
    w.key("replayed_chunks");
    w.uint(b.replayed as u64);
    w.key("recomputed_chunks");
    w.uint(b.recomputed as u64);
    w.key("max_wavefront_width");
    w.uint(b.max_wavefront_width as u64);
    w.end_object();
    w.finish()
}

/// The edit speedup must clear the absolute [`EDIT_FLOOR`] — the
/// feature's acceptance contract, independent of host. A drop below
/// 90% of the committed baseline above the floor is reported as noise:
/// the summary leg is mostly fixed fingerprint/global-pass cost, so the
/// ratio legitimately varies with the host's per-walk cost.
fn check_regression(bench: &SummaryBench, baseline_path: &str) -> bool {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let base =
        parse(&text).unwrap_or_else(|e| panic!("baseline {baseline_path} is not valid JSON: {e}"));
    let base_speedup = base
        .get("edit_speedup")
        .and_then(JsonValue::as_f64)
        .expect("baseline edit_speedup");
    if bench.edit_speedup < EDIT_FLOOR {
        eprintln!(
            "REGRESSION: summary edit speedup fell to {:.2}x, below the {EDIT_FLOOR}x \
             acceptance floor (baseline {base_speedup:.2}x)",
            bench.edit_speedup
        );
        return false;
    }
    if bench.edit_speedup < 0.9 * base_speedup {
        println!(
            "edit speedup {:.2}x is below 90% of the {base_speedup:.2}x baseline but above \
             the {EDIT_FLOOR}x floor — treating as noise",
            bench.edit_speedup
        );
    }
    true
}

/// `--probe`: where does a summary-mode edit solve spend its time?
/// Prints the persisted state size and the telemetry span tree for one
/// bare summary solve, one full solve, and one engine-level summary
/// analyze — the tool for deciding whether a speedup regression is walk
/// cost, fingerprint cost, or store overhead.
fn probe(clusters: usize) {
    let config = MantaConfig::full();
    let base = analysis(clusters, None);
    let (_, state, _) = summaries::solve(&base, &config, None);
    println!("state size: {} bytes", state.len());
    let edited = analysis(clusters, Some(5));
    manta_telemetry::set_enabled(true);
    manta_telemetry::reset();
    let t = Instant::now();
    let _ = summaries::solve(&edited, &config, Some(&state));
    println!("summary solve: {:.2} ms", t.elapsed().as_secs_f64() * 1e3);
    print!("{}", manta_telemetry::report().render_text());
    manta_telemetry::reset();
    let t = Instant::now();
    let _ = Manta::new(config).infer(&edited);
    println!("full solve: {:.2} ms", t.elapsed().as_secs_f64() * 1e3);
    print!("{}", manta_telemetry::report().render_text());

    // Engine-level timing: what the cached summary path adds on top of
    // the bare solve (store get/put, result encode).
    let dir = std::env::temp_dir().join("manta-bench-summ-probe");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(AnalysisCache::open(&dir).expect("open cache"));
    let engine = Engine::builder()
        .config(config)
        .cache(cache)
        .summaries(true)
        .build()
        .unwrap();
    let _ = engine.analyze(&base);
    let e2 = analysis(clusters, Some(6));
    manta_telemetry::reset();
    let t = Instant::now();
    let _ = engine.analyze(&e2);
    println!(
        "engine summary analyze: {:.2} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    print!("{}", manta_telemetry::report().render_text());
    let _ = std::fs::remove_dir_all(&dir);
}
