//! Regenerates Figure 2: over-approximated/unknown profiling on the
//! 118-binary corpus.
use manta_eval::experiments::figure2;
use manta_eval::runner::{load_coreutils, load_projects};

fn main() {
    let mut corpus = load_projects();
    corpus.extend(load_coreutils());
    println!("{}", figure2::run(&corpus).render());
}
