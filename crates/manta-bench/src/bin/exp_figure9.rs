//! Regenerates Figure 9: inference-result proportions per sensitivity.
use manta_eval::experiments::figure9;
use manta_eval::runner::load_projects;

fn main() {
    println!("{}", figure9::run(&load_projects()).render());
}
