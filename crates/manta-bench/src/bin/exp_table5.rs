//! Regenerates Table 5: firmware bug detection per tool.
use manta_eval::experiments::table5;
use manta_eval::runner::load_firmware;

fn main() {
    println!("{}", table5::run(&load_firmware()).render());
}
