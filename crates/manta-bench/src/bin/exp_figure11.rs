//! Regenerates Figure 11: indirect-call analysis recall per tool.
use manta_eval::experiments::{figure11, table4};
use manta_eval::runner::load_projects;

fn main() {
    let t4 = table4::run(&load_projects());
    println!("{}", figure11::run(&t4).render());
}
