//! Regenerates Table 3: type-inference precision/recall per tool.
use manta_eval::experiments::table3;
use manta_eval::runner::{load_coreutils, load_projects};

fn main() {
    let projects = load_projects();
    let coreutils = load_coreutils();
    println!("{}", table3::run(&projects, &coreutils).render());
}
