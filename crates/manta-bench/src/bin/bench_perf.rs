//! Performance trajectory benchmark: delta vs reference points-to solver,
//! and end-to-end pipeline wall time across pool sizes.
//!
//! ```text
//! bench_perf                       measure, write BENCH_pointsto.json +
//!                                  BENCH_pipeline.json into the CWD
//! bench_perf --out <dir>           write the JSONs elsewhere
//! bench_perf --projects <n>        limit to the first n suite projects
//!                                  (the largest is always kept)
//! bench_perf --check <pointsto.json> <pipeline.json>
//!                                  measure fresh and fail (exit 1) when a
//!                                  speedup ratio regressed >10% against
//!                                  the committed baseline
//! ```
//!
//! Speedup *ratios* — not absolute times — are what the `--check` guard
//! compares, so a baseline recorded on one machine remains meaningful on
//! another. Each ratio is a median over interleaved reference/delta rep
//! pairs, and the pointsto guard keeps an absolute floor escape
//! ([`SPEEDUP_FLOOR`]) so host noise around a high baseline cannot fail
//! the check while the optimization demonstrably holds. On single-core
//! hosts the pool inlines and the pipeline ratio is ~1.0; thread-scaling
//! ratios are only guarded when the host has >1 core.

use std::time::Instant;

use manta::{Engine, MantaConfig};
use manta_analysis::{CallGraph, PointsTo, PointsToSession, PreprocessConfig};
use manta_bench::harness::median;
use manta_ir::{ModuleBuilder, Width};
use manta_store::json::{parse, JsonValue, JsonWriter};
use manta_workloads::project_suite;

/// Pool sizes the pipeline leg sweeps.
const THREADS: [usize; 3] = [1, 2, 4];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut limit: Option<usize> = None;
    let mut check: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = it.next().expect("--out requires a directory").clone(),
            "--projects" => {
                limit = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--projects requires a number"),
                )
            }
            "--check" => {
                let p = it.next().expect("--check requires two baseline paths");
                let q = it.next().expect("--check requires two baseline paths");
                check = Some((p.clone(), q.clone()));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    manta_telemetry::set_enabled(true);
    let pointsto = bench_pointsto(limit);
    let pipeline = bench_pipeline(limit);
    manta_telemetry::set_enabled(false);

    match check {
        None => {
            let p1 = format!("{out_dir}/BENCH_pointsto.json");
            let p2 = format!("{out_dir}/BENCH_pipeline.json");
            std::fs::write(&p1, render_pointsto(&pointsto)).expect("write BENCH_pointsto.json");
            std::fs::write(&p2, render_pipeline(&pipeline)).expect("write BENCH_pipeline.json");
            println!("wrote {p1} and {p2}");
        }
        Some((base_pts, base_pipe)) => {
            let ok = check_regressions(&pointsto, &pipeline, &base_pts, &base_pipe);
            if !ok {
                std::process::exit(1);
            }
            println!("bench check passed (no speedup regressed >10% vs baseline)");
        }
    }
}

/// One project's solver measurement.
struct PointstoRow {
    name: String,
    functions: usize,
    reference_ms: f64,
    delta_ms: f64,
    speedup: f64,
    /// Compositional (per-function partition) solve under the ambient
    /// pool; same least fixpoint as the monolithic delta solve.
    partitioned_ms: f64,
    /// `reference_ms / partitioned_ms`, parallel to `speedup`.
    partitioned_speedup: f64,
    peak_pts: usize,
    worklist_iters: u64,
}

struct PointstoBench {
    rows: Vec<PointstoRow>,
    /// Name and speedup of the project with the most functions.
    largest: (String, f64),
    partitioned: PartitionedBench,
}

/// The compositional solver's two headline contracts on the stress
/// project: batch-mode (all partitions dirty, wavefront-scheduled
/// across the pool) vs the monolithic delta solve, and a one-function
/// edit re-solved through a live [`PointsToSession`] vs a from-scratch
/// solve.
struct PartitionedBench {
    threads: usize,
    partitions: usize,
    monolithic_ms: f64,
    partitioned_ms: f64,
    /// Batch-mode win at [`BATCH_THREADS`]: `monolithic_ms / partitioned_ms`.
    speedup: f64,
    edit_full_ms: f64,
    edit_update_ms: f64,
    /// Incremental win: full re-solve time over `session.update` time
    /// after editing one function.
    edit_speedup: f64,
    /// Partitions the edit's dirty closure actually re-ran (out of
    /// `partitions`).
    edit_resolved: usize,
}

struct PipelineBench {
    cores: usize,
    /// `(threads, wall_ms)` per sweep point.
    walls: Vec<(usize, f64)>,
    speedup_at_2: f64,
    speedup_at_4: f64,
    batch: BatchBench,
}

/// Whole-module batch scheduling: `Engine::analyze_batch` over the
/// prepared suite vs an element-wise sequential loop.
struct BatchBench {
    threads: usize,
    sequential_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

/// Paired repetitions per solver measurement. Reference and delta runs
/// interleave rep by rep so bursty machine noise hits both solvers
/// alike, and the recorded time is the per-solver median — the ratio of
/// medians is what `--check` guards, so stability across runs matters
/// more than the fastest single sample.
const REPS: usize = 5;

fn counter(name: &str) -> u64 {
    manta_telemetry::report()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn suite(limit: Option<usize>) -> Vec<manta_workloads::ProjectSpec> {
    let mut specs = project_suite();
    if let Some(n) = limit {
        // Keep the largest project (by function count) in reduced runs —
        // it anchors the headline speedup.
        let largest = specs
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.functions)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let keep_largest = largest >= n;
        let tail = specs.split_off(n.min(specs.len()));
        if keep_largest {
            if let Some(l) = tail.into_iter().max_by_key(|s| s.functions) {
                specs.push(l);
            }
        }
    }
    specs
}

/// Pointer-intensive stress project. Each function threads the addresses
/// of `fan` stack slots through a `chain`-deep store/load relay: the
/// whole-set reference solver advances one relay link per outer round and
/// re-derives every complex constraint in every round, so its cost is
/// `rounds × constraints × set-size`, while the delta solver visits each
/// `(edge, object)` pair once. This is the shape that motivated the delta
/// rewrite; the suite projects above have near-singleton points-to sets
/// and shallow chains, so they understate the gap.
fn stress_module(functions: usize, fan: usize, chain: usize) -> manta_ir::Module {
    stress_module_edited(functions, fan, chain, None)
}

/// [`stress_module`] with one function's relay deepened by a few links —
/// the "one-function edit" the incremental session leg re-solves. The
/// other `functions - 1` bodies are byte-identical to the base module,
/// so only the edited partition's constraint fingerprint changes.
fn stress_module_edited(
    functions: usize,
    fan: usize,
    chain: usize,
    edited: Option<usize>,
) -> manta_ir::Module {
    let mut mb = ModuleBuilder::new("pointsto_stress");
    for i in 0..functions {
        let depth = if edited == Some(i) { chain + 4 } else { chain };
        let (_, mut fb) = mb.function(&format!("chain_{i}"), &[], None);
        let slots: Vec<_> = (0..fan).map(|_| fb.alloca(8)).collect();
        let cells: Vec<_> = (0..depth).map(|_| fb.alloca(8)).collect();
        for &s in &slots {
            fb.store(cells[0], s);
        }
        let mut v = fb.load(cells[0], Width::W64);
        for &cell in &cells[1..] {
            fb.store(cell, v);
            v = fb.load(cell, Width::W64);
        }
        fb.ret(None);
        mb.finish_function(fb);
    }
    mb.finish()
}

fn measure_pointsto(name: &str, functions: usize, module: manta_ir::Module) -> PointstoRow {
    let pre = manta_analysis::preprocess(module, PreprocessConfig::default());
    let cg = CallGraph::build(&pre);
    let mut refs = Vec::new();
    let mut deltas = Vec::new();
    let mut parts = Vec::new();
    let mut pts = None;
    let iters_before = counter("pointsto.worklist_iters");
    let begun = Instant::now();
    while refs.len() < REPS {
        let t = Instant::now();
        let _ = PointsTo::solve_reference(&pre, &cg);
        refs.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        pts = Some(PointsTo::solve(&pre, &cg));
        deltas.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let _ = PointsTo::solve_partitioned(&pre, &cg);
        parts.push(t.elapsed().as_secs_f64() * 1e3);
        // Two paired reps are enough once a slow reference solver has
        // already eaten the time budget for this row.
        if refs.len() >= 2 && begun.elapsed().as_secs_f64() > 6.0 {
            break;
        }
    }
    // The solve is deterministic, so the counter delta divides evenly
    // across the reps.
    let worklist_iters = (counter("pointsto.worklist_iters") - iters_before) / deltas.len() as u64;
    let pts = pts.expect("at least one rep ran");
    // Median of per-rep ratios, not ratio of medians: each ratio pairs
    // two adjacent-in-time runs, so slow spells on a noisy host inflate
    // numerator and denominator together and mostly cancel.
    let mut ratios: Vec<f64> = refs
        .iter()
        .zip(&deltas)
        .map(|(r, d)| r / d.max(1e-6))
        .collect();
    let speedup = median(&mut ratios);
    let mut part_ratios: Vec<f64> = refs
        .iter()
        .zip(&parts)
        .map(|(r, p)| r / p.max(1e-6))
        .collect();
    let partitioned_speedup = median(&mut part_ratios);
    let reference_ms = median(&mut refs);
    let delta_ms = median(&mut deltas);
    let partitioned_ms = median(&mut parts);
    println!(
        "pointsto {name:<16} ref {reference_ms:9.2} ms  delta {delta_ms:9.2} ms  {speedup:6.2}x  part {partitioned_ms:9.2} ms  peak {:5}  iters {worklist_iters}",
        pts.max_pts_len(),
    );
    PointstoRow {
        name: name.to_string(),
        functions,
        reference_ms,
        delta_ms,
        speedup,
        partitioned_ms,
        partitioned_speedup,
        peak_pts: pts.max_pts_len(),
        worklist_iters,
    }
}

fn bench_pointsto(limit: Option<usize>) -> PointstoBench {
    let mut rows = Vec::new();
    for spec in suite(limit) {
        let generated = spec.generate();
        rows.push(measure_pointsto(
            &spec.name,
            spec.functions,
            generated.module,
        ));
    }
    // The stress project is deliberately the largest (by function count):
    // it anchors the headline delta-vs-reference speedup.
    rows.push(measure_pointsto(
        "synthetic_stress",
        320,
        stress_module(320, 12, 24),
    ));
    let largest = rows
        .iter()
        .max_by_key(|r| r.functions)
        .map(|r| (r.name.clone(), r.speedup))
        .unwrap_or_default();
    println!("largest project {} speedup {:.2}x", largest.0, largest.1);
    let partitioned = bench_partitioned();
    PointstoBench {
        rows,
        largest,
        partitioned,
    }
}

/// Measures the compositional solver's two contracts on the stress
/// project.
///
/// Batch mode: all 320 call-free functions form one wavefront level, so
/// partitions schedule across the pool at [`BATCH_THREADS`] while the
/// monolithic delta solve is inherently sequential.
///
/// Edit mode: a live [`PointsToSession`] absorbs a one-function edit;
/// constraint fingerprints confine the dirty closure to the edited
/// partition, so the update cost is ~1/320 of a from-scratch solve.
/// The edit alternates between the base and the edited module so every
/// timed `update` does real re-solving work.
fn bench_partitioned() -> PartitionedBench {
    const FUNCS: usize = 320;
    let pre_base =
        manta_analysis::preprocess(stress_module(FUNCS, 12, 24), PreprocessConfig::default());
    let pre_edit = manta_analysis::preprocess(
        stress_module_edited(FUNCS, 12, 24, Some(0)),
        PreprocessConfig::default(),
    );
    let cg = CallGraph::build(&pre_base);

    // Batch leg: monolithic on one thread vs partitioned across the
    // pool, interleaved rep by rep like `measure_pointsto`.
    let mut monos = Vec::new();
    let mut parts = Vec::new();
    let begun = Instant::now();
    while monos.len() < REPS {
        manta_parallel::set_threads(1);
        let t = Instant::now();
        let _ = PointsTo::solve(&pre_base, &cg);
        monos.push(t.elapsed().as_secs_f64() * 1e3);
        manta_parallel::set_threads(BATCH_THREADS);
        let t = Instant::now();
        let _ = PointsTo::solve_partitioned(&pre_base, &cg);
        parts.push(t.elapsed().as_secs_f64() * 1e3);
        if monos.len() >= 2 && begun.elapsed().as_secs_f64() > 6.0 {
            break;
        }
    }
    manta_parallel::set_threads(0);
    let mut ratios: Vec<f64> = monos
        .iter()
        .zip(&parts)
        .map(|(m, p)| m / p.max(1e-6))
        .collect();
    let speedup = median(&mut ratios);
    let monolithic_ms = median(&mut monos);
    let partitioned_ms = median(&mut parts);

    // Edit leg: full from-scratch session vs a one-function update on a
    // live session, alternating edit targets so no update is a no-op.
    let mut session = PointsToSession::new(&pre_base);
    let partitions = session.partition_count();
    let mut fulls = Vec::new();
    let mut updates = Vec::new();
    let mut edit_resolved = 0;
    for rep in 0..REPS {
        let target = if rep % 2 == 0 { &pre_edit } else { &pre_base };
        let t = Instant::now();
        let fresh = PointsToSession::new(target);
        fulls.push(t.elapsed().as_secs_f64() * 1e3);
        drop(fresh);
        let t = Instant::now();
        let report = session.update(target);
        updates.push(t.elapsed().as_secs_f64() * 1e3);
        // The bench is only honest if the update really was incremental:
        // a counted full re-solve here means the fingerprint diff broke.
        assert!(
            !report.full_resolve && report.resolved <= 2,
            "one-function edit dirtied {} of {partitions} partitions",
            report.resolved
        );
        edit_resolved = edit_resolved.max(report.resolved);
    }
    let mut edit_ratios: Vec<f64> = fulls
        .iter()
        .zip(&updates)
        .map(|(f, u)| f / u.max(1e-6))
        .collect();
    let edit_speedup = median(&mut edit_ratios);
    let edit_full_ms = median(&mut fulls);
    let edit_update_ms = median(&mut updates);

    println!(
        "partitioned threads={BATCH_THREADS} mono {monolithic_ms:9.2} ms  \
         part {partitioned_ms:9.2} ms  {speedup:6.2}x  ({partitions} partitions)"
    );
    println!(
        "edit        full {edit_full_ms:9.2} ms  update {edit_update_ms:9.2} ms  \
         {edit_speedup:6.2}x  ({edit_resolved}/{partitions} partitions re-solved)"
    );
    PartitionedBench {
        threads: BATCH_THREADS,
        partitions,
        monolithic_ms,
        partitioned_ms,
        speedup,
        edit_full_ms,
        edit_update_ms,
        edit_speedup,
        edit_resolved,
    }
}

fn bench_pipeline(limit: Option<usize>) -> PipelineBench {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let specs = suite(limit);
    let engine = Engine::new(MantaConfig::full());
    let mut walls = Vec::new();
    for &t in &THREADS {
        manta_parallel::set_threads(t);
        let start = Instant::now();
        let load = manta_eval::runner::load_specs_checked(
            specs.clone(),
            manta_resilience::BudgetSpec::default(),
        );
        assert!(load.is_clean(), "suite must build: {:?}", load.failures);
        for p in &load.projects {
            let _ = engine.analyze(&p.analysis);
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "pipeline threads={t} {wall_ms:9.2} ms ({} projects)",
            load.projects.len()
        );
        walls.push((t, wall_ms));
    }
    manta_parallel::set_threads(0);
    let wall_at = |t: usize| {
        walls
            .iter()
            .find(|&&(n, _)| n == t)
            .map(|&(_, ms)| ms)
            .unwrap_or(f64::NAN)
    };
    let speedup_at_2 = wall_at(1) / wall_at(2).max(1e-6);
    let speedup_at_4 = wall_at(1) / wall_at(4).max(1e-6);
    println!("pipeline speedup: {speedup_at_2:.2}x @2, {speedup_at_4:.2}x @4 ({cores} cores)");
    let batch = bench_batch(&engine, &specs, cores);
    PipelineBench {
        cores,
        walls,
        speedup_at_2,
        speedup_at_4,
        batch,
    }
}

/// Pool size the batch leg schedules whole-module jobs across.
const BATCH_THREADS: usize = 8;

/// Measures whole-module batch scheduling: the suite's prepared
/// analyses run element-wise on one thread, then as one
/// [`Engine::analyze_batch`] across the pool. Substrate building is
/// excluded — this isolates the scheduling win of module-level jobs.
fn bench_batch(
    engine: &Engine,
    specs: &[manta_workloads::ProjectSpec],
    cores: usize,
) -> BatchBench {
    let load = manta_eval::runner::load_specs_checked(
        specs.to_vec(),
        manta_resilience::BudgetSpec::default(),
    );
    assert!(load.is_clean(), "suite must build: {:?}", load.failures);
    let analyses: Vec<_> = load.projects.into_iter().map(|p| p.analysis).collect();

    manta_parallel::set_threads(1);
    let start = Instant::now();
    for a in &analyses {
        let _ = engine.analyze(a);
    }
    let sequential_ms = start.elapsed().as_secs_f64() * 1e3;

    manta_parallel::set_threads(BATCH_THREADS);
    let start = Instant::now();
    let results = engine.analyze_batch(&analyses);
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(results.len(), analyses.len());
    manta_parallel::set_threads(0);

    let speedup = sequential_ms / parallel_ms.max(1e-6);
    println!(
        "batch    threads={BATCH_THREADS} sequential {sequential_ms:9.2} ms  \
         batch {parallel_ms:9.2} ms  {speedup:6.2}x ({cores} cores)"
    );
    BatchBench {
        threads: BATCH_THREADS,
        sequential_ms,
        parallel_ms,
        speedup,
    }
}

fn render_pointsto(b: &PointstoBench) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("manta-bench/pointsto/v2");
    manta_bench::host::write_host(&mut w, &manta_bench::host::host_meta());
    w.key("projects");
    w.begin_array();
    for r in &b.rows {
        w.begin_object();
        w.key("name");
        w.string(&r.name);
        w.key("functions");
        w.uint(r.functions as u64);
        w.key("reference_ms");
        w.float(r.reference_ms);
        w.key("delta_ms");
        w.float(r.delta_ms);
        w.key("speedup");
        w.float(r.speedup);
        w.key("partitioned_ms");
        w.float(r.partitioned_ms);
        w.key("partitioned_speedup");
        w.float(r.partitioned_speedup);
        w.key("peak_pts");
        w.uint(r.peak_pts as u64);
        w.key("worklist_iters");
        w.uint(r.worklist_iters);
        w.end_object();
    }
    w.end_array();
    w.key("largest");
    w.begin_object();
    w.key("name");
    w.string(&b.largest.0);
    w.key("speedup");
    w.float(b.largest.1);
    w.end_object();
    w.key("partitioned");
    w.begin_object();
    w.key("threads");
    w.uint(b.partitioned.threads as u64);
    w.key("partitions");
    w.uint(b.partitioned.partitions as u64);
    w.key("monolithic_ms");
    w.float(b.partitioned.monolithic_ms);
    w.key("partitioned_ms");
    w.float(b.partitioned.partitioned_ms);
    w.key("speedup");
    w.float(b.partitioned.speedup);
    w.key("edit_full_ms");
    w.float(b.partitioned.edit_full_ms);
    w.key("edit_update_ms");
    w.float(b.partitioned.edit_update_ms);
    w.key("edit_speedup");
    w.float(b.partitioned.edit_speedup);
    w.key("edit_resolved");
    w.uint(b.partitioned.edit_resolved as u64);
    w.end_object();
    w.end_object();
    w.finish()
}

fn render_pipeline(b: &PipelineBench) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("manta-bench/pipeline/v1");
    manta_bench::host::write_host(&mut w, &manta_bench::host::host_meta());
    w.key("cores");
    w.uint(b.cores as u64);
    w.key("runs");
    w.begin_array();
    for &(t, ms) in &b.walls {
        w.begin_object();
        w.key("threads");
        w.uint(t as u64);
        w.key("wall_ms");
        w.float(ms);
        w.end_object();
    }
    w.end_array();
    w.key("speedup_at_2");
    w.float(b.speedup_at_2);
    w.key("speedup_at_4");
    w.float(b.speedup_at_4);
    w.key("batch");
    w.begin_object();
    w.key("threads");
    w.uint(b.batch.threads as u64);
    w.key("sequential_ms");
    w.float(b.batch.sequential_ms);
    w.key("parallel_ms");
    w.float(b.batch.parallel_ms);
    w.key("speedup");
    w.float(b.batch.speedup);
    w.end_object();
    w.end_object();
    w.finish()
}

fn read_json(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"))
}

/// Floor under which the delta solver's headline speedup is a failure
/// no matter what the baseline recorded — the solver rewrite's
/// acceptance contract on the largest project.
const SPEEDUP_FLOOR: f64 = 3.0;

/// `fresh >= 0.9 * baseline` for every guarded speedup ratio. The
/// pointsto ratio additionally passes whenever it clears
/// [`SPEEDUP_FLOOR`]: run-to-run noise on a loaded host can move an
/// 8x measurement by more than 10%, but a genuine solver regression
/// collapses it toward 1x, which both clauses catch.
fn check_regressions(
    pointsto: &PointstoBench,
    pipeline: &PipelineBench,
    base_pts_path: &str,
    base_pipe_path: &str,
) -> bool {
    let mut ok = true;
    let base_pts = read_json(base_pts_path);
    let base_largest = base_pts
        .get("largest")
        .and_then(|l| l.get("speedup"))
        .and_then(JsonValue::as_f64)
        .expect("baseline pointsto largest.speedup");
    if pointsto.largest.1 < 0.9 * base_largest && pointsto.largest.1 < SPEEDUP_FLOOR {
        eprintln!(
            "REGRESSION: pointsto speedup on {} fell to {:.2}x \
             (baseline {:.2}x, floor {SPEEDUP_FLOOR}x)",
            pointsto.largest.0, pointsto.largest.1, base_largest
        );
        ok = false;
    } else if pointsto.largest.1 < 0.9 * base_largest {
        println!(
            "pointsto speedup on {} is {:.2}x, below 90% of the {:.2}x \
             baseline but above the {SPEEDUP_FLOOR}x floor — treating as noise",
            pointsto.largest.0, pointsto.largest.1, base_largest
        );
    }
    // Thread-scaling ratios are only meaningful with real parallel
    // hardware on both sides of the comparison.
    let base_pipe = read_json(base_pipe_path);
    let base_cores = base_pipe
        .get("cores")
        .and_then(JsonValue::as_f64)
        .unwrap_or(1.0);
    if pipeline.cores > 1 && base_cores > 1.0 {
        let base_s4 = base_pipe
            .get("speedup_at_4")
            .and_then(JsonValue::as_f64)
            .expect("baseline pipeline speedup_at_4");
        if pipeline.speedup_at_4 < 0.9 * base_s4 {
            eprintln!(
                "REGRESSION: pipeline speedup@4 fell to {:.2}x (baseline {:.2}x)",
                pipeline.speedup_at_4, base_s4
            );
            ok = false;
        }
    } else {
        println!("skipping thread-scaling guard (single-core host or baseline)");
    }
    // The batch-scheduling guard: whole-module jobs across the pool
    // must beat the sequential loop by BATCH_SPEEDUP_FLOOR on real
    // parallel hardware. Baselines recorded before the batch leg
    // existed are tolerated (no `batch` object → skip).
    let base_batch = base_pipe
        .get("batch")
        .and_then(|b| b.get("speedup"))
        .and_then(JsonValue::as_f64);
    if pipeline.cores < 4 {
        // A skipped guard must be impossible to miss in a green CI log:
        // the >= 1.5x batch-speedup contract was NOT checked on this
        // host. `::warning::` renders as an annotation on GitHub
        // runners; the stderr banner covers every other harness.
        println!(
            "::warning title=batch guard skipped::host has {} cores; \
             the >= {BATCH_SPEEDUP_FLOOR}x analyze_batch speedup guard needs 4",
            pipeline.cores
        );
        eprintln!(
            "##############################################################\n\
             # BATCH GUARD SKIPPED: host has {} cores (needs >= 4).       \n\
             # The >= {BATCH_SPEEDUP_FLOOR}x analyze_batch speedup contract was NOT verified. \n\
             ##############################################################",
            pipeline.cores
        );
    } else if base_batch.is_none() {
        println!("skipping batch baseline comparison (baseline has no batch leg)");
        if pipeline.batch.speedup < BATCH_SPEEDUP_FLOOR {
            eprintln!(
                "REGRESSION: batch speedup@{} is {:.2}x, below the {BATCH_SPEEDUP_FLOOR}x floor",
                pipeline.batch.threads, pipeline.batch.speedup
            );
            ok = false;
        }
    } else if pipeline.batch.speedup < BATCH_SPEEDUP_FLOOR {
        eprintln!(
            "REGRESSION: batch speedup@{} fell to {:.2}x (baseline {:.2}x, floor {BATCH_SPEEDUP_FLOOR}x)",
            pipeline.batch.threads,
            pipeline.batch.speedup,
            base_batch.unwrap_or(f64::NAN)
        );
        ok = false;
    }
    // Compositional points-to batch-mode guard: wavefront-scheduled
    // partitions must beat the monolithic delta solve on real parallel
    // hardware. Baselines recorded before the partitioned leg existed
    // (schema v1, no `partitioned` object) are tolerated.
    let part = &pointsto.partitioned;
    if pipeline.cores < 4 {
        println!(
            "::warning title=partitioned guard skipped::host has {} cores; \
             the >= {PARTITIONED_SPEEDUP_FLOOR}x partitioned points-to speedup \
             guard needs 4",
            pipeline.cores
        );
        eprintln!(
            "##############################################################\n\
             # PARTITIONED GUARD SKIPPED: host has {} cores (needs >= 4). \n\
             # The >= {PARTITIONED_SPEEDUP_FLOOR}x partitioned-vs-monolithic batch contract \n\
             # was NOT verified.                                          \n\
             ##############################################################",
            pipeline.cores
        );
    } else if part.speedup < PARTITIONED_SPEEDUP_FLOOR {
        eprintln!(
            "REGRESSION: partitioned batch speedup@{} is {:.2}x, below the \
             {PARTITIONED_SPEEDUP_FLOOR}x floor",
            part.threads, part.speedup
        );
        ok = false;
    }
    // The one-function-edit guard runs everywhere: the incremental win
    // comes from re-solving 1/N partitions, not from thread count.
    let base_edit = base_pts
        .get("partitioned")
        .and_then(|p| p.get("edit_speedup"))
        .and_then(JsonValue::as_f64);
    if part.edit_speedup < EDIT_SPEEDUP_FLOOR {
        eprintln!(
            "REGRESSION: one-function-edit re-solve speedup is {:.2}x, below \
             the {EDIT_SPEEDUP_FLOOR}x floor (baseline {:.2}x)",
            part.edit_speedup,
            base_edit.unwrap_or(f64::NAN)
        );
        ok = false;
    } else if let Some(base) = base_edit {
        if part.edit_speedup < 0.9 * base {
            println!(
                "edit re-solve speedup is {:.2}x, below 90% of the {base:.2}x \
                 baseline but above the {EDIT_SPEEDUP_FLOOR}x floor — treating as noise",
                part.edit_speedup
            );
        }
    }
    ok
}

/// Minimum acceptable partitioned-vs-monolithic batch speedup at
/// [`BATCH_THREADS`] threads on a multi-core (>= 4) host: with every
/// partition dirty, wavefront scheduling must win despite the
/// boundary-merge overhead.
const PARTITIONED_SPEEDUP_FLOOR: f64 = 1.3;

/// Minimum acceptable full-solve / one-function-update ratio for a live
/// [`PointsToSession`]. Thread-independent: the win is the dirty
/// closure's size (one partition of hundreds), so it holds even on a
/// single-core host.
const EDIT_SPEEDUP_FLOOR: f64 = 3.0;

/// Minimum acceptable `analyze_batch` speedup over the sequential loop
/// at [`BATCH_THREADS`] threads on a multi-core (>= 4) host.
const BATCH_SPEEDUP_FLOOR: f64 = 1.5;
