//! Regenerates Table 4: indirect-call #AICT and pruning precision.
use manta_eval::experiments::table4;
use manta_eval::runner::load_projects;

fn main() {
    println!("{}", table4::run(&load_projects()).render());
}
