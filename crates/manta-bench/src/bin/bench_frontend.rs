//! Frontend lift throughput: bytes-to-SSA wall time for both registered
//! frontends over the same dual-encoded corpus, plus a hard parity
//! assertion (the corpus is the differential suite's shape, so a
//! divergence here is a correctness bug, not a perf regression).
//!
//! ```text
//! bench_frontend                   measure, write BENCH_frontend.json
//! bench_frontend --out <dir>       write the JSON elsewhere
//! bench_frontend --check <frontend.json>
//!                                  measure fresh and fail (exit 1) when
//!                                  either lifter falls below the
//!                                  absolute throughput floor
//! ```
//!
//! Unlike the solver benches, the `--check` guard here is an *absolute*
//! floor ([`MIN_MIB_PER_S`]) rather than a baseline ratio: lifting is a
//! single linear pass and even a slow CI host clears the floor by an
//! order of magnitude, while an accidentally-quadratic decoder or
//! SSA-construction regression lands far below it.

use std::time::Instant;

use manta_bench::harness::median;
use manta_ir::printer::print_module;
use manta_ir::Frontend;
use manta_store::json::{parse, JsonValue, JsonWriter};
use manta_workloads::generator::GenSpec;
use manta_workloads::{emit_dual, generate, PhenomenonMix};

/// Paired repetitions per corpus program.
const REPS: usize = 5;

/// Absolute lift-throughput floor, MiB of machine code per second.
const MIN_MIB_PER_S: f64 = 1.0;

/// One program's measurement: both encodings of the same module.
struct Row {
    name: String,
    sb_bytes: usize,
    x86_bytes: usize,
    sb_ms: f64,
    x86_ms: f64,
}

impl Row {
    fn mib_per_s(bytes: usize, ms: f64) -> f64 {
        (bytes as f64 / (1024.0 * 1024.0)) / (ms.max(1e-6) / 1e3)
    }

    fn sb_mib_s(&self) -> f64 {
        Self::mib_per_s(self.sb_bytes, self.sb_ms)
    }

    fn x86_mib_s(&self) -> f64 {
        Self::mib_per_s(self.x86_bytes, self.x86_ms)
    }
}

fn corpus() -> Vec<(String, manta_ir::Module)> {
    // Three sizes spanning the generator's range; seeds are arbitrary
    // but fixed so runs are comparable.
    [(6usize, 21u64), (12, 22), (24, 23)]
        .into_iter()
        .map(|(functions, seed)| {
            let prog = generate(&GenSpec {
                name: format!("lift_{functions}f"),
                functions,
                mix: PhenomenonMix::balanced(),
                seed,
            });
            (format!("lift_{functions}f"), prog.module)
        })
        .collect()
}

fn measure(name: &str, module: &manta_ir::Module) -> Row {
    let dual = emit_dual(module).expect("generated module lowers");
    let sb_bytes = dual.sb_bytes();
    let x86_bytes = dual.x86_bytes();
    let sb_fe = manta_isa::lift::SbFrontend;
    let x86_fe = manta_x86::X86Frontend;

    // Parity is the precondition for the throughput numbers meaning
    // anything: both lifters must reconstruct the same module.
    let sb_lifted = sb_fe.lift_bytes(&sb_bytes).expect("sb lift");
    let x86_lifted = x86_fe.lift_bytes(&x86_bytes).expect("x86 lift");
    assert_eq!(
        print_module(&sb_lifted),
        print_module(&x86_lifted),
        "{name}: lifted IR diverges between encodings"
    );

    // Interleave the two lifters rep by rep so host noise hits both.
    let mut sb_ms = Vec::with_capacity(REPS);
    let mut x86_ms = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        let _ = sb_fe.lift_bytes(&sb_bytes).expect("sb lift");
        sb_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let _ = x86_fe.lift_bytes(&x86_bytes).expect("x86 lift");
        x86_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let row = Row {
        name: name.to_string(),
        sb_bytes: sb_bytes.len(),
        x86_bytes: x86_bytes.len(),
        sb_ms: median(&mut sb_ms),
        x86_ms: median(&mut x86_ms),
    };
    println!(
        "lift {name:<12} sb {:6} B {:8.3} ms ({:8.1} MiB/s)   x86 {:6} B {:8.3} ms ({:8.1} MiB/s)",
        row.sb_bytes,
        row.sb_ms,
        row.sb_mib_s(),
        row.x86_bytes,
        row.x86_ms,
        row.x86_mib_s(),
    );
    row
}

fn render(rows: &[Row]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("manta-bench/frontend/v1");
    manta_bench::host::write_host(&mut w, &manta_bench::host::host_meta());
    w.key("programs");
    w.begin_array();
    for r in rows {
        w.begin_object();
        w.key("name");
        w.string(&r.name);
        w.key("sb_bytes");
        w.uint(r.sb_bytes as u64);
        w.key("x86_bytes");
        w.uint(r.x86_bytes as u64);
        w.key("sb_ms");
        w.float(r.sb_ms);
        w.key("x86_ms");
        w.float(r.x86_ms);
        w.key("sb_mib_per_s");
        w.float(r.sb_mib_s());
        w.key("x86_mib_per_s");
        w.float(r.x86_mib_s());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Every row must clear the absolute throughput floor; the baseline is
/// only consulted for a friendly delta printout, never to fail the run.
fn check(rows: &[Row], baseline_path: &str) -> bool {
    let mut ok = true;
    for r in rows {
        for (which, mib_s) in [("sb", r.sb_mib_s()), ("x86", r.x86_mib_s())] {
            if mib_s < MIN_MIB_PER_S {
                eprintln!(
                    "REGRESSION: {which} lift on {} fell to {mib_s:.2} MiB/s \
                     (floor {MIN_MIB_PER_S} MiB/s)",
                    r.name
                );
                ok = false;
            }
        }
    }
    if let Ok(text) = std::fs::read_to_string(baseline_path) {
        if let Ok(doc) = parse(&text) {
            let base: f64 = doc
                .get("programs")
                .and_then(JsonValue::as_array)
                .map(|ps| {
                    ps.iter()
                        .filter_map(|p| p.get("x86_mib_per_s").and_then(JsonValue::as_f64))
                        .sum::<f64>()
                        / ps.len().max(1) as f64
                })
                .unwrap_or(f64::NAN);
            let fresh = rows.iter().map(Row::x86_mib_s).sum::<f64>() / rows.len().max(1) as f64;
            println!("x86 lift throughput: {fresh:.1} MiB/s fresh vs {base:.1} MiB/s baseline");
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut baseline: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = it.next().expect("--out requires a directory").clone(),
            "--check" => baseline = Some(it.next().expect("--check requires a path").clone()),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let rows: Vec<Row> = corpus()
        .iter()
        .map(|(name, module)| measure(name, module))
        .collect();

    match baseline {
        None => {
            let path = format!("{out_dir}/BENCH_frontend.json");
            std::fs::write(&path, render(&rows)).expect("write BENCH_frontend.json");
            println!("wrote {path}");
        }
        Some(base) => {
            if !check(&rows, &base) {
                std::process::exit(1);
            }
            println!("frontend bench check passed (parity held, throughput above floor)");
        }
    }
}
