//! A minimal stand-in for the `criterion` API surface the benches use
//! (the build environment cannot fetch crates). Same shape — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! — with adaptive iteration counts and median-of-batches reporting.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per measured benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Batches the measurement is split into (median is reported).
const BATCHES: usize = 5;

/// Bench registry/driver, compatible with `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group; member benches print as `group/member`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A bench group, compatible with `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one member benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one member benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

/// A bench label, compatible with `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Labels a bench by its parameter value.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Per-bench measurement state, compatible with `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median ns/iter, filled by [`Bencher::iter`].
    median_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `f`: warm-up, pick an iteration count aiming at
    /// [`TARGET`], then report the median over [`BATCHES`] batches.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up + calibration.
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        while start.elapsed() < TARGET / 10 || calibration_iters < 3 {
            black_box(f());
            calibration_iters += 1;
            if calibration_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / calibration_iters as f64;
        let per_batch = ((TARGET.as_secs_f64() / BATCHES as f64) / per_iter.max(1e-9)) as u64;
        let per_batch = per_batch.clamp(1, 10_000_000);
        let mut samples: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..per_batch {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / per_batch as f64
            })
            .collect();
        self.median_ns = median(&mut samples);
        self.iters = per_batch * BATCHES as u64;
    }

    fn report(&self, name: &str) {
        println!(
            "bench {name:<40} {}  ({} iters)",
            fmt_ns(self.median_ns),
            self.iters
        );
    }

    /// Median nanoseconds per iteration of the last [`Bencher::iter`].
    pub fn median_ns(&self) -> f64 {
        self.median_ns
    }
}

/// Median of a sample set (sorts in place). The one shared copy used by
/// [`Bencher::iter`] and the standalone bench binaries.
pub fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>9.3} s/iter ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>9.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>9.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>9.1} ns/iter")
    }
}

/// Runs a closure once and returns its median ns/iter — the standalone
/// form of [`Bencher::iter`] for custom bench mains.
pub fn time<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut b = Bencher::default();
    b.iter(&mut f);
    b.median_ns
}

/// Declares a bench entry point, compatible with `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $bench(&mut c); )+
            let _ = &mut c;
        }
    };
}

/// Declares the bench `main`, compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
