//! Shared helpers for the Manta benchmark harness.

pub mod harness;
pub mod host;
