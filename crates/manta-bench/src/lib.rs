//! Shared helpers for the Manta benchmark harness.
