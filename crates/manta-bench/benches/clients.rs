//! Criterion benches for the §5 clients: indirect-call resolution, DDG
//! pruning and source-sink bug detection (typed vs untyped).

use manta::{Manta, MantaConfig, TypeQuery};
use manta_analysis::ModuleAnalysis;
use manta_bench::harness::Criterion;
use manta_bench::{criterion_group, criterion_main};
use manta_clients::{
    ddg_prune, detect_bugs, indirect_call_sites, resolve_targets_manta, BugKind, CheckerConfig,
};
use manta_workloads::{generate_firmware, generator, FirmwareSpec, PhenomenonMix};

fn bench_icall(c: &mut Criterion) {
    let g = generator::generate(&generator::GenSpec {
        name: "bench".into(),
        functions: 60,
        mix: PhenomenonMix::balanced(),
        seed: 3,
    });
    let analysis = ModuleAnalysis::build(g.module);
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    let sites = indirect_call_sites(&analysis);
    c.bench_function("icall_resolution", |b| {
        b.iter(|| {
            sites
                .iter()
                .map(|s| resolve_targets_manta(&analysis, &inference, s).len())
                .sum::<usize>()
        })
    });
    c.bench_function("ddg_pruning", |b| {
        b.iter(|| ddg_prune::pruned_ddg(&analysis, &inference).1)
    });
}

fn bench_detection(c: &mut Criterion) {
    let g = generate_firmware(&FirmwareSpec {
        name: "benchfw".into(),
        real_bugs_per_class: 3,
        decoys_per_class: 3,
        noise_functions: 40,
        seed: 9,
    });
    let analysis = ModuleAnalysis::build(g.module);
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    c.bench_function("detect_bugs_typed", |b| {
        b.iter(|| {
            detect_bugs(
                &analysis,
                Some(&inference as &dyn TypeQuery),
                &BugKind::ALL,
                CheckerConfig::default(),
            )
        })
    });
    c.bench_function("detect_bugs_notype", |b| {
        b.iter(|| detect_bugs(&analysis, None, &BugKind::ALL, CheckerConfig::default()))
    });
}

criterion_group!(benches, bench_icall, bench_detection);
criterion_main!(benches);
