//! Criterion benches for the analysis substrates: preprocessing,
//! points-to solving, DDG construction and the lifter.

use manta_analysis::{preprocess, CallGraph, Ddg, PointsTo, PreprocessConfig};
use manta_bench::harness::Criterion;
use manta_bench::{criterion_group, criterion_main};
use manta_workloads::{generator, PhenomenonMix};

fn module() -> manta_ir::Module {
    generator::generate(&generator::GenSpec {
        name: "bench".into(),
        functions: 60,
        mix: PhenomenonMix::balanced(),
        seed: 7,
    })
    .module
}

fn bench_substrates(c: &mut Criterion) {
    let m = module();
    c.bench_function("preprocess_unroll", |b| {
        b.iter(|| preprocess(m.clone(), PreprocessConfig::default()))
    });
    let pre = preprocess(m, PreprocessConfig::default());
    let cg = CallGraph::build(&pre);
    c.bench_function("pointsto_solve", |b| b.iter(|| PointsTo::solve(&pre, &cg)));
    let pts = PointsTo::solve(&pre, &cg);
    c.bench_function("ddg_build", |b| b.iter(|| Ddg::build(&pre, &pts)));
}

fn bench_lifter(c: &mut Criterion) {
    let asm = r#"
module bench
extern malloc, 1, ret
func work(2) -> ret {
    salloc r7, 32
    movi r3, 0
head:
    cmp.ge r4, r3, r2
    brz r4, body
    jmp done
body:
    st.w64 [r7+8], r3
    ld.w64 r5, [r7+8]
    add r3, r3, r5
    jmp head
done:
    mov r1, r3
    ecall malloc, 1
    ret
}
"#;
    let image = manta_isa::assemble(asm).expect("valid bench program");
    let bytes = manta_isa::encode(&image);
    c.bench_function("sbf_decode_and_lift", |b| {
        b.iter(|| {
            let img = manta_isa::decode(&bytes).expect("decodes");
            manta_isa::lift::lift(&img).expect("lifts")
        })
    });
}

criterion_group!(benches, bench_substrates, bench_lifter);
criterion_main!(benches);
