//! Overhead of the resilience layer on the unconstrained pipeline.
//!
//! Two views, printed side by side:
//!
//! * **measured** — wall time of generate → build → infer through the
//!   plain entry points vs the budgeted/resilient ones with an unlimited
//!   budget;
//! * **estimated unlimited overhead** — the fuel units one run would
//!   charge (an upper bound on the budget-check call sites hit), times
//!   the measured cost of a single unlimited-budget `tick`, plus the
//!   per-stage costs (one disarmed fault point and one `isolate`
//!   boundary each). This isolates the fast-path branches from
//!   run-to-run pipeline noise.
//!
//! The estimated overhead must stay under 2% of the pipeline.

use manta::{Engine, Manta, MantaConfig};
use manta_analysis::ModuleAnalysis;
use manta_bench::harness;
use manta_resilience::Budget;
use manta_workloads::{generator, PhenomenonMix};

/// Stage boundaries crossed by one run: four substrate stages, the
/// reveal collection, the base tier and two refinement tiers.
const STAGES: f64 = 8.0;

fn pipeline_plain(spec: &generator::GenSpec) -> usize {
    let g = generator::generate(spec);
    let analysis = ModuleAnalysis::build(g.module);
    let result = Manta::new(MantaConfig::full()).infer(&analysis);
    result.final_counts().total()
}

fn pipeline_resilient(spec: &generator::GenSpec, budget: &Budget) -> usize {
    let g = generator::generate(spec);
    let engine = Engine::new(MantaConfig::full());
    let analysis = engine
        .build_substrate(g.module, budget)
        .expect("unlimited budget never trips");
    let result = engine
        .analyze_with_budget(&analysis, budget)
        .expect("non-strict analyze cannot fail");
    assert!(!result.is_degraded(), "unlimited budget never degrades");
    result.final_counts().total()
}

fn main() {
    let spec = generator::GenSpec {
        name: "resilience-bench".into(),
        functions: 40,
        mix: PhenomenonMix::balanced(),
        seed: 7,
    };
    manta_telemetry::set_enabled(false);

    let plain_ns = harness::time(|| pipeline_plain(&spec));
    let resilient_ns = harness::time(|| pipeline_resilient(&spec, &Budget::unlimited()));
    let meas_pct = 100.0 * (resilient_ns - plain_ns) / plain_ns;

    // One metered run: the fuel spent bounds the number of budget-check
    // call sites hit (bulk `consume(n)` charges count as n sites, which
    // only makes the estimate more conservative).
    let start_fuel = u64::MAX / 2;
    let meter = Budget::with_fuel(start_fuel);
    pipeline_resilient(&spec, &meter);
    let fuel_spent = start_fuel - meter.fuel_left();

    // Micro-cost of each fast-path primitive, net of the loop itself.
    let baseline_ns = harness::time(|| std::hint::black_box(1u64));
    let unlimited = Budget::unlimited();
    let tick_ns = (harness::time(|| unlimited.tick().is_ok()) - baseline_ns).max(0.0);
    let fault_ns = (harness::time(|| {
        manta_resilience::fault_point("bench.resilience.probe");
    }) - baseline_ns)
        .max(0.0);
    let isolate_ns =
        (harness::time(|| manta_resilience::isolate("bench.resilience.probe", || 1u64).is_ok())
            - baseline_ns)
            .max(0.0);

    let est_overhead_ns = fuel_spent as f64 * tick_ns + STAGES * (fault_ns + isolate_ns);
    let est_pct = 100.0 * est_overhead_ns / plain_ns;

    println!(
        "bench resilience/pipeline-plain            {:>12.3} ms",
        plain_ns / 1e6
    );
    println!(
        "bench resilience/pipeline-unlimited        {:>12.3} ms",
        resilient_ns / 1e6
    );
    println!("bench resilience/measured-delta            {meas_pct:>11.2} %");
    println!("bench resilience/unlimited-tick            {tick_ns:>12.3} ns");
    println!("bench resilience/disarmed-fault-point      {fault_ns:>12.3} ns");
    println!("bench resilience/isolate-boundary          {isolate_ns:>12.3} ns");
    println!("bench resilience/fuel-units                {fuel_spent:>12}");
    println!("bench resilience/est-unlimited-overhead    {est_pct:>11.3} %");
    assert!(
        est_pct < 2.0,
        "unlimited-budget checks must cost <2% of the pipeline, estimated {est_pct:.3}%"
    );
    println!("resilience overhead OK (<2% unconstrained)");
}
