//! Ablation benches for the design choices DESIGN.md calls out:
//! refinement order, loop-unroll factor, context-stack depth, and strong
//! updates on/off.

use manta::{Manta, MantaConfig, Sensitivity};
use manta_analysis::{ModuleAnalysis, PreprocessConfig};
use manta_bench::harness::{BenchmarkId, Criterion};
use manta_bench::{criterion_group, criterion_main};
use manta_workloads::{generator, PhenomenonMix};

fn module() -> manta_ir::Module {
    generator::generate(&generator::GenSpec {
        name: "abl".into(),
        functions: 40,
        mix: PhenomenonMix::balanced(),
        seed: 5,
    })
    .module
}

fn bench_unroll_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_unroll_factor");
    for k in [1usize, 2, 3] {
        let analysis = ModuleAnalysis::build_with(module(), PreprocessConfig { unroll_factor: k });
        group.bench_with_input(BenchmarkId::from_parameter(k), &analysis, |b, a| {
            b.iter(|| Manta::new(MantaConfig::full()).infer(a))
        });
    }
    group.finish();
}

fn bench_ctx_depth(c: &mut Criterion) {
    let analysis = ModuleAnalysis::build(module());
    let mut group = c.benchmark_group("ablation_ctx_depth");
    for depth in [2usize, 8, 32] {
        let config = MantaConfig {
            max_ctx_depth: depth,
            ..MantaConfig::full()
        };
        group.bench_with_input(BenchmarkId::from_parameter(depth), &config, |b, cfg| {
            b.iter(|| Manta::new(*cfg).infer(&analysis))
        });
    }
    group.finish();
}

fn bench_strong_updates(c: &mut Criterion) {
    let analysis = ModuleAnalysis::build(module());
    let mut group = c.benchmark_group("ablation_strong_updates");
    for strong in [true, false] {
        let config = MantaConfig {
            strong_updates: strong,
            ..MantaConfig::with_sensitivity(Sensitivity::FiFs)
        };
        group.bench_with_input(BenchmarkId::from_parameter(strong), &config, |b, cfg| {
            b.iter(|| Manta::new(*cfg).infer(&analysis))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_unroll_factor,
    bench_ctx_depth,
    bench_strong_updates
);
criterion_main!(benches);
