//! Criterion benches for the hybrid-sensitive inference itself: per-stage
//! cost and scaling over program size (the performance side of Figure 10).

use manta::{Manta, MantaConfig, Sensitivity};
use manta_analysis::ModuleAnalysis;
use manta_bench::harness::{BenchmarkId, Criterion};
use manta_bench::{criterion_group, criterion_main};
use manta_workloads::{generator, PhenomenonMix};

fn module_of(functions: usize) -> ModuleAnalysis {
    let g = generator::generate(&generator::GenSpec {
        name: format!("bench{functions}"),
        functions,
        mix: PhenomenonMix::balanced(),
        seed: 42,
    });
    ModuleAnalysis::build(g.module)
}

fn bench_stages(c: &mut Criterion) {
    let analysis = module_of(40);
    let mut group = c.benchmark_group("inference_stages");
    for s in Sensitivity::ALL {
        group.bench_function(s.label(), |b| {
            b.iter(|| Manta::new(MantaConfig::with_sensitivity(s)).infer(&analysis))
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaling");
    for functions in [10usize, 40, 160] {
        let analysis = module_of(functions);
        group.bench_with_input(BenchmarkId::from_parameter(functions), &analysis, |b, a| {
            b.iter(|| Manta::new(MantaConfig::full()).infer(a))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stages, bench_scaling);
criterion_main!(benches);
