//! Overhead of the telemetry layer on the mid-size pipeline.
//!
//! Two views, printed side by side:
//!
//! * **measured** — wall time of generate → build → infer with collection
//!   disabled vs enabled;
//! * **estimated disabled overhead** — the number of instrumentation call
//!   sites hit during one run, times the measured cost of a single
//!   disabled-path call. This is the honest "NullSink" figure: it isolates
//!   the early-return branch from run-to-run pipeline noise.
//!
//! The estimated disabled overhead must stay under 2% of the pipeline.

use manta::{Manta, MantaConfig};
use manta_analysis::ModuleAnalysis;
use manta_bench::harness;
use manta_telemetry::{Counter, SpanReport};
use manta_workloads::{generator, PhenomenonMix};

fn pipeline(spec: &generator::GenSpec) -> usize {
    let g = generator::generate(spec);
    let analysis = ModuleAnalysis::build(g.module);
    let result = Manta::new(MantaConfig::full()).infer(&analysis);
    result.final_counts().total()
}

fn span_hits(spans: &[SpanReport]) -> u64 {
    spans.iter().map(|s| s.count + span_hits(&s.children)).sum()
}

fn main() {
    let spec = generator::GenSpec {
        name: "telemetry-bench".into(),
        functions: 40,
        mix: PhenomenonMix::balanced(),
        seed: 7,
    };

    manta_telemetry::set_enabled(false);
    let disabled_ns = harness::time(|| pipeline(&spec));

    manta_telemetry::set_enabled(true);
    manta_telemetry::reset();
    let enabled_ns = harness::time(|| pipeline(&spec));

    // One clean run to count how often each kind of instrumentation site
    // fires; each firing is one early-return branch when collection is off.
    // Summing counter *values* overcounts sites that add a large delta in
    // one call (e.g. `ddg.edges`), which only makes the estimate more
    // conservative.
    manta_telemetry::reset();
    pipeline(&spec);
    let report = manta_telemetry::report();
    let span_count = span_hits(&report.spans);
    let counter_count: u64 = report.counters.values().sum();

    // Micro-cost of one disabled-path call of each kind, net of the
    // measurement loop itself.
    manta_telemetry::set_enabled(false);
    static PROBE: Counter = Counter::new("bench.telemetry.probe");
    let baseline_ns = harness::time(|| std::hint::black_box(1u64));
    let counter_ns = (harness::time(|| PROBE.add(1)) - baseline_ns).max(0.0);
    let span_ns = (harness::time(|| {
        manta_telemetry::span!("bench-probe");
    }) - baseline_ns)
        .max(0.0);

    let est_overhead_ns = span_count as f64 * span_ns + counter_count as f64 * counter_ns;
    let est_pct = 100.0 * est_overhead_ns / disabled_ns;
    let meas_pct = 100.0 * (enabled_ns - disabled_ns) / disabled_ns;

    println!(
        "bench telemetry/pipeline-disabled          {:>12.3} ms",
        disabled_ns / 1e6
    );
    println!(
        "bench telemetry/pipeline-enabled           {:>12.3} ms",
        enabled_ns / 1e6
    );
    println!("bench telemetry/enabled-delta              {meas_pct:>11.2} %");
    println!("bench telemetry/disabled-span              {span_ns:>12.3} ns");
    println!("bench telemetry/disabled-counter           {counter_ns:>12.3} ns");
    println!("bench telemetry/span-hits                  {span_count:>12}");
    println!("bench telemetry/counter-hits               {counter_count:>12}");
    println!("bench telemetry/est-disabled-overhead      {est_pct:>11.3} %");
    assert!(
        est_pct < 2.0,
        "disabled telemetry must cost <2% of the pipeline, estimated {est_pct:.3}%"
    );
    println!("telemetry overhead OK (<2% disabled)");

    // Provenance-off leg. The hybrid solver consults the process-global
    // provenance switch once per solve (then branches on a resident
    // `Option` per inserted pair), so the off-path cost is the switch
    // probe itself; the same estimate discipline as above bounds it.
    // The on/off wall delta is printed for information only — recording
    // derivations is allowed to cost, the off path is not.
    manta_telemetry::set_provenance_enabled(false);
    let prov_off_ns = harness::time(|| pipeline(&spec));
    manta_telemetry::set_provenance_enabled(true);
    let prov_on_ns = harness::time(|| pipeline(&spec));
    manta_telemetry::set_provenance_enabled(false);
    let prov_check_ns =
        (harness::time(|| std::hint::black_box(manta_telemetry::provenance_enabled()))
            - baseline_ns)
            .max(0.0);
    let prov_meas_pct = 100.0 * (prov_on_ns - prov_off_ns) / prov_off_ns;
    let prov_est_pct = 100.0 * prov_check_ns / prov_off_ns;
    println!(
        "bench telemetry/provenance-off             {:>12.3} ms",
        prov_off_ns / 1e6
    );
    println!(
        "bench telemetry/provenance-on              {:>12.3} ms",
        prov_on_ns / 1e6
    );
    println!("bench telemetry/provenance-on-delta        {prov_meas_pct:>11.2} %");
    println!("bench telemetry/provenance-check           {prov_check_ns:>12.3} ns");
    println!("bench telemetry/est-provenance-off-ovh     {prov_est_pct:>11.3} %");
    assert!(
        prov_est_pct < 2.0,
        "provenance-off must cost <2% of the pipeline, estimated {prov_est_pct:.3}%"
    );
    println!("provenance overhead OK (<2% disabled)");
}
