//! The five example bug checkers of §5.3: Null Pointer Dereference (NPD),
//! Return Stack Address (RSA), Use After Free (UAF), OS Command Injection
//! (CMI) and Buffer Overflow (BOF).
//!
//! Each checker is a source/sink specification over the DDG; detection is
//! the [`crate::slicing`] traversal. When an inference result is supplied,
//! the detection is *type-assisted*: the DDG is pruned per Table 2 first,
//! and slices are guarded so a value that is precisely numeric cannot
//! continue a pointer/string flow — the Manta mode. Passing `None` is the
//! Manta-NoType ablation.

use std::collections::{HashMap, HashSet};

use manta::{FirstLayer, TypeQuery};
use manta_analysis::{Ddg, ModuleAnalysis, NodeId, VarRef};
use manta_ir::cfg::Cfg;
use manta_ir::{
    Callee, ConstKind, ExternEffect, FuncId, InstId, InstKind, Terminator, ValueKind, Width,
};

use crate::ddg_prune;
use crate::slicing::{Slicer, SlicerConfig};

/// The vulnerability classes the example checkers cover.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BugKind {
    /// Null pointer dereference.
    Npd,
    /// Returning the address of a stack slot.
    Rsa,
    /// Use after free.
    Uaf,
    /// OS command injection (taint reaches `system`).
    Cmi,
    /// Buffer overflow (taint reaches an unbounded `strcpy`).
    Bof,
}

impl BugKind {
    /// All checkers, in the paper's order.
    pub const ALL: [BugKind; 5] = [
        BugKind::Npd,
        BugKind::Rsa,
        BugKind::Uaf,
        BugKind::Cmi,
        BugKind::Bof,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            BugKind::Npd => "NPD",
            BugKind::Rsa => "RSA",
            BugKind::Uaf => "UAF",
            BugKind::Cmi => "CMI",
            BugKind::Bof => "BOF",
        }
    }
}

/// One reported bug.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BugReport {
    /// The vulnerability class.
    pub kind: BugKind,
    /// Function containing the sink.
    pub func: FuncId,
    /// Slice source node.
    pub source: NodeId,
    /// Slice sink node.
    pub sink: NodeId,
    /// The sink instruction.
    pub sink_site: InstId,
}

/// Detection configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckerConfig {
    /// Slicer limits.
    pub slicer: SlicerConfig,
}

/// Runs the requested checkers. `inference = Some(..)` is type-assisted
/// Manta; `None` is the Manta-NoType ablation. Returns the reports plus the
/// number of slicer node visits (the work metric).
pub fn detect_bugs(
    analysis: &ModuleAnalysis,
    inference: Option<&dyn TypeQuery>,
    kinds: &[BugKind],
    config: CheckerConfig,
) -> (Vec<BugReport>, usize) {
    manta_telemetry::span!("checkers");
    // Type-assisted mode prunes the DDG first (§5.2).
    let owned_pruned: Option<Ddg> = inference.map(|inf| {
        manta_telemetry::span!("ddg_prune");
        let (pruned, stats) = ddg_prune::pruned_ddg(analysis, inf);
        manta_telemetry::counter("checker.ddg_edges_pruned", stats.removed as u64);
        pruned
    });
    let ddg: &Ddg = owned_pruned.as_ref().unwrap_or(&analysis.ddg);

    let mut reports = Vec::new();
    let mut visits = 0usize;
    let mut raised = 0u64;
    let mut pruned_alarms = 0u64;
    for &kind in kinds {
        match kind {
            BugKind::Uaf => {
                let uaf = detect_uaf(analysis, inference);
                raised += uaf.len() as u64;
                reports.extend(uaf);
            }
            _ => {
                let (srcs, sinks) = spec(analysis, ddg, kind);
                let sink_nodes: HashSet<NodeId> = sinks.keys().copied().collect();
                let mut slicer = Slicer::new(ddg, config.slicer);
                let guard = |n: NodeId| match inference {
                    None => true,
                    Some(inf) => flow_guard(inf, ddg, n, kind),
                };
                let pairs = slicer.slice(&srcs, &sink_nodes, guard);
                visits += slicer.visits;
                raised += pairs.len() as u64;
                for p in pairs {
                    let (site, func) = sinks[&p.sink];
                    if kind == BugKind::Rsa && ddg.var(p.source).func != func {
                        // A stack address returned by a *different* frame
                        // than the one that owns it is legal (caller-owned
                        // buffer).
                        pruned_alarms += 1;
                        continue;
                    }
                    if let Some(inf) = inference {
                        if !sink_guard(inf, ddg, p.sink, site, kind) {
                            pruned_alarms += 1;
                            continue;
                        }
                    }
                    reports.push(BugReport {
                        kind,
                        func,
                        source: p.source,
                        sink: p.sink,
                        sink_site: site,
                    });
                }
            }
        }
    }
    reports.sort_by_key(|r| (r.kind, r.func, r.sink_site, r.source));
    reports.dedup();
    manta_telemetry::counter("checker.alarms_raised", raised);
    manta_telemetry::counter("checker.alarms_pruned", pruned_alarms);
    manta_telemetry::counter("checker.slicer_visits", visits as u64);
    (reports, visits)
}

/// Per-node guard: a value that the inference resolves to a numeric type
/// cannot transport a pointer (NPD/RSA) or an attacker-controlled string
/// (CMI/BOF).
fn flow_guard(inference: &dyn TypeQuery, ddg: &Ddg, n: NodeId, kind: BugKind) -> bool {
    let v = ddg.var(n);
    let numeric = matches!(
        inference.precise_of(v).map(|t| FirstLayer::of(&t)),
        Some(FirstLayer::Int(_) | FirstLayer::Float | FirstLayer::Double | FirstLayer::Num(_))
    );
    match kind {
        BugKind::Npd | BugKind::Rsa | BugKind::Cmi | BugKind::Bof => !numeric,
        BugKind::Uaf => true,
    }
}

/// Sink-side guard: e.g. the value reaching `system` must still be
/// pointer-compatible.
fn sink_guard(
    inference: &dyn TypeQuery,
    ddg: &Ddg,
    sink: NodeId,
    site: InstId,
    kind: BugKind,
) -> bool {
    match kind {
        BugKind::Cmi | BugKind::Bof | BugKind::Npd => {
            let v = ddg.var(sink);
            match inference.precise_at(v, site) {
                Some(t) => !t.is_numeric(),
                None => true,
            }
        }
        _ => true,
    }
}

type SinkMap = HashMap<NodeId, (InstId, FuncId)>;

/// Builds the source list and sink map for one bug kind.
fn spec(analysis: &ModuleAnalysis, ddg: &Ddg, kind: BugKind) -> (Vec<NodeId>, SinkMap) {
    let module = analysis.module();
    let mut sources = Vec::new();
    let mut sinks: SinkMap = HashMap::new();
    for func in module.functions() {
        let fid = func.id();
        match kind {
            BugKind::Npd => {
                // Sources: null/zero 64-bit constants that flow somewhere.
                for (v, data) in func.values() {
                    let is_nullish = matches!(data.kind, ValueKind::Const(ConstKind::Null))
                        || (matches!(data.kind, ValueKind::Const(ConstKind::Int(0)))
                            && data.width == Width::W64);
                    if is_nullish {
                        let n = ddg.node(VarRef::new(fid, v));
                        if ddg.children(n).iter().any(|(_, k)| k.is_value_flow()) {
                            sources.push(n);
                        }
                    }
                }
                // Sinks: dereferenced addresses.
                for inst in func.insts() {
                    let addr = match &inst.kind {
                        InstKind::Load { addr, .. } => Some(*addr),
                        InstKind::Store { addr, .. } => Some(*addr),
                        _ => None,
                    };
                    if let Some(a) = addr {
                        sinks.insert(ddg.node(VarRef::new(fid, a)), (inst.id, fid));
                    }
                }
            }
            BugKind::Rsa => {
                for inst in func.insts() {
                    if let InstKind::Alloca { dst, .. } = inst.kind {
                        sources.push(ddg.node(VarRef::new(fid, dst)));
                    }
                }
                for b in func.blocks() {
                    if let Terminator::Ret(Some(v)) = b.term {
                        // Attribute the sink to the last instruction of the
                        // returning block (or the first of the function).
                        let site = b
                            .insts
                            .last()
                            .copied()
                            .unwrap_or_else(|| InstId::from_index(0));
                        sinks.insert(ddg.node(VarRef::new(fid, v)), (site, fid));
                    }
                }
            }
            BugKind::Cmi | BugKind::Bof => {
                for inst in func.insts() {
                    if let InstKind::Call {
                        dst,
                        callee: Callee::Extern(e),
                        args,
                    } = &inst.kind
                    {
                        match module.extern_decl(*e).effect {
                            ExternEffect::TaintSource => {
                                if let Some(d) = dst {
                                    sources.push(ddg.node(VarRef::new(fid, *d)));
                                }
                            }
                            ExternEffect::CommandSink if kind == BugKind::Cmi => {
                                if let Some(&a0) = args.first() {
                                    sinks.insert(ddg.node(VarRef::new(fid, a0)), (inst.id, fid));
                                }
                            }
                            ExternEffect::StrCopy if kind == BugKind::Bof => {
                                if let Some(&src_arg) = args.get(1) {
                                    sinks.insert(
                                        ddg.node(VarRef::new(fid, src_arg)),
                                        (inst.id, fid),
                                    );
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            BugKind::Uaf => unreachable!("UAF uses its own detector"),
        }
    }
    (sources, sinks)
}

/// UAF is detected directly on points-to + CFG order: a `free(p)` followed
/// (in control flow) by a dereference whose address may alias `p`.
fn detect_uaf(analysis: &ModuleAnalysis, _inference: Option<&dyn TypeQuery>) -> Vec<BugReport> {
    let module = analysis.module();
    let pts = &analysis.pointsto;
    let ddg = &analysis.ddg;
    let mut reports = Vec::new();
    for func in module.functions() {
        let fid = func.id();
        let cfg = Cfg::new(func);
        // free sites in this function.
        let frees: Vec<(InstId, manta_ir::ValueId)> = func
            .insts()
            .filter_map(|inst| match &inst.kind {
                InstKind::Call {
                    callee: Callee::Extern(e),
                    args,
                    ..
                } if module.extern_decl(*e).effect == ExternEffect::FreeHeap => {
                    args.first().map(|&p| (inst.id, p))
                }
                _ => None,
            })
            .collect();
        if frees.is_empty() {
            continue;
        }
        // Dereference sites.
        let derefs: Vec<(InstId, manta_ir::ValueId)> = func
            .insts()
            .filter_map(|inst| match &inst.kind {
                InstKind::Load { addr, .. } => Some((inst.id, *addr)),
                InstKind::Store { addr, .. } => Some((inst.id, *addr)),
                _ => None,
            })
            .collect();
        for (free_site, p) in frees {
            let free_block = func.inst(free_site).block;
            for &(deref_site, a) in &derefs {
                if !pts.may_alias(VarRef::new(fid, p), VarRef::new(fid, a)) {
                    continue;
                }
                let deref_block = func.inst(deref_site).block;
                let after = if free_block == deref_block {
                    // Same block: instruction order decides.
                    let b = func.block(free_block);
                    let fi = b.insts.iter().position(|&i| i == free_site);
                    let di = b.insts.iter().position(|&i| i == deref_site);
                    matches!((fi, di), (Some(f), Some(d)) if d > f)
                } else {
                    block_reaches(&cfg, free_block, deref_block)
                };
                if after {
                    reports.push(BugReport {
                        kind: BugKind::Uaf,
                        func: fid,
                        source: ddg.node(VarRef::new(fid, p)),
                        sink: ddg.node(VarRef::new(fid, a)),
                        sink_site: deref_site,
                    });
                }
            }
        }
    }
    reports
}

fn block_reaches(cfg: &Cfg, from: manta_ir::BlockId, to: manta_ir::BlockId) -> bool {
    let mut seen = HashSet::new();
    let mut stack = vec![from];
    while let Some(b) = stack.pop() {
        if !seen.insert(b) {
            continue;
        }
        for &s in cfg.succs(b) {
            if s == to {
                return true;
            }
            stack.push(s);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta::{Manta, MantaConfig};
    use manta_ir::{BinOp, CmpPred, ModuleBuilder};

    fn run(m: manta_ir::Module, kinds: &[BugKind], typed: bool) -> Vec<BugReport> {
        let analysis = ModuleAnalysis::build(m);
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let inf: Option<&dyn TypeQuery> = if typed { Some(&inference) } else { None };
        detect_bugs(&analysis, inf, kinds, CheckerConfig::default()).0
    }

    #[test]
    fn npd_detects_null_flow_to_deref() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W1], Some(Width::W64));
        let c = fb.param(0);
        let null = fb.const_null();
        let slot = fb.alloca(8);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.store(slot, null);
        fb.br(j);
        fb.switch_to(e);
        let buf = fb.alloca(16);
        fb.store(slot, buf);
        fb.br(j);
        fb.switch_to(j);
        let p = fb.load(slot, Width::W64);
        let v = fb.load(p, Width::W64); // deref of possibly-null p
        fb.ret(Some(v));
        mb.finish_function(fb);
        let reports = run(mb.finish(), &[BugKind::Npd], true);
        assert!(
            reports.iter().any(|r| r.kind == BugKind::Npd),
            "true NPD must be reported: {reports:?}"
        );
    }

    #[test]
    fn npd_false_positive_pruned_by_types() {
        // Figure 4's shape: `pchr = s + offset` where offset is reachable
        // from constant 0 — without types the 0 "flows" into the deref.
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("parse", &[Width::W64, Width::W1], Some(Width::W64));
        let s = fb.param(0);
        let c = fb.param(1);
        let zero = fb.const_int(0, Width::W64);
        let off_slot = fb.alloca(8);
        fb.store(off_slot, zero);
        let t = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, j);
        fb.switch_to(t);
        let one = fb.const_int(1, Width::W64);
        let adj = fb.binop(BinOp::Mul, one, one, Width::W64); // numeric reveal
        fb.store(off_slot, adj);
        fb.br(j);
        fb.switch_to(j);
        let off = fb.load(off_slot, Width::W64);
        let two = fb.const_int(2, Width::W64);
        let off2 = fb.binop(BinOp::Mul, off, two, Width::W64); // off revealed numeric
        let pchr = fb.binop(BinOp::Add, s, off2, Width::W64);
        let v = fb.load(pchr, Width::W64);
        fb.ret(Some(v));
        mb.finish_function(fb);
        let m = mb.finish();

        let untyped = run(m.clone(), &[BugKind::Npd], false);
        assert!(
            untyped.iter().any(|r| r.kind == BugKind::Npd),
            "NoType mode reports the false NPD through the offset"
        );
        let typed = run(m, &[BugKind::Npd], true);
        assert!(
            typed.is_empty(),
            "Table 2 pruning removes offset→pchr, killing the FP: {typed:?}"
        );
    }

    #[test]
    fn rsa_detects_escaping_stack_address() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("bad", &[], Some(Width::W64));
        let slot = fb.alloca(32);
        let p = fb.copy(slot);
        fb.ret(Some(p));
        mb.finish_function(fb);
        let reports = run(mb.finish(), &[BugKind::Rsa], true);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::Rsa);
    }

    #[test]
    fn rsa_ignores_caller_owned_buffers() {
        // Returning a pointer the caller passed in is fine.
        let mut mb = ModuleBuilder::new("m");
        let (callee, mut cb) = mb.function("fill", &[Width::W64], Some(Width::W64));
        let buf = cb.param(0);
        cb.ret(Some(buf));
        mb.finish_function(cb);
        let (_, mut fb) = mb.function("caller", &[], Some(Width::W64));
        let local = fb.alloca(16);
        let r = fb.call(callee, &[local], Some(Width::W64)).unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);
        let reports = run(mb.finish(), &[BugKind::Rsa], true);
        // caller returns its own alloca — that *is* a bug; fill is clean.
        assert!(reports.iter().all(|r| { r.kind == BugKind::Rsa }));
        let analysis_names: Vec<_> = reports.iter().map(|r| r.func.index()).collect();
        assert!(!analysis_names.contains(&0), "fill must not be blamed");
    }

    #[test]
    fn uaf_requires_control_flow_order() {
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let free = mb.extern_fn("free", &[], None);
        let (_, mut fb) = mb.function("f", &[], Some(Width::W64));
        let k = fb.const_int(16, Width::W64);
        let p = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let before = fb.load(p, Width::W64); // use BEFORE free: fine
        fb.call_extern(free, &[p], None);
        let after = fb.load(p, Width::W64); // use AFTER free: UAF
        let s = fb.binop(BinOp::Add, before, after, Width::W64);
        fb.ret(Some(s));
        mb.finish_function(fb);
        let reports = run(mb.finish(), &[BugKind::Uaf], true);
        assert_eq!(reports.len(), 1, "{reports:?}");
    }

    #[test]
    fn cmi_taint_to_system_detected_and_atoi_pruned() {
        let mut mb = ModuleBuilder::new("m");
        let nvram = mb.extern_fn("nvram_get", &[], None);
        let system = mb.extern_fn("system", &[], None);
        let atoi = mb.extern_fn("atoi", &[], None);

        // Direct taint → system: true bug.
        let (_, mut fb) = mb.function("direct", &[], Some(Width::W32));
        let key = fb.alloca(8);
        let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
        let r = fb.call_extern(system, &[taint], Some(Width::W32)).unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);

        // taint → atoi → (int) → system-like use: infeasible command.
        let (_, mut gb) = mb.function("converted", &[], Some(Width::W32));
        let key = gb.alloca(8);
        let taint = gb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
        let n = gb.call_extern(atoi, &[taint], Some(Width::W32)).unwrap();
        let n64 = gb.copy(n);
        let widened = gb.binop(BinOp::Mul, n64, n64, Width::W32);
        let _cmp = gb.cmp(CmpPred::Gt, widened, n);
        let r = gb.call_extern(system, &[n64], Some(Width::W32)).unwrap();
        fb_unused(&mut gb);
        gb.ret(Some(r));
        mb.finish_function(gb);

        let m = mb.finish();
        let untyped = run(m.clone(), &[BugKind::Cmi], false);
        assert_eq!(untyped.len(), 2, "NoType reports both: {untyped:?}");
        let typed = run(m, &[BugKind::Cmi], true);
        assert_eq!(
            typed.len(),
            1,
            "types prune the int-typed command: {typed:?}"
        );
    }

    fn fb_unused(_: &mut manta_ir::FunctionBuilder) {}

    #[test]
    fn bof_taint_to_strcpy() {
        let mut mb = ModuleBuilder::new("m");
        let nvram = mb.extern_fn("nvram_get", &[], None);
        let strcpy = mb.extern_fn("strcpy", &[], None);
        let (_, mut fb) = mb.function("f", &[], None);
        let key = fb.alloca(8);
        let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
        let buf = fb.alloca(16);
        fb.call_extern(strcpy, &[buf, taint], Some(Width::W64));
        fb.ret(None);
        mb.finish_function(fb);
        let reports = run(mb.finish(), &[BugKind::Bof], true);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::Bof);
    }
}
