//! User-defined source–sink checkers (paper §5.3: "users of MANTA can
//! easily implement a new bug checker by specifying the sources and sinks
//! of the vulnerabilities to detect").
//!
//! A [`CustomChecker`] names a source specification and a sink
//! specification; detection is the same type-guarded CFL slicing the
//! built-in checkers use.

use std::collections::{HashMap, HashSet};

use manta::{FirstLayer, TypeQuery};
use manta_analysis::{ModuleAnalysis, NodeId, VarRef};
use manta_ir::{
    Callee, ConstKind, ExternEffect, FuncId, InstId, InstKind, Terminator, ValueKind, Width,
};

use crate::slicing::{Slicer, SlicerConfig};

/// Where tainted / interesting values originate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SourceSpec {
    /// Return values of calls to the named external function.
    ExternReturn(String),
    /// Return values of every external with the given effect.
    Effect(ExternEffect),
    /// Null / zero 64-bit constants (the NPD source).
    NullConstants,
    /// Stack-slot addresses (`alloca` results).
    StackAddresses,
}

/// Which uses constitute a violation when reached.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SinkSpec {
    /// The `index`-th argument of calls to the named external function.
    ExternArg {
        /// External function name.
        name: String,
        /// Zero-based argument position.
        index: usize,
    },
    /// Addresses dereferenced by loads/stores.
    Dereferences,
    /// Values returned from functions.
    ReturnValues,
}

/// A user-defined checker: a name plus source and sink specifications.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CustomChecker {
    /// Display name of the vulnerability class.
    pub name: String,
    /// Source specification.
    pub sources: SourceSpec,
    /// Sink specification.
    pub sinks: SinkSpec,
    /// Whether a flow through a precisely-numeric value refutes the
    /// finding (true for pointer/string-carrying vulnerabilities).
    pub numeric_guard: bool,
}

/// A report from a custom checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CustomReport {
    /// The checker that fired.
    pub checker: String,
    /// Function containing the sink.
    pub func: FuncId,
    /// Slice source node.
    pub source: NodeId,
    /// Slice sink node.
    pub sink: NodeId,
    /// Sink instruction.
    pub sink_site: InstId,
}

impl CustomChecker {
    /// Runs the checker over an analyzed module. `inference = Some(..)`
    /// enables the type-assisted guards.
    pub fn detect(
        &self,
        analysis: &ModuleAnalysis,
        inference: Option<&dyn TypeQuery>,
        config: SlicerConfig,
    ) -> Vec<CustomReport> {
        let ddg = &analysis.ddg;
        let module = analysis.module();

        // Sources.
        let mut sources: Vec<NodeId> = Vec::new();
        for func in module.functions() {
            let fid = func.id();
            match &self.sources {
                SourceSpec::ExternReturn(_) | SourceSpec::Effect(_) => {
                    for inst in func.insts() {
                        if let InstKind::Call {
                            dst: Some(d),
                            callee: Callee::Extern(e),
                            ..
                        } = &inst.kind
                        {
                            let decl = module.extern_decl(*e);
                            let hit = match &self.sources {
                                SourceSpec::ExternReturn(n) => &decl.name == n,
                                SourceSpec::Effect(eff) => decl.effect == *eff,
                                _ => unreachable!(),
                            };
                            if hit {
                                sources.push(ddg.node(VarRef::new(fid, *d)));
                            }
                        }
                    }
                }
                SourceSpec::NullConstants => {
                    for (v, data) in func.values() {
                        let nullish = matches!(data.kind, ValueKind::Const(ConstKind::Null))
                            || (matches!(data.kind, ValueKind::Const(ConstKind::Int(0)))
                                && data.width == Width::W64);
                        if nullish {
                            sources.push(ddg.node(VarRef::new(fid, v)));
                        }
                    }
                }
                SourceSpec::StackAddresses => {
                    for inst in func.insts() {
                        if let InstKind::Alloca { dst, .. } = inst.kind {
                            sources.push(ddg.node(VarRef::new(fid, dst)));
                        }
                    }
                }
            }
        }

        // Sinks.
        let mut sinks: HashMap<NodeId, (InstId, FuncId)> = HashMap::new();
        for func in module.functions() {
            let fid = func.id();
            match &self.sinks {
                SinkSpec::ExternArg { name, index } => {
                    for inst in func.insts() {
                        if let InstKind::Call {
                            callee: Callee::Extern(e),
                            args,
                            ..
                        } = &inst.kind
                        {
                            if &module.extern_decl(*e).name == name {
                                if let Some(&a) = args.get(*index) {
                                    sinks.insert(ddg.node(VarRef::new(fid, a)), (inst.id, fid));
                                }
                            }
                        }
                    }
                }
                SinkSpec::Dereferences => {
                    for inst in func.insts() {
                        let addr = match &inst.kind {
                            InstKind::Load { addr, .. } | InstKind::Store { addr, .. } => {
                                Some(*addr)
                            }
                            _ => None,
                        };
                        if let Some(a) = addr {
                            sinks.insert(ddg.node(VarRef::new(fid, a)), (inst.id, fid));
                        }
                    }
                }
                SinkSpec::ReturnValues => {
                    for b in func.blocks() {
                        if let Terminator::Ret(Some(v)) = b.term {
                            let site = b
                                .insts
                                .last()
                                .copied()
                                .unwrap_or_else(|| InstId::from_index(0));
                            sinks.insert(ddg.node(VarRef::new(fid, v)), (site, fid));
                        }
                    }
                }
            }
        }

        let sink_nodes: HashSet<NodeId> = sinks.keys().copied().collect();
        let mut slicer = Slicer::new(ddg, config);
        let guard = |n: NodeId| match inference {
            Some(inf) if self.numeric_guard => {
                let numeric = matches!(
                    inf.precise_of(ddg.var(n)).map(|t| FirstLayer::of(&t)),
                    Some(
                        FirstLayer::Int(_)
                            | FirstLayer::Float
                            | FirstLayer::Double
                            | FirstLayer::Num(_)
                    )
                );
                !numeric
            }
            _ => true,
        };
        slicer
            .slice(&sources, &sink_nodes, guard)
            .into_iter()
            .map(|p| {
                let (site, func) = sinks[&p.sink];
                CustomReport {
                    checker: self.name.clone(),
                    func,
                    source: p.source,
                    sink: p.sink,
                    sink_site: site,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta::{Manta, MantaConfig};
    use manta_ir::ModuleBuilder;

    /// A format-string-style checker: attacker-controlled data must not
    /// reach `printf_s`'s *format* argument (arg 0).
    fn fmt_checker() -> CustomChecker {
        CustomChecker {
            name: "FMT".into(),
            sources: SourceSpec::Effect(ExternEffect::TaintSource),
            sinks: SinkSpec::ExternArg {
                name: "printf_s".into(),
                index: 0,
            },
            numeric_guard: true,
        }
    }

    #[test]
    fn custom_checker_finds_taint_to_format_argument() {
        let mut mb = ModuleBuilder::new("m");
        let nvram = mb.extern_fn("nvram_get", &[], None);
        let printf_s = mb.extern_fn("printf_s", &[], None);
        let (_, mut fb) = mb.function("log_config", &[], Some(Width::W32));
        let key = fb.alloca(8);
        let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
        // BUG: the tainted string is used as the format itself.
        let r = fb
            .call_extern(printf_s, &[taint, taint], Some(Width::W32))
            .unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let reports = fmt_checker().detect(
            &analysis,
            Some(&inference as &dyn TypeQuery),
            SlicerConfig::default(),
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].checker, "FMT");
    }

    #[test]
    fn numeric_guard_prunes_sanitized_flow() {
        let mut mb = ModuleBuilder::new("m");
        let nvram = mb.extern_fn("nvram_get", &[], None);
        let atol = mb.extern_fn("atol", &[], None);
        let printf_s = mb.extern_fn("printf_s", &[], None);
        let printf_d = mb.extern_fn("printf_d", &[], None);
        let (_, mut fb) = mb.function("log_level", &[], Some(Width::W32));
        let key = fb.alloca(8);
        let taint = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
        let n = fb.call_extern(atol, &[taint], Some(Width::W64)).unwrap();
        let n2 = fb.copy(n);
        let fmt = fb.alloca(8);
        fb.call_extern(printf_d, &[fmt, n2], Some(Width::W32));
        // The "format" is an integer — type-infeasible.
        let r = fb
            .call_extern(printf_s, &[n2, n2], Some(Width::W32))
            .unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let typed = fmt_checker().detect(
            &analysis,
            Some(&inference as &dyn TypeQuery),
            SlicerConfig::default(),
        );
        assert!(typed.is_empty(), "type guard must prune: {typed:?}");
        let untyped = fmt_checker().detect(&analysis, None, SlicerConfig::default());
        assert!(!untyped.is_empty(), "without types the flow is reported");
    }

    #[test]
    fn stack_address_sources_and_return_sinks_mirror_rsa() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("bad", &[], Some(Width::W64));
        let slot = fb.alloca(16);
        let alias = fb.copy(slot);
        fb.ret(Some(alias));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let checker = CustomChecker {
            name: "ESCAPE".into(),
            sources: SourceSpec::StackAddresses,
            sinks: SinkSpec::ReturnValues,
            numeric_guard: false,
        };
        let reports = checker.detect(&analysis, None, SlicerConfig::default());
        assert_eq!(reports.len(), 1);
    }
}
