//! # manta-clients
//!
//! The type-assisted static-analysis clients of the paper's §5:
//!
//! * [`icall`] — type-based indirect-call analysis (§5.1): validates type
//!   compatibility between indirect-call arguments and address-taken
//!   function parameters, pruning infeasible targets. Includes the
//!   TypeArmor (argument count) and τ-CFI (argument width) baselines the
//!   paper compares against.
//! * [`ddg_prune`] — infeasible data-dependency pruning (§5.2, Table 2):
//!   removes `add`/`sub` operand edges that cannot be alias flows given the
//!   inferred types.
//! * [`slicing`] — source–sink DDG traversal (§5.3) with CFL-context
//!   validation and optional type guards.
//! * [`checkers`] — the five example bug checkers: NPD, RSA, UAF, CMI, BOF.
//! * [`custom`] — user-defined source/sink checkers (§5.3's extensibility
//!   claim), sharing the same slicing and type guards.

#![warn(missing_docs)]

pub mod checkers;
pub mod custom;
pub mod ddg_prune;
pub mod icall;
pub mod slicing;

pub use checkers::{detect_bugs, BugKind, BugReport, CheckerConfig};
pub use custom::{CustomChecker, CustomReport, SinkSpec, SourceSpec};
pub use ddg_prune::{prune_infeasible_deps, PruneStats};
pub use icall::{
    indirect_call_sites, resolve_targets_manta, resolve_targets_taucfi, resolve_targets_typearmor,
    IndirectCall,
};
pub use slicing::{Slicer, SlicerConfig, SourceSinkPair};
