//! Type-based indirect-call analysis (paper §5.1) plus the TypeArmor and
//! τ-CFI baselines.
//!
//! Candidate targets are the address-taken functions. A candidate `f` is
//! feasible at indirect call site `s` when:
//!
//! 1. the number of actual arguments at `s` is at least `f`'s parameter
//!    count;
//! 2. for each argument/parameter pair, `F↑(arg_i@s) >: F↓(par_i@entry_f)`;
//! 3. when the call expects a result, `F↑(ret_f@exit_f) >: F↓(ret@s)`.
//!
//! Pointer and memory types compare field-recursively — that is exactly
//! [`manta_ir::Type::is_subtype_of`].
//!
//! TypeArmor checks only rule 1 (argument counts); τ-CFI additionally
//! matches argument register widths.

use manta::TypeQuery;
use manta_analysis::{ModuleAnalysis, VarRef};
use manta_ir::{Callee, FuncId, Function, InstId, InstKind, Terminator, Type, ValueId};

/// An indirect call site.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndirectCall {
    /// Function containing the call.
    pub func: FuncId,
    /// The call instruction.
    pub site: InstId,
    /// The function-pointer operand.
    pub callee: ValueId,
    /// Actual arguments.
    pub args: Vec<ValueId>,
    /// Whether the call site consumes a return value.
    pub has_ret: bool,
}

/// Collects every indirect call site in the module.
pub fn indirect_call_sites(analysis: &ModuleAnalysis) -> Vec<IndirectCall> {
    manta_telemetry::span!("icall.sites");
    let mut out = Vec::new();
    for func in analysis.module().functions() {
        for inst in func.insts() {
            if let InstKind::Call {
                dst,
                callee: Callee::Indirect(fp),
                args,
            } = &inst.kind
            {
                out.push(IndirectCall {
                    func: func.id(),
                    site: inst.id,
                    callee: *fp,
                    args: args.clone(),
                    has_ret: dst.is_some(),
                });
            }
        }
    }
    manta_telemetry::counter("icall.sites", out.len() as u64);
    out
}

fn candidates(analysis: &ModuleAnalysis) -> Vec<FuncId> {
    analysis.module().address_taken_functions()
}

/// Rule 1: arity compatibility shared by every strategy.
fn arity_ok(site: &IndirectCall, target: &Function) -> bool {
    site.args.len() >= target.params().len()
}

/// Return-presence compatibility: a call that consumes a result cannot
/// target a void function.
fn ret_ok(site: &IndirectCall, target: &Function) -> bool {
    !site.has_ret || target.ret_width().is_some()
}

/// TypeArmor-style resolution: argument-count (and return-presence)
/// compatibility only.
pub fn resolve_targets_typearmor(analysis: &ModuleAnalysis, site: &IndirectCall) -> Vec<FuncId> {
    candidates(analysis)
        .into_iter()
        .filter(|&f| {
            let t = analysis.module().function(f);
            arity_ok(site, t) && ret_ok(site, t)
        })
        .collect()
}

/// τ-CFI-style resolution: TypeArmor plus argument register widths.
pub fn resolve_targets_taucfi(analysis: &ModuleAnalysis, site: &IndirectCall) -> Vec<FuncId> {
    let caller = analysis.module().function(site.func);
    candidates(analysis)
        .into_iter()
        .filter(|&f| {
            let t = analysis.module().function(f);
            if !arity_ok(site, t) || !ret_ok(site, t) {
                return false;
            }
            t.params()
                .iter()
                .zip(&site.args)
                .all(|(&p, &a)| t.value(p).width == caller.value(a).width)
        })
        .collect()
}

/// Manta's type-based resolution (§5.1) using an inference result. With
/// `Sensitivity::Fi`-only results this is the Manta-FI ablation column, etc.
pub fn resolve_targets_manta(
    analysis: &ModuleAnalysis,
    inference: &dyn TypeQuery,
    site: &IndirectCall,
) -> Vec<FuncId> {
    manta_telemetry::span!("icall.resolve");
    let all = candidates(analysis);
    manta_telemetry::counter("icall.candidates", all.len() as u64);
    let kept: Vec<FuncId> = all
        .into_iter()
        .filter(|&f| target_feasible(analysis, inference, site, f))
        .collect();
    manta_telemetry::counter("icall.targets_kept", kept.len() as u64);
    kept
}

fn target_feasible(
    analysis: &ModuleAnalysis,
    inference: &dyn TypeQuery,
    site: &IndirectCall,
    f: FuncId,
) -> bool {
    let target = analysis.module().function(f);
    if !arity_ok(site, target) || !ret_ok(site, target) {
        return false;
    }
    // Rule 2: F↑(arg_i@s) >: F↓(par_i@entry).
    for (&par, &arg) in target.params().iter().zip(&site.args) {
        let arg_upper = inference.upper_at(VarRef::new(site.func, arg), site.site);
        let par_lower = inference.lower_of(VarRef::new(f, par));
        if !compatible(&par_lower, &arg_upper) {
            return false;
        }
    }
    // Rule 3: F↑(ret_f@exit) >: F↓(ret@s).
    if site.has_ret {
        let mut ret_upper = Type::Bottom;
        for b in target.blocks() {
            if let Terminator::Ret(Some(r)) = b.term {
                ret_upper = ret_upper.join(&inference.upper_of(VarRef::new(f, r)));
            }
        }
        if ret_upper == Type::Bottom {
            ret_upper = Type::Top; // no typed return value observed
        }
        // The call-site result's lower bound must fit under the callee's
        // upper bound.
        let site_def = analysis
            .module()
            .function(site.func)
            .inst(site.site)
            .kind
            .def();
        if let Some(d) = site_def {
            let ret_lower = inference.lower_of(VarRef::new(site.func, d));
            if !compatible(&ret_lower, &ret_upper) {
                return false;
            }
        }
    }
    true
}

/// `lower <: upper` with the unknown/any sentinels treated permissively:
/// a variable the inference knows nothing about must not prune targets.
fn compatible(lower: &Type, upper: &Type) -> bool {
    if matches!(upper, Type::Top) || matches!(lower, Type::Bottom) {
        return true;
    }
    // An inverted unknown pair can surface as (⊤ lower) — permissive.
    if matches!(lower, Type::Top) {
        return true;
    }
    lower.is_subtype_of(upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta::{Manta, MantaConfig};
    use manta_ir::{ModuleBuilder, Width};

    /// Builds the Figure 3(c) scenario: two indirect call sites, one with a
    /// precisely-int argument, one with a precisely-pointer argument, and
    /// three address-taken candidates (int param, ptr param, zero params).
    fn scenario() -> (ModuleAnalysis, manta::InferenceResult, Vec<IndirectCall>) {
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let pd = mb.extern_fn("printf_d", &[], None);
        let ps = mb.extern_fn("printf_s", &[], None);

        let (f_int, mut b1) = mb.function("takes_int", &[Width::W64], None);
        let x = b1.param(0);
        let fmt = b1.alloca(8);
        b1.call_extern(pd, &[fmt, x], Some(Width::W32));
        b1.ret(None);
        mb.finish_function(b1);
        let (f_ptr, mut b2) = mb.function("takes_ptr", &[Width::W64], None);
        let y = b2.param(0);
        let fmt = b2.alloca(8);
        b2.call_extern(ps, &[fmt, y], Some(Width::W32));
        b2.ret(None);
        mb.finish_function(b2);
        let (f_none, mut b3) = mb.function("takes_none", &[], None);
        b3.ret(None);
        mb.finish_function(b3);
        mb.mark_address_taken(f_int);
        mb.mark_address_taken(f_ptr);
        mb.mark_address_taken(f_none);

        let (_, mut fb) = mb.function("driver", &[Width::W64, Width::W1], None);
        let n = fb.param(0);
        let c = fb.param(1);
        let sq = fb.binop(manta_ir::BinOp::Mul, n, n, Width::W64);
        let k = fb.const_int(16, Width::W64);
        let buf = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let fp1 = fb.func_addr(f_int);
        fb.call_indirect(fp1, &[sq], None);
        fb.br(j);
        fb.switch_to(e);
        let fp2 = fb.func_addr(f_ptr);
        fb.call_indirect(fp2, &[buf], None);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        mb.finish_function(fb);

        let analysis = ModuleAnalysis::build(mb.finish());
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let sites = indirect_call_sites(&analysis);
        (analysis, inference, sites)
    }

    #[test]
    fn typearmor_keeps_arity_compatible_targets() {
        let (analysis, _, sites) = scenario();
        assert_eq!(sites.len(), 2);
        for s in &sites {
            let targets = resolve_targets_typearmor(&analysis, s);
            // One argument fits functions with ≤1 parameter: all three.
            assert_eq!(targets.len(), 3);
        }
    }

    #[test]
    fn taucfi_matches_widths() {
        let (analysis, _, sites) = scenario();
        for s in &sites {
            let targets = resolve_targets_taucfi(&analysis, s);
            // Same widths here, so τ-CFI cannot do better than TypeArmor.
            assert_eq!(targets.len(), 3);
        }
    }

    #[test]
    fn manta_prunes_type_incompatible_targets() {
        let (analysis, inference, sites) = scenario();
        let m = analysis.module();
        let f_int = m.function_by_name("takes_int").unwrap().id();
        let f_ptr = m.function_by_name("takes_ptr").unwrap().id();
        let f_none = m.function_by_name("takes_none").unwrap().id();

        let t0 = resolve_targets_manta(&analysis, &inference, &sites[0]);
        assert!(t0.contains(&f_int), "int-arg site must keep takes_int");
        assert!(!t0.contains(&f_ptr), "int-arg site must prune takes_ptr");
        assert!(
            t0.contains(&f_none),
            "zero-param target always arity-feasible"
        );

        let t1 = resolve_targets_manta(&analysis, &inference, &sites[1]);
        assert!(t1.contains(&f_ptr), "ptr-arg site must keep takes_ptr");
        assert!(!t1.contains(&f_int), "ptr-arg site must prune takes_int");
    }

    #[test]
    fn unknown_types_do_not_prune() {
        // A site whose argument the inference knows nothing about keeps all
        // arity-compatible targets (recall preservation).
        let mut mb = ModuleBuilder::new("m");
        let opaque = mb.extern_fn("vendor_blob", &[], Some(Width::W64));
        let (f1, mut b1) = mb.function("cand", &[Width::W64], None);
        b1.ret(None);
        mb.finish_function(b1);
        mb.mark_address_taken(f1);
        let (_, mut fb) = mb.function("driver", &[], None);
        let v = fb.call_extern(opaque, &[], Some(Width::W64)).unwrap();
        let fp = fb.func_addr(f1);
        fb.call_indirect(fp, &[v], None);
        fb.ret(None);
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let sites = indirect_call_sites(&analysis);
        let targets = resolve_targets_manta(&analysis, &inference, &sites[0]);
        assert_eq!(targets, vec![f1]);
    }

    #[test]
    fn ret_presence_is_enforced() {
        let mut mb = ModuleBuilder::new("m");
        let (void_f, mut b1) = mb.function("void_f", &[], None);
        b1.ret(None);
        mb.finish_function(b1);
        let (ret_f, mut b2) = mb.function("ret_f", &[], Some(Width::W64));
        let k = b2.const_int(1, Width::W64);
        b2.ret(Some(k));
        mb.finish_function(b2);
        mb.mark_address_taken(void_f);
        mb.mark_address_taken(ret_f);
        let (_, mut fb) = mb.function("driver", &[], Some(Width::W64));
        let fp = fb.func_addr(ret_f);
        let r = fb.call_indirect(fp, &[], Some(Width::W64)).unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let sites = indirect_call_sites(&analysis);
        let ta = resolve_targets_typearmor(&analysis, &sites[0]);
        assert!(
            !ta.contains(&manta_ir::FuncId(0)),
            "void target infeasible for ret site"
        );
        let mm = resolve_targets_manta(&analysis, &inference, &sites[0]);
        assert_eq!(mm.len(), 1);
    }
}
