//! Infeasible data-dependency pruning (paper §5.2, Table 2).
//!
//! | opcode | rule | pruned dependency |
//! |--------|------|-------------------|
//! | `R = ADD OP1, OP2` | `TY(R)=ptr ∧ TY(OP1)=num` | `OP1 → R` |
//! | `R = ADD OP1, OP2` | `TY(R)=ptr ∧ TY(OP2)=num` | `OP2 → R` |
//! | `R = SUB OP1, OP2` | `TY(R)=num ∧ TY(OP1)=ptr` | `OP1 → R` |
//! | `R = SUB OP1, OP2` | `TY(R)=num ∧ TY(OP2)=ptr` | `OP2 → R` |
//! | `R = SUB OP1, OP2` | `TY(R)=ptr` | `OP2 → R` |
//!
//! `TY(v) = ty` abbreviates `F↑(v) = F↓(v) = ty` — the pruning fires only
//! on *precisely resolved* types, so imprecise inference prunes less (the
//! mechanism behind the paper's Figure 12 spread).

use manta::{FirstLayer, TypeQuery};
use manta_analysis::{Ddg, DepKind, ModuleAnalysis, VarRef};
use manta_ir::{BinOp, InstKind, Type, ValueId};

/// Counters from a pruning pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PruneStats {
    /// Arithmetic instructions examined.
    pub examined: usize,
    /// Dependency edges removed.
    pub removed: usize,
}

/// The precisely-resolved first layer of `v` at site `s`, if any.
fn ty_at(inference: &dyn TypeQuery, v: VarRef, s: manta_ir::InstId) -> Option<FirstLayer> {
    inference.precise_at(v, s).map(|t| FirstLayer::of(&t))
}

fn is_num(l: Option<FirstLayer>) -> bool {
    matches!(
        l,
        Some(FirstLayer::Int(_))
            | Some(FirstLayer::Float)
            | Some(FirstLayer::Double)
            | Some(FirstLayer::Num(_))
    )
}

fn is_ptr(l: Option<FirstLayer>) -> bool {
    matches!(l, Some(FirstLayer::Ptr))
}

/// Applies Table 2 to every `add`/`sub` instruction, removing infeasible
/// operand→result edges from `ddg` in place.
pub fn prune_infeasible_deps(
    analysis: &ModuleAnalysis,
    inference: &dyn TypeQuery,
    ddg: &mut Ddg,
) -> PruneStats {
    let mut stats = PruneStats::default();
    for func in analysis.module().functions() {
        let fid = func.id();
        for inst in func.insts() {
            let InstKind::BinOp { op, dst, lhs, rhs } = &inst.kind else {
                continue;
            };
            if !matches!(op, BinOp::Add | BinOp::Sub) {
                continue;
            }
            stats.examined += 1;
            let s = inst.id;
            let r_ty = ty_at(inference, VarRef::new(fid, *dst), s);
            let op1_ty = ty_at(inference, VarRef::new(fid, *lhs), s);
            let op2_ty = ty_at(inference, VarRef::new(fid, *rhs), s);
            let mut prune = |operand: ValueId, which: u8| {
                let from = ddg.node(VarRef::new(fid, operand));
                let to = ddg.node(VarRef::new(fid, *dst));
                stats.removed += ddg.remove_edges(
                    from,
                    to,
                    |k| matches!(k, DepKind::Arith { operand, .. } if operand == which),
                );
            };
            match op {
                BinOp::Add => {
                    // Pointer arithmetic: the numeric offset is not an
                    // alias of the resulting pointer.
                    if is_ptr(r_ty) {
                        if is_num(op1_ty) {
                            prune(*lhs, 0);
                        }
                        if is_num(op2_ty) {
                            prune(*rhs, 1);
                        }
                    }
                }
                BinOp::Sub => {
                    // Pointer difference: the numeric result no longer
                    // aliases the pointer operands.
                    if is_num(r_ty) {
                        if is_ptr(op1_ty) {
                            prune(*lhs, 0);
                        }
                        if is_ptr(op2_ty) {
                            prune(*rhs, 1);
                        }
                    }
                    // `ptr = ptr - offset`: the subtrahend is not an alias.
                    if is_ptr(r_ty) {
                        prune(*rhs, 1);
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    stats
}

/// Convenience: clones the analysis DDG and prunes the clone, returning it
/// with the stats. (The original analysis stays untouched for ablations.)
pub fn pruned_ddg(analysis: &ModuleAnalysis, inference: &dyn TypeQuery) -> (Ddg, PruneStats) {
    let mut ddg = Ddg::build(&analysis.pre, &analysis.pointsto);
    let stats = prune_infeasible_deps(analysis, inference, &mut ddg);
    (ddg, stats)
}

/// Checks whether `t` is a numeric type at any abstraction level — exposed
/// for checker-side type guards.
pub fn type_is_numeric(t: &Type) -> bool {
    t.is_numeric()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta::{Manta, MantaConfig};
    use manta_ir::{ModuleBuilder, Width};

    /// `r = base + off` with `base` a malloc pointer and `off` revealed
    /// numeric; the paper's Figure 4 pruning case.
    #[test]
    fn prunes_numeric_offset_into_pointer_add() {
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let n = fb.param(0);
        let off = fb.binop(BinOp::Mul, n, n, Width::W64);
        let k = fb.const_int(64, Width::W64);
        let base = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let r = fb.binop(BinOp::Add, base, off, Width::W64);
        let x = fb.load(r, Width::W64);
        let _ = x;
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let (ddg, stats) = pruned_ddg(&analysis, &inference);
        assert_eq!(stats.removed, 1, "exactly the off→r edge");
        let n_off = ddg.node(VarRef::new(fid, off));
        let n_r = ddg.node(VarRef::new(fid, r));
        let n_base = ddg.node(VarRef::new(fid, base));
        assert!(!ddg.children(n_off).iter().any(|&(t, _)| t == n_r));
        assert!(
            ddg.children(n_base).iter().any(|&(t, _)| t == n_r),
            "base edge survives"
        );
    }

    #[test]
    fn sub_pointer_difference_pruned() {
        // d = p - q with both pointers and d used numerically.
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (fid, mut fb) = mb.function("f", &[], Some(Width::W64));
        let k = fb.const_int(64, Width::W64);
        let p = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let q = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let d = fb.binop(BinOp::Sub, p, q, Width::W64);
        let two = fb.const_int(2, Width::W64);
        let half = fb.binop(BinOp::Div, d, two, Width::W64); // reveals d numeric
        fb.ret(Some(half));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let (ddg, stats) = pruned_ddg(&analysis, &inference);
        assert_eq!(
            stats.removed, 2,
            "both ptr operands pruned from numeric result"
        );
        let nd = ddg.node(VarRef::new(fid, d));
        assert!(ddg
            .parents(nd)
            .iter()
            .all(|&(_, k)| !matches!(k, DepKind::Arith { .. })));
    }

    #[test]
    fn imprecise_types_prune_nothing() {
        // Without reveals the operands stay untyped: no pruning.
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64, Width::W64], Some(Width::W64));
        let a = fb.param(0);
        let b = fb.param(1);
        let r = fb.binop(BinOp::Add, a, b, Width::W64);
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let inference = Manta::new(MantaConfig::full()).infer(&analysis);
        let (_, stats) = pruned_ddg(&analysis, &inference);
        assert_eq!(stats.examined, 1);
        assert_eq!(stats.removed, 0);
    }
}
