//! Source–sink DDG traversal (paper §5.3).
//!
//! Bug detection is program slicing over the (optionally pruned) DDG: a
//! forward traversal from each source, constrained by CFL-context validity
//! and an optional per-node *type guard*, reporting every sink reached.

use std::collections::HashSet;

use manta_analysis::cfl::{ctx_op, CtxStack, Direction};
use manta_analysis::{Ddg, NodeId};

/// Tuning for the slicer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlicerConfig {
    /// Context-stack depth bound.
    pub max_ctx_depth: usize,
    /// Node-visit budget per source.
    pub max_visits: usize,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            max_ctx_depth: 32,
            max_visits: 200_000,
        }
    }
}

/// A source–sink reachability fact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SourceSinkPair {
    /// The slice origin.
    pub source: NodeId,
    /// The sink reached.
    pub sink: NodeId,
}

/// Forward slicer over a DDG.
#[derive(Debug)]
pub struct Slicer<'a> {
    ddg: &'a Ddg,
    config: SlicerConfig,
    /// Total nodes visited across all queries — the work metric reported
    /// in the Table 5 time comparison.
    pub visits: usize,
}

impl<'a> Slicer<'a> {
    /// Creates a slicer over `ddg`.
    pub fn new(ddg: &'a Ddg, config: SlicerConfig) -> Slicer<'a> {
        Slicer {
            ddg,
            config,
            visits: 0,
        }
    }

    /// Slices forward from every source; returns each `(source, sink)` pair
    /// with a CFL-valid value-flow path whose every intermediate node
    /// passes `guard`.
    pub fn slice(
        &mut self,
        sources: &[NodeId],
        sinks: &HashSet<NodeId>,
        mut guard: impl FnMut(NodeId) -> bool,
    ) -> Vec<SourceSinkPair> {
        let mut out = Vec::new();
        for &src in sources {
            let mut visited: HashSet<NodeId> = HashSet::new();
            let mut ctx = CtxStack::new(self.config.max_ctx_depth);
            let mut budget = self.config.max_visits;
            self.walk(
                src,
                src,
                sinks,
                &mut guard,
                &mut visited,
                &mut ctx,
                &mut budget,
                &mut out,
            );
        }
        out.sort_by_key(|p| (p.source, p.sink));
        out.dedup();
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        src: NodeId,
        node: NodeId,
        sinks: &HashSet<NodeId>,
        guard: &mut impl FnMut(NodeId) -> bool,
        visited: &mut HashSet<NodeId>,
        ctx: &mut CtxStack,
        budget: &mut usize,
        out: &mut Vec<SourceSinkPair>,
    ) {
        if *budget == 0 || !visited.insert(node) {
            return;
        }
        *budget -= 1;
        self.visits += 1;
        if node != src && !guard(node) {
            // Type guard: the flow cannot continue through this node.
            return;
        }
        if sinks.contains(&node) {
            out.push(SourceSinkPair {
                source: src,
                sink: node,
            });
        }
        for &(child, kind) in self.ddg.children(node) {
            if !kind.is_value_flow() {
                continue;
            }
            let op = ctx_op(kind, Direction::Forward);
            if ctx.enter(op) {
                self.walk(src, child, sinks, guard, visited, ctx, budget, out);
                ctx.leave(op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_analysis::{ModuleAnalysis, VarRef};
    use manta_ir::{ModuleBuilder, Width};

    #[test]
    fn finds_simple_flow_and_respects_guard() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let a = fb.copy(p);
        let b = fb.copy(a);
        fb.ret(Some(b));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        let ddg = &analysis.ddg;
        let np = ddg.node(VarRef::new(fid, p));
        let na = ddg.node(VarRef::new(fid, a));
        let nb = ddg.node(VarRef::new(fid, b));
        let sinks: HashSet<NodeId> = [nb].into_iter().collect();

        let mut slicer = Slicer::new(ddg, SlicerConfig::default());
        let pairs = slicer.slice(&[np], &sinks, |_| true);
        assert_eq!(
            pairs,
            vec![SourceSinkPair {
                source: np,
                sink: nb
            }]
        );
        assert!(slicer.visits >= 3);

        // Guard that blocks the midpoint kills the path.
        let mut slicer = Slicer::new(ddg, SlicerConfig::default());
        let pairs = slicer.slice(&[np], &sinks, |n| n != na);
        assert!(pairs.is_empty());
    }

    #[test]
    fn cfl_blocks_cross_context_flow() {
        // id() called from two sites: source in caller1 must not reach the
        // sink bound to caller2's result.
        let mut mb = ModuleBuilder::new("m");
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);
        let (c1, mut b1) = mb.function("c1", &[Width::W64], Some(Width::W64));
        let p1 = b1.param(0);
        let r1 = b1.call(id_f, &[p1], Some(Width::W64)).unwrap();
        b1.ret(Some(r1));
        mb.finish_function(b1);
        let (c2, mut b2) = mb.function("c2", &[Width::W64], Some(Width::W64));
        let p2 = b2.param(0);
        let r2 = b2.call(id_f, &[p2], Some(Width::W64)).unwrap();
        b2.ret(Some(r2));
        mb.finish_function(b2);
        let analysis = ModuleAnalysis::build(mb.finish());
        let ddg = &analysis.ddg;
        let src = ddg.node(VarRef::new(c1, p1));
        let good_sink = ddg.node(VarRef::new(c1, r1));
        let bad_sink = ddg.node(VarRef::new(c2, r2));
        let sinks: HashSet<NodeId> = [good_sink, bad_sink].into_iter().collect();
        let mut slicer = Slicer::new(ddg, SlicerConfig::default());
        let pairs = slicer.slice(&[src], &sinks, |_| true);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].sink, good_sink, "CFL must reject the c2 return");
    }
}
