//! Fluent construction of modules and functions.
//!
//! [`ModuleBuilder`] owns a module under construction; [`FunctionBuilder`]
//! appends SSA instructions to one function with a current-block cursor,
//! mirroring LLVM's `IRBuilder`.
//!
//! ```
//! use manta_ir::{ModuleBuilder, Width, BinOp, ConstKind};
//!
//! let mut mb = ModuleBuilder::new("m");
//! let malloc = mb.extern_fn("malloc", &[], None);
//! let (_f, mut fb) = mb.function("grab", &[Width::W64], Some(Width::W64));
//! let n = fb.param(0);
//! let eight = fb.const_int(8, Width::W64);
//! let sz = fb.binop(BinOp::Mul, n, eight, Width::W64);
//! let buf = fb.call_extern(malloc, &[sz], Some(Width::W64));
//! fb.ret(buf);
//! mb.finish_function(fb);
//! let m = mb.finish();
//! manta_ir::verify::verify_module(&m).unwrap();
//! ```

use std::collections::HashMap;
use std::hash::Hash;

use crate::externs::ExternRegistry;
use crate::function::{Function, Terminator};
use crate::ids::{BlockId, ExternId, FuncId, GlobalId, InstId, ValueId};
use crate::inst::{BinOp, Callee, CmpPred, InstKind};
use crate::module::Module;
use crate::types::Width;
use crate::value::{ConstKind, Value, ValueKind};

/// Builds a [`Module`] incrementally.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts a new module named `name`.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Starts a new function; returns its id and a builder positioned at the
    /// entry block. Every started function must later be passed to
    /// [`finish_function`](Self::finish_function).
    pub fn function(
        &mut self,
        name: &str,
        param_widths: &[Width],
        ret_width: Option<Width>,
    ) -> (FuncId, FunctionBuilder) {
        let id = self.module.next_func_id();
        let func = Function::new(id, name.to_string(), param_widths, ret_width);
        // Reserve the slot so sibling functions allocated before this one is
        // finished still receive distinct ids.
        let placeholder = Function::new(id, name.to_string(), param_widths, ret_width);
        self.module.push_function(placeholder);
        let entry = func.entry();
        (
            id,
            FunctionBuilder {
                func,
                cursor: entry,
            },
        )
    }

    /// Installs a finished function body.
    pub fn finish_function(&mut self, fb: FunctionBuilder) {
        let id = fb.func.id();
        *self.module.function_mut(id) = fb.func;
    }

    /// Declares a global region of `size` bytes.
    pub fn global(&mut self, name: &str, size: u64) -> GlobalId {
        self.module.push_global(name.to_string(), size)
    }

    /// Declares an external function. Well-known names get their modeled
    /// signature and effect from [`ExternRegistry`]; unknown names fall back
    /// to the given widths with no signature.
    pub fn extern_fn(
        &mut self,
        name: &str,
        fallback_params: &[Width],
        fallback_ret: Option<Width>,
    ) -> ExternId {
        if let Some(e) = self.module.extern_by_name(name) {
            return e;
        }
        let id = self.module.next_extern_id();
        let decl = ExternRegistry::declare(id, name, fallback_params, fallback_ret);
        self.module.push_extern(decl)
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Read access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Marks `f` address-taken (its address escapes into data).
    pub fn mark_address_taken(&mut self, f: FuncId) {
        self.module.function_mut(f).set_address_taken(true);
    }
}

/// Builds one function body with a current-block cursor.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cursor: BlockId,
}

impl FunctionBuilder {
    /// The id of the function being built.
    pub fn func_id(&self) -> FuncId {
        self.func.id()
    }

    /// The `index`-th parameter value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> ValueId {
        self.func.params()[index]
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.cursor
    }

    /// Creates a new (empty, unterminated) block.
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Moves the cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cursor = block;
    }

    fn def_value(&mut self, width: Width) -> ValueId {
        // The def instruction id is the one about to be pushed.
        let next_inst = crate::ids::InstId::from_index(self.func.inst_count());
        self.func.add_value(Value {
            kind: ValueKind::Inst { def: next_inst },
            width,
        })
    }

    /// An integer constant value.
    pub fn const_int(&mut self, v: i64, width: Width) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Int(v)),
            width,
        })
    }

    /// A floating constant value.
    pub fn const_float(&mut self, v: f64, width: Width) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Float(v)),
            width,
        })
    }

    /// The null-pointer constant.
    pub fn const_null(&mut self) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Null),
            width: Width::W64,
        })
    }

    /// The address of global `g`.
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::GlobalAddr(g),
            width: Width::W64,
        })
    }

    /// The address of function `f` (an address-taken constant).
    pub fn func_addr(&mut self, f: FuncId) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::FuncAddr(f),
            width: Width::W64,
        })
    }

    /// `dst = copy src`.
    pub fn copy(&mut self, src: ValueId) -> ValueId {
        let width = self.func.value(src).width;
        let dst = self.def_value(width);
        self.func
            .append_inst(self.cursor, InstKind::Copy { dst, src });
        dst
    }

    /// `dst = phi [(block, value), …]`.
    pub fn phi(&mut self, incomings: &[(BlockId, ValueId)], width: Width) -> ValueId {
        let dst = self.def_value(width);
        self.func.append_inst(
            self.cursor,
            InstKind::Phi {
                dst,
                incomings: incomings.to_vec(),
            },
        );
        dst
    }

    /// `dst = load addr` of the given width.
    pub fn load(&mut self, addr: ValueId, width: Width) -> ValueId {
        let dst = self.def_value(width);
        self.func
            .append_inst(self.cursor, InstKind::Load { dst, addr, width });
        dst
    }

    /// `store addr, val`.
    pub fn store(&mut self, addr: ValueId, val: ValueId) {
        self.func
            .append_inst(self.cursor, InstKind::Store { addr, val });
    }

    /// `dst = alloca size` — a stack slot address.
    pub fn alloca(&mut self, size: u64) -> ValueId {
        let dst = self.def_value(Width::W64);
        self.func
            .append_inst(self.cursor, InstKind::Alloca { dst, size });
        dst
    }

    /// `dst = gep base, offset` — a field address.
    pub fn gep(&mut self, base: ValueId, offset: u64) -> ValueId {
        let dst = self.def_value(Width::W64);
        self.func
            .append_inst(self.cursor, InstKind::Gep { dst, base, offset });
        dst
    }

    /// `dst = op lhs, rhs`.
    pub fn binop(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId, width: Width) -> ValueId {
        let dst = self.def_value(width);
        self.func
            .append_inst(self.cursor, InstKind::BinOp { op, dst, lhs, rhs });
        dst
    }

    /// `dst = cmp.pred lhs, rhs` (result width `W1`).
    pub fn cmp(&mut self, pred: CmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        let dst = self.def_value(Width::W1);
        self.func.append_inst(
            self.cursor,
            InstKind::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            },
        );
        dst
    }

    /// Direct call to module function `f`.
    pub fn call(&mut self, f: FuncId, args: &[ValueId], ret: Option<Width>) -> Option<ValueId> {
        let dst = ret.map(|w| self.def_value(w));
        self.func.append_inst(
            self.cursor,
            InstKind::Call {
                dst,
                callee: Callee::Direct(f),
                args: args.to_vec(),
            },
        );
        dst
    }

    /// Call to external `e`; returns the result value if `ret` is given.
    pub fn call_extern(
        &mut self,
        e: ExternId,
        args: &[ValueId],
        ret: Option<Width>,
    ) -> Option<ValueId> {
        let dst = ret.map(|w| self.def_value(w));
        self.func.append_inst(
            self.cursor,
            InstKind::Call {
                dst,
                callee: Callee::Extern(e),
                args: args.to_vec(),
            },
        );
        dst
    }

    /// Indirect call through function-pointer value `fp`.
    pub fn call_indirect(
        &mut self,
        fp: ValueId,
        args: &[ValueId],
        ret: Option<Width>,
    ) -> Option<ValueId> {
        let dst = ret.map(|w| self.def_value(w));
        self.func.append_inst(
            self.cursor,
            InstKind::Call {
                dst,
                callee: Callee::Indirect(fp),
                args: args.to_vec(),
            },
        );
        dst
    }

    /// Terminates the current block with `br target`.
    pub fn br(&mut self, target: BlockId) {
        self.func
            .replace_terminator(self.cursor, Terminator::Br(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.func.replace_terminator(
            self.cursor,
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            },
        );
    }

    /// Terminates the current block with `ret`.
    pub fn ret(&mut self, val: Option<ValueId>) {
        self.func
            .replace_terminator(self.cursor, Terminator::Ret(val));
    }

    /// Terminates the current block with `unreachable`.
    pub fn unreachable(&mut self) {
        self.func
            .replace_terminator(self.cursor, Terminator::Unreachable);
    }

    /// Read access to the function under construction.
    pub fn function(&self) -> &Function {
        &self.func
    }
}

/// Sealed-block SSA construction over an abstract machine-register file
/// (Braun et al., *Simple and Efficient Construction of Static Single
/// Assignment Form*, CC 2013).
///
/// Frontends lifting machine code into [`Function`]s share this machinery:
/// the register key `R` is whatever a frontend renames (SB-ISA registers,
/// x86-64 GPRs, …). The protocol per function:
///
/// 1. construct with the full machine-CFG predecessor map (all blocks are
///    known up front, so every block is *sealed*);
/// 2. for each block in layout order: [`begin_block`](Self::begin_block)
///    (seeding the entry with parameter bindings), translate instructions
///    using [`read`](Self::read)/[`write`](Self::write), then
///    [`end_block`](Self::end_block);
/// 3. [`finish`](Self::finish) once all blocks are translated — pending
///    start-of-block phis created by cross-block reads are resolved against
///    the sealed end-of-block states (two-phase, because loop back edges
///    flow from blocks translated later).
///
/// Reads of never-written registers yield a single shared `undef` constant.
/// Phi placeholder values are created with a dummy defining instruction and
/// re-pointed via [`Function::fix_value_def`] when the phi is prepended.
#[derive(Debug)]
pub struct SsaBuilder<R> {
    /// Machine-CFG predecessors per block.
    preds: HashMap<BlockId, Vec<BlockId>>,
    /// Register state of the block currently being translated.
    cur: HashMap<R, ValueId>,
    /// Start-of-block pending phi values, created on demand.
    start_defs: HashMap<(BlockId, R), ValueId>,
    /// Pending phis awaiting operand resolution: (block, reg, phi value).
    pending: Vec<(BlockId, R, ValueId)>,
    /// End-of-block register state (definitions visible to successors).
    sealed_out: HashMap<BlockId, HashMap<R, ValueId>>,
    /// The shared undef value, created lazily.
    undef: Option<ValueId>,
}

impl<R: Copy + Eq + Hash> SsaBuilder<R> {
    /// Starts SSA construction with the machine CFG's predecessor map.
    pub fn new(preds: HashMap<BlockId, Vec<BlockId>>) -> SsaBuilder<R> {
        SsaBuilder {
            preds,
            cur: HashMap::new(),
            start_defs: HashMap::new(),
            pending: Vec::new(),
            sealed_out: HashMap::new(),
            undef: None,
        }
    }

    /// Begins translating `block`, seeding its register state (used for
    /// parameter registers at the entry block).
    pub fn begin_block(&mut self, seed: impl IntoIterator<Item = (R, ValueId)>) {
        self.cur.clear();
        for (r, v) in seed {
            self.cur.insert(r, v);
        }
    }

    /// Binds register `r` to `v` in the block being translated.
    pub fn write(&mut self, r: R, v: ValueId) {
        self.cur.insert(r, v);
    }

    /// Reads `r` in block `b` (the block being translated): the most recent
    /// block-local binding, or a memoized start-of-block pending phi, or
    /// `undef` when `b` has no predecessors.
    pub fn read(&mut self, func: &mut Function, b: BlockId, r: R) -> ValueId {
        if let Some(&v) = self.cur.get(&r) {
            return v;
        }
        let v = self.start_value(func, b, r);
        self.cur.insert(r, v);
        v
    }

    /// Seals the register state of `b` (call after translating its last
    /// instruction).
    pub fn end_block(&mut self, b: BlockId) {
        let out = std::mem::take(&mut self.cur);
        self.sealed_out.insert(b, out);
    }

    /// The value of `r` at the end of block `p` (creating a pending
    /// start-of-block phi at `p` when `p` never writes `r`).
    fn end_value(&mut self, func: &mut Function, p: BlockId, r: R) -> ValueId {
        if let Some(&v) = self.sealed_out.get(&p).and_then(|m| m.get(&r)) {
            return v;
        }
        self.start_value(func, p, r)
    }

    /// The value of `r` at the start of block `b`: a pending phi
    /// (memoized), or `undef` when `b` has no predecessors.
    fn start_value(&mut self, func: &mut Function, b: BlockId, r: R) -> ValueId {
        if let Some(&v) = self.start_defs.get(&(b, r)) {
            return v;
        }
        let v = if self.preds.get(&b).is_none_or(Vec::is_empty) {
            self.undef_value(func)
        } else {
            let phi_val = func.add_value(Value {
                kind: ValueKind::Inst { def: InstId(0) }, // fixed at resolution
                width: Width::W64,
            });
            self.pending.push((b, r, phi_val));
            phi_val
        };
        self.start_defs.insert((b, r), v);
        v
    }

    /// The function's shared `undef` constant, created on first use.
    pub fn undef_value(&mut self, func: &mut Function) -> ValueId {
        if let Some(v) = self.undef {
            return v;
        }
        let v = func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Undef),
            width: Width::W64,
        });
        self.undef = Some(v);
        v
    }

    /// Resolves all pending start-of-block phis against the sealed
    /// end-of-block states. Call exactly once, after every block has been
    /// translated and sealed.
    pub fn finish(&mut self, func: &mut Function) {
        while let Some((b, r, phi_val)) = self.pending.pop() {
            let preds = self.preds.get(&b).cloned().unwrap_or_default();
            if preds.is_empty() {
                // Unreachable or entry: the register was never defined.
                let undef = self.undef_value(func);
                let inst = func.prepend_inst(
                    b,
                    InstKind::Copy {
                        dst: phi_val,
                        src: undef,
                    },
                );
                func.fix_value_def(phi_val, inst);
                continue;
            }
            let mut incomings = Vec::new();
            for p in preds {
                let v = self.end_value(func, p, r);
                incomings.push((p, v));
            }
            let inst = func.prepend_inst(
                b,
                InstKind::Phi {
                    dst: phi_val,
                    incomings,
                },
            );
            func.fix_value_def(phi_val, inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn builds_branchy_function() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let zero = fb.const_int(0, Width::W64);
        let c = fb.cmp(CmpPred::Eq, p, zero);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let one = fb.const_int(1, Width::W64);
        fb.br(j);
        fb.switch_to(e);
        let two = fb.const_int(2, Width::W64);
        fb.br(j);
        fb.switch_to(j);
        let m = fb.phi(&[(t, one), (e, two)], Width::W64);
        fb.ret(Some(m));
        mb.finish_function(fb);
        let module = mb.finish();
        verify_module(&module).unwrap();
        let f = module.function_by_name("f").unwrap();
        assert_eq!(f.block_count(), 4);
        assert_eq!(f.inst_count(), 2); // cmp + phi
    }

    #[test]
    fn sibling_functions_get_distinct_ids() {
        let mut mb = ModuleBuilder::new("m");
        let (f1, fb1) = mb.function("a", &[], None);
        let (f2, fb2) = mb.function("b", &[], None);
        assert_ne!(f1, f2);
        mb.finish_function(fb2);
        mb.finish_function(fb1);
        let m = mb.finish();
        assert_eq!(m.function(f1).name(), "a");
        assert_eq!(m.function(f2).name(), "b");
    }

    #[test]
    fn extern_dedup_by_name() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.extern_fn("malloc", &[], None);
        let b = mb.extern_fn("malloc", &[], None);
        assert_eq!(a, b);
    }

    #[test]
    fn ssa_builder_places_phi_at_join() {
        // Hand-drive the builder over a diamond where both arms write the
        // same abstract register and the join reads it.
        let mut f = Function::new(FuncId(0), "f".into(), &[], Some(Width::W64));
        let entry = f.entry();
        let t = f.add_block();
        let e = f.add_block();
        let j = f.add_block();
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        preds.insert(t, vec![entry]);
        preds.insert(e, vec![entry]);
        preds.insert(j, vec![t, e]);
        let mut ssa: SsaBuilder<u8> = SsaBuilder::new(preds);

        ssa.begin_block([]);
        f.replace_terminator(entry, Terminator::Br(t)); // CFG shape only
        ssa.end_block(entry);

        for (b, k, succ) in [(t, 1i64, j), (e, 2, j)] {
            ssa.begin_block([]);
            let c = f.add_value(Value {
                kind: ValueKind::Const(ConstKind::Int(k)),
                width: Width::W64,
            });
            ssa.write(0u8, c);
            f.replace_terminator(b, Terminator::Br(succ));
            ssa.end_block(b);
        }

        ssa.begin_block([]);
        let merged = ssa.read(&mut f, j, 0u8);
        f.replace_terminator(j, Terminator::Ret(Some(merged)));
        ssa.end_block(j);
        ssa.finish(&mut f);

        let phis: Vec<_> = f
            .insts()
            .filter(|i| matches!(i.kind, InstKind::Phi { .. }))
            .collect();
        assert_eq!(phis.len(), 1, "one phi for the joined register");
        let InstKind::Phi { dst, ref incomings } = phis[0].kind else {
            unreachable!()
        };
        assert_eq!(dst, merged);
        assert_eq!(incomings.len(), 2);
    }

    #[test]
    fn ssa_builder_reads_of_unwritten_registers_are_undef() {
        let mut f = Function::new(FuncId(0), "f".into(), &[], Some(Width::W64));
        let entry = f.entry();
        let mut ssa: SsaBuilder<u8> = SsaBuilder::new(HashMap::new());
        ssa.begin_block([]);
        let v = ssa.read(&mut f, entry, 9u8);
        assert!(matches!(
            f.value(v).kind,
            ValueKind::Const(ConstKind::Undef)
        ));
        // Reads are memoized: same undef value each time.
        let v2 = ssa.read(&mut f, entry, 3u8);
        assert_eq!(v, v2);
    }
}
