//! Fluent construction of modules and functions.
//!
//! [`ModuleBuilder`] owns a module under construction; [`FunctionBuilder`]
//! appends SSA instructions to one function with a current-block cursor,
//! mirroring LLVM's `IRBuilder`.
//!
//! ```
//! use manta_ir::{ModuleBuilder, Width, BinOp, ConstKind};
//!
//! let mut mb = ModuleBuilder::new("m");
//! let malloc = mb.extern_fn("malloc", &[], None);
//! let (_f, mut fb) = mb.function("grab", &[Width::W64], Some(Width::W64));
//! let n = fb.param(0);
//! let eight = fb.const_int(8, Width::W64);
//! let sz = fb.binop(BinOp::Mul, n, eight, Width::W64);
//! let buf = fb.call_extern(malloc, &[sz], Some(Width::W64));
//! fb.ret(buf);
//! mb.finish_function(fb);
//! let m = mb.finish();
//! manta_ir::verify::verify_module(&m).unwrap();
//! ```

use crate::externs::ExternRegistry;
use crate::function::{Function, Terminator};
use crate::ids::{BlockId, ExternId, FuncId, GlobalId, ValueId};
use crate::inst::{BinOp, Callee, CmpPred, InstKind};
use crate::module::Module;
use crate::types::Width;
use crate::value::{ConstKind, Value, ValueKind};

/// Builds a [`Module`] incrementally.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts a new module named `name`.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Starts a new function; returns its id and a builder positioned at the
    /// entry block. Every started function must later be passed to
    /// [`finish_function`](Self::finish_function).
    pub fn function(
        &mut self,
        name: &str,
        param_widths: &[Width],
        ret_width: Option<Width>,
    ) -> (FuncId, FunctionBuilder) {
        let id = self.module.next_func_id();
        let func = Function::new(id, name.to_string(), param_widths, ret_width);
        // Reserve the slot so sibling functions allocated before this one is
        // finished still receive distinct ids.
        let placeholder = Function::new(id, name.to_string(), param_widths, ret_width);
        self.module.push_function(placeholder);
        let entry = func.entry();
        (
            id,
            FunctionBuilder {
                func,
                cursor: entry,
            },
        )
    }

    /// Installs a finished function body.
    pub fn finish_function(&mut self, fb: FunctionBuilder) {
        let id = fb.func.id();
        *self.module.function_mut(id) = fb.func;
    }

    /// Declares a global region of `size` bytes.
    pub fn global(&mut self, name: &str, size: u64) -> GlobalId {
        self.module.push_global(name.to_string(), size)
    }

    /// Declares an external function. Well-known names get their modeled
    /// signature and effect from [`ExternRegistry`]; unknown names fall back
    /// to the given widths with no signature.
    pub fn extern_fn(
        &mut self,
        name: &str,
        fallback_params: &[Width],
        fallback_ret: Option<Width>,
    ) -> ExternId {
        if let Some(e) = self.module.extern_by_name(name) {
            return e;
        }
        let id = self.module.next_extern_id();
        let decl = ExternRegistry::declare(id, name, fallback_params, fallback_ret);
        self.module.push_extern(decl)
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Read access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Marks `f` address-taken (its address escapes into data).
    pub fn mark_address_taken(&mut self, f: FuncId) {
        self.module.function_mut(f).set_address_taken(true);
    }
}

/// Builds one function body with a current-block cursor.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cursor: BlockId,
}

impl FunctionBuilder {
    /// The id of the function being built.
    pub fn func_id(&self) -> FuncId {
        self.func.id()
    }

    /// The `index`-th parameter value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> ValueId {
        self.func.params()[index]
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.cursor
    }

    /// Creates a new (empty, unterminated) block.
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Moves the cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cursor = block;
    }

    fn def_value(&mut self, width: Width) -> ValueId {
        // The def instruction id is the one about to be pushed.
        let next_inst = crate::ids::InstId::from_index(self.func.inst_count());
        self.func.add_value(Value {
            kind: ValueKind::Inst { def: next_inst },
            width,
        })
    }

    /// An integer constant value.
    pub fn const_int(&mut self, v: i64, width: Width) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Int(v)),
            width,
        })
    }

    /// A floating constant value.
    pub fn const_float(&mut self, v: f64, width: Width) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Float(v)),
            width,
        })
    }

    /// The null-pointer constant.
    pub fn const_null(&mut self) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Null),
            width: Width::W64,
        })
    }

    /// The address of global `g`.
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::GlobalAddr(g),
            width: Width::W64,
        })
    }

    /// The address of function `f` (an address-taken constant).
    pub fn func_addr(&mut self, f: FuncId) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::FuncAddr(f),
            width: Width::W64,
        })
    }

    /// `dst = copy src`.
    pub fn copy(&mut self, src: ValueId) -> ValueId {
        let width = self.func.value(src).width;
        let dst = self.def_value(width);
        self.func
            .append_inst(self.cursor, InstKind::Copy { dst, src });
        dst
    }

    /// `dst = phi [(block, value), …]`.
    pub fn phi(&mut self, incomings: &[(BlockId, ValueId)], width: Width) -> ValueId {
        let dst = self.def_value(width);
        self.func.append_inst(
            self.cursor,
            InstKind::Phi {
                dst,
                incomings: incomings.to_vec(),
            },
        );
        dst
    }

    /// `dst = load addr` of the given width.
    pub fn load(&mut self, addr: ValueId, width: Width) -> ValueId {
        let dst = self.def_value(width);
        self.func
            .append_inst(self.cursor, InstKind::Load { dst, addr, width });
        dst
    }

    /// `store addr, val`.
    pub fn store(&mut self, addr: ValueId, val: ValueId) {
        self.func
            .append_inst(self.cursor, InstKind::Store { addr, val });
    }

    /// `dst = alloca size` — a stack slot address.
    pub fn alloca(&mut self, size: u64) -> ValueId {
        let dst = self.def_value(Width::W64);
        self.func
            .append_inst(self.cursor, InstKind::Alloca { dst, size });
        dst
    }

    /// `dst = gep base, offset` — a field address.
    pub fn gep(&mut self, base: ValueId, offset: u64) -> ValueId {
        let dst = self.def_value(Width::W64);
        self.func
            .append_inst(self.cursor, InstKind::Gep { dst, base, offset });
        dst
    }

    /// `dst = op lhs, rhs`.
    pub fn binop(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId, width: Width) -> ValueId {
        let dst = self.def_value(width);
        self.func
            .append_inst(self.cursor, InstKind::BinOp { op, dst, lhs, rhs });
        dst
    }

    /// `dst = cmp.pred lhs, rhs` (result width `W1`).
    pub fn cmp(&mut self, pred: CmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        let dst = self.def_value(Width::W1);
        self.func.append_inst(
            self.cursor,
            InstKind::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            },
        );
        dst
    }

    /// Direct call to module function `f`.
    pub fn call(&mut self, f: FuncId, args: &[ValueId], ret: Option<Width>) -> Option<ValueId> {
        let dst = ret.map(|w| self.def_value(w));
        self.func.append_inst(
            self.cursor,
            InstKind::Call {
                dst,
                callee: Callee::Direct(f),
                args: args.to_vec(),
            },
        );
        dst
    }

    /// Call to external `e`; returns the result value if `ret` is given.
    pub fn call_extern(
        &mut self,
        e: ExternId,
        args: &[ValueId],
        ret: Option<Width>,
    ) -> Option<ValueId> {
        let dst = ret.map(|w| self.def_value(w));
        self.func.append_inst(
            self.cursor,
            InstKind::Call {
                dst,
                callee: Callee::Extern(e),
                args: args.to_vec(),
            },
        );
        dst
    }

    /// Indirect call through function-pointer value `fp`.
    pub fn call_indirect(
        &mut self,
        fp: ValueId,
        args: &[ValueId],
        ret: Option<Width>,
    ) -> Option<ValueId> {
        let dst = ret.map(|w| self.def_value(w));
        self.func.append_inst(
            self.cursor,
            InstKind::Call {
                dst,
                callee: Callee::Indirect(fp),
                args: args.to_vec(),
            },
        );
        dst
    }

    /// Terminates the current block with `br target`.
    pub fn br(&mut self, target: BlockId) {
        self.func
            .replace_terminator(self.cursor, Terminator::Br(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.func.replace_terminator(
            self.cursor,
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            },
        );
    }

    /// Terminates the current block with `ret`.
    pub fn ret(&mut self, val: Option<ValueId>) {
        self.func
            .replace_terminator(self.cursor, Terminator::Ret(val));
    }

    /// Terminates the current block with `unreachable`.
    pub fn unreachable(&mut self) {
        self.func
            .replace_terminator(self.cursor, Terminator::Unreachable);
    }

    /// Read access to the function under construction.
    pub fn function(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn builds_branchy_function() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let zero = fb.const_int(0, Width::W64);
        let c = fb.cmp(CmpPred::Eq, p, zero);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let one = fb.const_int(1, Width::W64);
        fb.br(j);
        fb.switch_to(e);
        let two = fb.const_int(2, Width::W64);
        fb.br(j);
        fb.switch_to(j);
        let m = fb.phi(&[(t, one), (e, two)], Width::W64);
        fb.ret(Some(m));
        mb.finish_function(fb);
        let module = mb.finish();
        verify_module(&module).unwrap();
        let f = module.function_by_name("f").unwrap();
        assert_eq!(f.block_count(), 4);
        assert_eq!(f.inst_count(), 2); // cmp + phi
    }

    #[test]
    fn sibling_functions_get_distinct_ids() {
        let mut mb = ModuleBuilder::new("m");
        let (f1, fb1) = mb.function("a", &[], None);
        let (f2, fb2) = mb.function("b", &[], None);
        assert_ne!(f1, f2);
        mb.finish_function(fb2);
        mb.finish_function(fb1);
        let m = mb.finish();
        assert_eq!(m.function(f1).name(), "a");
        assert_eq!(m.function(f2).name(), "b");
    }

    #[test]
    fn extern_dedup_by_name() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.extern_fn("malloc", &[], None);
        let b = mb.extern_fn("malloc", &[], None);
        assert_eq!(a, b);
    }
}
