//! Dominator-tree computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use crate::ids::BlockId;

/// Immediate-dominator table for one function's CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes dominators over `cfg`.
    pub fn new(cfg: &Cfg) -> Dominators {
        let n_blocks = cfg
            .rpo()
            .iter()
            .map(|b| b.index() + 1)
            .max()
            .unwrap_or(1)
            .max(cfg.entry().index() + 1);
        let mut rpo_index = vec![usize::MAX; n_blocks];
        for (i, b) in cfg.rpo().iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n_blocks];
        idom[cfg.entry().index()] = Some(cfg.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// The immediate dominator of `b` (the entry dominates itself).
    /// `None` for unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }

    /// The reverse-post-order index of `b`, if reachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index
            .get(b.index())
            .copied()
            .filter(|&i| i != usize::MAX)
    }
}

// Cooper–Harvey–Kennedy invariant: both walks only visit blocks whose
// idom is already set (processing is in RPO), so the `expect`s cannot
// fire on any input that reached this point.
#[cfg_attr(not(test), allow(clippy::expect_used))]
fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("intersect: unprocessed block");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("intersect: unprocessed block");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::CmpPred;
    use crate::types::Width;

    #[test]
    fn loop_head_dominates_body_and_exit() {
        // entry -> head; head -> body|exit; body -> head
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let zero = fb.const_int(0, Width::W64);
        let c = fb.cmp(CmpPred::Gt, p, zero);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(p));
        mb.finish_function(fb);
        let m = mb.finish();
        let cfg = Cfg::new(m.function_by_name("f").unwrap());
        let dom = Dominators::new(&cfg);
        assert!(dom.dominates(head, body));
        assert!(dom.dominates(head, exit));
        assert!(!dom.dominates(body, exit));
        assert_eq!(dom.idom(head), Some(BlockId(0)));
        assert!(dom.rpo_index(head).is_some());
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[], None);
        let dead = fb.new_block();
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        mb.finish_function(fb);
        let m = mb.finish();
        let cfg = Cfg::new(m.function_by_name("f").unwrap());
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(dead), None);
        assert_eq!(dom.rpo_index(dead), None);
    }

    #[test]
    fn diamond_dominators() {
        // bb0 -> bb1, bb2; bb1,bb2 -> bb3
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let zero = fb.const_int(0, Width::W64);
        let c = fb.cmp(CmpPred::Eq, p, zero);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(Some(p));
        mb.finish_function(fb);
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap();
        let cfg = Cfg::new(f);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        // Join point is dominated by the entry, not by either branch arm.
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));
    }
}
