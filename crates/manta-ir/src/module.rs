//! Modules and globals.

use std::collections::HashMap;

use crate::externs::ExternDecl;
use crate::function::Function;
use crate::ids::{ExternId, FuncId, GlobalId};

/// A module-level global variable (a `.data`/`.bss` region).
#[derive(Clone, PartialEq, Debug)]
pub struct Global {
    /// This global's id.
    pub id: GlobalId,
    /// Symbol name (synthetic; real binaries are stripped).
    pub name: String,
    /// Size of the region in bytes.
    pub size: u64,
}

/// A whole lifted binary: functions, globals and external declarations.
#[derive(Clone, Debug)]
pub struct Module {
    name: String,
    functions: Vec<Function>,
    globals: Vec<Global>,
    externs: Vec<ExternDecl>,
    extern_by_name: HashMap<String, ExternId>,
}

impl Module {
    /// Creates an empty module. Library users should prefer
    /// [`crate::ModuleBuilder`].
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            externs: Vec::new(),
            extern_by_name: HashMap::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function with id `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a function of this module.
    pub fn function(&self, f: FuncId) -> &Function {
        &self.functions[f.index()]
    }

    /// Mutable access to the function with id `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a function of this module.
    pub fn function_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.functions[f.index()]
    }

    /// Iterates over all functions in id order.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter()
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// The global with id `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a global of this module.
    pub fn global(&self, g: GlobalId) -> &Global {
        &self.globals[g.index()]
    }

    /// Iterates over all globals.
    pub fn globals(&self) -> impl Iterator<Item = &Global> {
        self.globals.iter()
    }

    /// The external declaration with id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an external of this module.
    pub fn extern_decl(&self, e: ExternId) -> &ExternDecl {
        &self.externs[e.index()]
    }

    /// Iterates over all external declarations.
    pub fn externs(&self) -> impl Iterator<Item = &ExternDecl> {
        self.externs.iter()
    }

    /// Looks up an external declaration by name.
    pub fn extern_by_name(&self, name: &str) -> Option<ExternId> {
        self.extern_by_name.get(name).copied()
    }

    /// All functions whose address is taken (the indirect-call target
    /// candidate set of §5.1).
    pub fn address_taken_functions(&self) -> Vec<FuncId> {
        self.functions
            .iter()
            .filter(|f| f.is_address_taken())
            .map(|f| f.id())
            .collect()
    }

    /// Total instruction count across functions (a proxy for binary size;
    /// the evaluation reports KLoC-like scale from this).
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }

    // ---- mutation, used by the builder / lifter ----

    pub(crate) fn push_function(&mut self, f: Function) -> FuncId {
        let id = f.id();
        debug_assert_eq!(id.index(), self.functions.len());
        self.functions.push(f);
        id
    }

    pub(crate) fn push_global(&mut self, name: String, size: u64) -> GlobalId {
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(Global { id, name, size });
        id
    }

    pub(crate) fn push_extern(&mut self, decl: ExternDecl) -> ExternId {
        let id = decl.id;
        debug_assert_eq!(id.index(), self.externs.len());
        self.extern_by_name.insert(decl.name.clone(), id);
        self.externs.push(decl);
        id
    }

    /// Declares a global by name (low-level API for lifters; builders
    /// should use [`crate::ModuleBuilder::global`]).
    pub fn push_global_named(&mut self, name: &str, size: u64) -> GlobalId {
        self.push_global(name.to_string(), size)
    }

    /// Installs a fully-built function whose id must equal the next slot
    /// (low-level API for lifters and parsers).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the function's id is out of sequence.
    pub fn push_function_raw(&mut self, f: Function) -> FuncId {
        self.push_function(f)
    }

    /// Declares an external function via [`crate::ExternRegistry`]
    /// (low-level API for lifters and parsers). Existing declarations are
    /// reused by name.
    pub fn declare_extern(
        &mut self,
        name: &str,
        fallback_params: &[crate::types::Width],
        fallback_ret: Option<crate::types::Width>,
    ) -> ExternId {
        if let Some(e) = self.extern_by_name(name) {
            return e;
        }
        let id = self.next_extern_id();
        self.push_extern(crate::externs::ExternRegistry::declare(
            id,
            name,
            fallback_params,
            fallback_ret,
        ))
    }

    /// Next function id to be assigned.
    pub(crate) fn next_func_id(&self) -> FuncId {
        FuncId::from_index(self.functions.len())
    }

    /// Next extern id to be assigned.
    pub(crate) fn next_extern_id(&self) -> ExternId {
        ExternId::from_index(self.externs.len())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ModuleBuilder;
    use crate::types::Width;

    #[test]
    fn module_lookup() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, fb) = mb.function("alpha", &[Width::W64], None);
        mb.finish_function(fb);
        let g = mb.global("tbl", 64);
        let e = mb.extern_fn("malloc", &[], None);
        let m = mb.finish();
        assert_eq!(m.name(), "m");
        assert_eq!(m.function(fid).name(), "alpha");
        assert!(m.function_by_name("alpha").is_some());
        assert!(m.function_by_name("beta").is_none());
        assert_eq!(m.global(g).size, 64);
        assert_eq!(m.extern_by_name("malloc"), Some(e));
        assert_eq!(m.extern_by_name("free"), None);
    }

    #[test]
    fn address_taken_set() {
        let mut mb = ModuleBuilder::new("m");
        let (f1, fb1) = mb.function("a", &[], None);
        mb.finish_function(fb1);
        let (_f2, fb2) = mb.function("b", &[], None);
        mb.finish_function(fb2);
        let mut m = mb.finish();
        assert!(m.address_taken_functions().is_empty());
        m.function_mut(f1).set_address_taken(true);
        assert_eq!(m.address_taken_functions(), vec![f1]);
    }
}
