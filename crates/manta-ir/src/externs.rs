//! External function declarations.
//!
//! Calls to *type-known* external functions (e.g. `malloc`) are the main
//! type-revealing instructions of Table 1 rule ④. Each declaration carries
//! an optional known [`FuncSig`]; unmodeled externals (`sig == None`)
//! provide no hints, which is one of the paper's documented sources of
//! recall loss (§6.4).
//!
//! Declarations also carry an [`ExternEffect`] consumed by the points-to
//! analysis (heap allocation) and the bug checkers (taint sources, command
//! sinks, frees, …).

use crate::ids::ExternId;
use crate::types::{FuncSig, Type, Width};

/// Behavioural classification of an external function, consumed by the
/// points-to analysis and the §5.3 bug checkers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExternEffect {
    /// Returns a fresh heap object (`malloc`, `calloc`).
    AllocHeap,
    /// Frees its first pointer argument (`free`) — UAF source.
    FreeHeap,
    /// Reads attacker-controlled input into/through its return value
    /// (`nvram_get`, `getenv`, `recv`-style) — taint source for CMI/BOF.
    TaintSource,
    /// Executes its first argument as a shell command (`system`) — CMI sink.
    CommandSink,
    /// Copies a string from arg1 into arg0 without bounds (`strcpy`) — BOF
    /// sink when arg0 is a fixed-size buffer and arg1 is tainted.
    StrCopy,
    /// Parses a string to an integer (`atoi`) — sanitizes taint for CMI.
    IntParse,
    /// Formats/prints; reveals nothing about memory.
    Format,
    /// Pure helper with no memory effect.
    Pure,
    /// Terminates the program (`exit`).
    Exit,
    /// Unmodeled: the analysis knows nothing about it.
    Unknown,
}

/// An external function declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct ExternDecl {
    /// This declaration's id.
    pub id: ExternId,
    /// Symbol name.
    pub name: String,
    /// Machine widths of the parameters (always recoverable from the ABI).
    pub param_widths: Vec<Width>,
    /// Machine width of the return value, or `None` for void.
    pub ret_width: Option<Width>,
    /// Known source signature, if this external is modeled (rule ④ hints).
    pub sig: Option<FuncSig>,
    /// Behavioural effect.
    pub effect: ExternEffect,
}

/// The registry of well-known external functions shared by the lifter, the
/// workload generator and the analyses.
#[derive(Clone, Debug, Default)]
pub struct ExternRegistry;

impl ExternRegistry {
    /// Builds the declaration for a well-known name, or an [`Unknown`]
    /// declaration with the given widths for anything unrecognized.
    ///
    /// [`Unknown`]: ExternEffect::Unknown
    pub fn declare(
        id: ExternId,
        name: &str,
        fallback_params: &[Width],
        fallback_ret: Option<Width>,
    ) -> ExternDecl {
        let w64 = Width::W64;
        let i64t = Type::Int(Width::W64);
        let i32t = Type::Int(Width::W32);
        let cstr = Type::byte_ptr;
        let (param_widths, ret_width, sig, effect): (
            Vec<Width>,
            Option<Width>,
            Option<FuncSig>,
            ExternEffect,
        ) = match name {
            "malloc" => (
                vec![w64],
                Some(w64),
                Some(FuncSig::new(vec![i64t.clone()], cstr())),
                ExternEffect::AllocHeap,
            ),
            "calloc" => (
                vec![w64, w64],
                Some(w64),
                Some(FuncSig::new(vec![i64t.clone(), i64t.clone()], cstr())),
                ExternEffect::AllocHeap,
            ),
            "free" => (
                vec![w64],
                None,
                Some(FuncSig::new(vec![cstr()], Type::Bottom)),
                ExternEffect::FreeHeap,
            ),
            "printf_s" => (
                // `printf("%s", p)` lifted with the pointer vararg made
                // explicit: reveals arg1 : ptr(i8).
                vec![w64, w64],
                Some(Width::W32),
                Some(FuncSig::new(vec![cstr(), cstr()], i32t.clone())),
                ExternEffect::Format,
            ),
            "printf_d" => (
                // `printf("%ld", n)`: reveals arg1 : int64.
                vec![w64, w64],
                Some(Width::W32),
                Some(FuncSig::new(vec![cstr(), i64t.clone()], i32t.clone())),
                ExternEffect::Format,
            ),
            "system" => (
                vec![w64],
                Some(Width::W32),
                Some(FuncSig::new(vec![cstr()], i32t.clone())),
                ExternEffect::CommandSink,
            ),
            "strcpy" => (
                vec![w64, w64],
                Some(w64),
                Some(FuncSig::new(vec![cstr(), cstr()], cstr())),
                ExternEffect::StrCopy,
            ),
            "strlen" => (
                vec![w64],
                Some(w64),
                Some(FuncSig::new(vec![cstr()], i64t.clone())),
                ExternEffect::Pure,
            ),
            "atoi" => (
                vec![w64],
                Some(Width::W32),
                Some(FuncSig::new(vec![cstr()], i32t.clone())),
                ExternEffect::IntParse,
            ),
            "atol" => (
                vec![w64],
                Some(w64),
                Some(FuncSig::new(vec![cstr()], i64t.clone())),
                ExternEffect::IntParse,
            ),
            "nvram_get" | "getenv" => (
                vec![w64],
                Some(w64),
                Some(FuncSig::new(vec![cstr()], cstr())),
                ExternEffect::TaintSource,
            ),
            "recv_str" => (
                vec![],
                Some(w64),
                Some(FuncSig::new(vec![], cstr())),
                ExternEffect::TaintSource,
            ),
            "exit" => (
                vec![w64],
                None,
                Some(FuncSig::new(vec![i32t.clone()], Type::Bottom)),
                ExternEffect::Exit,
            ),
            "fabs" => (
                vec![w64],
                Some(w64),
                Some(FuncSig::new(vec![Type::Double], Type::Double)),
                ExternEffect::Pure,
            ),
            "fabsf" => (
                vec![Width::W32],
                Some(Width::W32),
                Some(FuncSig::new(vec![Type::Float], Type::Float)),
                ExternEffect::Pure,
            ),
            _ => (
                fallback_params.to_vec(),
                fallback_ret,
                None,
                ExternEffect::Unknown,
            ),
        };
        ExternDecl {
            id,
            name: name.to_string(),
            param_widths,
            ret_width,
            sig,
            effect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_is_modeled_alloc() {
        let d = ExternRegistry::declare(ExternId(0), "malloc", &[], None);
        assert_eq!(d.effect, ExternEffect::AllocHeap);
        let sig = d.sig.expect("malloc must be modeled");
        assert!(sig.ret.is_pointer());
        assert_eq!(sig.params, vec![Type::Int(Width::W64)]);
    }

    #[test]
    fn unknown_extern_has_no_signature() {
        let d =
            ExternRegistry::declare(ExternId(1), "vendor_blob", &[Width::W64], Some(Width::W64));
        assert_eq!(d.effect, ExternEffect::Unknown);
        assert!(d.sig.is_none());
        assert_eq!(d.param_widths, vec![Width::W64]);
    }

    #[test]
    fn taint_and_sink_classification() {
        assert_eq!(
            ExternRegistry::declare(ExternId(0), "nvram_get", &[], None).effect,
            ExternEffect::TaintSource
        );
        assert_eq!(
            ExternRegistry::declare(ExternId(0), "system", &[], None).effect,
            ExternEffect::CommandSink
        );
        assert_eq!(
            ExternRegistry::declare(ExternId(0), "strcpy", &[], None).effect,
            ExternEffect::StrCopy
        );
        assert_eq!(
            ExternRegistry::declare(ExternId(0), "atoi", &[], None).effect,
            ExternEffect::IntParse
        );
    }

    #[test]
    fn printf_variants_reveal_different_arg_types() {
        let ps = ExternRegistry::declare(ExternId(0), "printf_s", &[], None);
        let pd = ExternRegistry::declare(ExternId(0), "printf_d", &[], None);
        assert!(ps.sig.unwrap().params[1].is_pointer());
        assert!(pd.sig.unwrap().params[1].is_numeric());
    }
}
