//! Structural IR verification.
//!
//! [`verify_module`] checks the invariants every analysis in the workspace
//! relies on: ids are in range, each instruction-defined value points back
//! at its unique defining instruction, phi incomings name actual
//! predecessors, and call operands match callee arity where known.

use std::fmt;

use crate::function::{Function, Terminator};
use crate::ids::{BlockId, FuncId, ValueId};
use crate::inst::{Callee, InstKind};
use crate::module::Module;
use crate::value::ValueKind;

/// A verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// The offending function.
    pub func: FuncId,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed in {}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function of `module`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in module.functions() {
        verify_function(module, func)?;
    }
    Ok(())
}

/// Verifies a single function.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_function(module: &Module, func: &Function) -> Result<(), VerifyError> {
    let err = |message: String| VerifyError {
        func: func.id(),
        message,
    };
    let check_value = |v: ValueId| -> Result<(), VerifyError> {
        if v.index() >= func.value_count() {
            return Err(err(format!("value {v} out of range")));
        }
        Ok(())
    };
    let check_block = |b: BlockId| -> Result<(), VerifyError> {
        if b.index() >= func.block_count() {
            return Err(err(format!("block {b} out of range")));
        }
        Ok(())
    };

    // Entry exists.
    check_block(func.entry())?;

    // Each instruction-defined value refers back to a unique def site.
    let mut def_counts = vec![0usize; func.value_count()];
    for inst in func.insts() {
        if let Some(d) = inst.kind.def() {
            check_value(d)?;
            def_counts[d.index()] += 1;
            match func.value(d).kind {
                ValueKind::Inst { def } if def == inst.id => {}
                other => {
                    return Err(err(format!(
                        "value {d} defined by {} but its kind is {other:?}",
                        inst.id
                    )))
                }
            }
        }
        for u in inst.kind.uses() {
            check_value(u)?;
        }
    }
    for (i, &count) in def_counts.iter().enumerate() {
        let v = ValueId::from_index(i);
        match func.value(v).kind {
            ValueKind::Inst { def } => {
                if count != 1 {
                    return Err(err(format!("inst value {v} has {count} defs")));
                }
                if def.index() >= func.inst_count() {
                    return Err(err(format!("value {v} claims out-of-range def {def}")));
                }
            }
            _ => {
                if count != 0 {
                    return Err(err(format!(
                        "non-inst value {v} is defined by an instruction"
                    )));
                }
            }
        }
    }

    // Terminator targets must be validated before building the CFG:
    // Cfg::new indexes successor blocks and would panic on an
    // out-of-range target (reachable through hand-built or lifted
    // modules that bypass the parser's pass-1 checks).
    for block in func.blocks() {
        for s in block.term.successors() {
            check_block(s)?;
        }
    }

    // Blocks own their instructions; terminator targets exist.
    let cfg = crate::cfg::Cfg::new(func);
    for block in func.blocks() {
        for &i in &block.insts {
            if i.index() >= func.inst_count() {
                return Err(err(format!(
                    "block {} lists out-of-range inst {i}",
                    block.id
                )));
            }
            let inst = func.inst(i);
            if inst.block != block.id {
                return Err(err(format!(
                    "inst {i} listed in block {} but tagged {}",
                    block.id, inst.block
                )));
            }
        }
        for u in block.term.uses() {
            check_value(u)?;
        }
        if let Terminator::Ret(Some(_)) = block.term {
            if func.ret_width().is_none() {
                return Err(err(format!(
                    "block {} returns a value from a void function",
                    block.id
                )));
            }
        }
    }

    // Phi incomings come from actual predecessors.
    for inst in func.insts() {
        if let InstKind::Phi { incomings, dst } = &inst.kind {
            if incomings.is_empty() {
                return Err(err(format!("phi {dst} has no incomings")));
            }
            if cfg.is_reachable(inst.block) {
                for (pred, _) in incomings {
                    check_block(*pred)?;
                    if !cfg.preds(inst.block).contains(pred) {
                        return Err(err(format!(
                            "phi {dst} names non-predecessor {pred} of block {}",
                            inst.block
                        )));
                    }
                }
            }
        }
        if let InstKind::Call { callee, args, dst } = &inst.kind {
            match callee {
                Callee::Direct(f) => {
                    if f.index() >= module.function_count() {
                        return Err(err(format!("call to out-of-range function {f}")));
                    }
                    let target = module.function(*f);
                    if args.len() != target.params().len() {
                        return Err(err(format!(
                            "call to {} passes {} args, expects {}",
                            target.name(),
                            args.len(),
                            target.params().len()
                        )));
                    }
                    if dst.is_some() && target.ret_width().is_none() {
                        return Err(err(format!(
                            "call to void function {} expects a result",
                            target.name()
                        )));
                    }
                }
                Callee::Extern(e) => {
                    if e.index() >= module.externs().count() {
                        return Err(err(format!("call to out-of-range extern {e}")));
                    }
                }
                Callee::Indirect(_) => {}
            }
        }
    }
    Ok(())
}

/// Panics with the verifier message if `module` is malformed. Convenient in
/// tests and generators.
///
/// # Panics
///
/// Panics when verification fails.
pub fn assert_valid(module: &Module) {
    if let Err(e) = verify_module(module) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Width;

    #[test]
    fn valid_module_passes() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let c = fb.copy(p);
        fb.ret(Some(c));
        mb.finish_function(fb);
        verify_module(&mb.finish()).unwrap();
    }

    #[test]
    fn rejects_bad_arity_direct_call() {
        let mut mb = ModuleBuilder::new("m");
        let (callee, mut cb) = mb.function("callee", &[Width::W64], None);
        cb.ret(None);
        mb.finish_function(cb);
        let (_, mut fb) = mb.function("caller", &[], None);
        fb.call(callee, &[], None); // missing the argument
        fb.ret(None);
        mb.finish_function(fb);
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.message.contains("passes 0 args"), "{e}");
    }

    #[test]
    fn rejects_ret_value_from_void_function() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64], None);
        let p = fb.param(0);
        fb.ret(Some(p));
        mb.finish_function(fb);
        assert!(verify_module(&mb.finish()).is_err());
    }

    #[test]
    fn rejects_out_of_range_successor_without_panicking() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[], None);
        fb.br(crate::ids::BlockId(99));
        mb.finish_function(fb);
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_phi_from_non_predecessor() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let other = fb.new_block();
        let next = fb.new_block();
        fb.br(next);
        fb.switch_to(next);
        // `other` is not a predecessor of `next`.
        let ph = fb.phi(&[(other, p)], Width::W64);
        fb.ret(Some(ph));
        mb.finish_function(fb);
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.message.contains("non-predecessor"), "{e}");
    }
}
