//! Strongly-typed index newtypes for IR entities.
//!
//! All IR containers are arena-style `Vec`s indexed by these ids. Ids are
//! plain `u32` indices wrapped in newtypes so that, e.g., a [`BlockId`] can
//! never be used where a [`ValueId`] is expected (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            #[cfg_attr(not(test), allow(clippy::expect_used))] // documented panic
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a function within a [`crate::Module`].
    FuncId, "f"
);
define_id!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId, "bb"
);
define_id!(
    /// Identifies an SSA value within a [`crate::Function`].
    ///
    /// Values are function-local: two functions may both have a `v0`.
    ValueId, "v"
);
define_id!(
    /// Identifies an instruction within a [`crate::Function`].
    InstId, "i"
);
define_id!(
    /// Identifies a global variable within a [`crate::Module`].
    GlobalId, "g"
);
define_id!(
    /// Identifies an external function declaration within a [`crate::Module`].
    ExternId, "e"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let v = ValueId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, ValueId(42));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ValueId(3).to_string(), "v3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(FuncId(7).to_string(), "f7");
        assert_eq!(format!("{:?}", InstId(9)), "i9");
        assert_eq!(GlobalId(1).to_string(), "g1");
        assert_eq!(ExternId(2).to_string(), "e2");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(ValueId(1) < ValueId(2));
        assert!(BlockId(0) < BlockId(10));
    }
}
