//! # manta-ir
//!
//! An LLVM-like typed SSA intermediate representation used as the analysis
//! substrate of the Manta reproduction (ASPLOS 2024, *Manta: Hybrid-Sensitive
//! Type Inference Toward Type-Assisted Bug Detection for Stripped Binaries*).
//!
//! The paper lifts stripped binaries to LLVM IR with RetDec and performs all
//! analyses on the lifted IR. This crate plays the role of that IR: binary
//! registers become SSA values ([`Value`]), the machine instruction set maps
//! onto a small instruction vocabulary ([`InstKind`]), and stack/global/heap
//! memory is later partitioned into abstract objects by `manta-analysis`.
//!
//! Crucially, values in a [`Module`] carry only a machine *width* — never a
//! source type — mirroring what survives compilation to a stripped binary.
//! Recovering the types is the job of the `manta` crate.
//!
//! ## Example
//!
//! ```
//! use manta_ir::{ModuleBuilder, Width, BinOp};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let (fid, mut fb) = mb.function("sum", &[Width::W64, Width::W64], Some(Width::W64));
//! let a = fb.param(0);
//! let b = fb.param(1);
//! let s = fb.binop(BinOp::Add, a, b, Width::W64);
//! fb.ret(Some(s));
//! mb.finish_function(fb);
//! let module = mb.finish();
//! assert_eq!(module.function(fid).name(), "sum");
//! manta_ir::verify::verify_module(&module).unwrap();
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod builder;
pub mod cfg;
pub mod dom;
mod externs;
mod frontend;
mod function;
mod ids;
mod inst;
mod module;
pub mod parser;
pub mod printer;
pub mod types;
mod value;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder, SsaBuilder};
pub use externs::{ExternDecl, ExternEffect, ExternRegistry};
pub use frontend::{Frontend, FrontendError};
pub use function::{Block, Function, Terminator};
pub use ids::{BlockId, ExternId, FuncId, GlobalId, InstId, ValueId};
pub use inst::{BinOp, Callee, CmpPred, InstData, InstKind};
pub use module::{Global, Module};
pub use types::{FuncSig, Type, Width};
pub use value::{ConstKind, Value, ValueKind};
