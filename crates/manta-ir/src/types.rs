//! The Manta type grammar and lattice (paper Figure 6).
//!
//! ```text
//! Type(T)        := T_prim | T_array | T_object | T_func
//! Primary        := T_reg<size> | ⊤ | ⊥
//! Register       := T_num<size> | ptr(T)
//! Numeric<size>  := int<size> | float | double
//! Array          := T × <length>
//! Object         := { <offset>_i : T_i }
//! Function       := { arg_i : T_i } -> T
//! <size>         := {1, 8, 16, 32, 64}
//! ```
//!
//! The types form a lattice with `⊤` (any value) at the top and `⊥` (no
//! value / untyped) at the bottom, ordered by subtyping `<:`:
//!
//! * `int<w>  <: num<w> <: reg<w> <: ⊤`
//! * `float   <: num<32>`, `double <: num<64>`
//! * `ptr(t)  <: reg<64>` and `ptr` is covariant in its pointee
//! * objects use *width subtyping* — an object with more fields is a
//!   subtype of one with fewer fields
//! * functions are contravariant in parameters and covariant in return
//!
//! [`Type::join`] computes least upper bounds (used to maintain the
//! upper-bound map `F↑`) and [`Type::meet`] greatest lower bounds (for the
//! lower-bound map `F↓`), exactly as §4.1 of the paper prescribes.

use std::fmt;
use std::sync::Arc;

/// Maximum structural depth considered by [`Type::join`] / [`Type::meet`] /
/// [`Type::is_subtype_of`] before conservatively widening. Recursive data
/// structures in binaries (linked lists) otherwise produce unbounded types.
pub const MAX_TYPE_DEPTH: usize = 12;

/// Machine value widths supported by the type system (paper: `<size>`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Width {
    /// 1-bit (comparison results / flags).
    W1,
    /// 8-bit.
    W8,
    /// 16-bit.
    W16,
    /// 32-bit.
    W32,
    /// 64-bit (also the width of pointers on SB-ISA).
    W64,
}

impl Width {
    /// All widths, smallest first.
    pub const ALL: [Width; 5] = [Width::W1, Width::W8, Width::W16, Width::W32, Width::W64];

    /// The width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W1 => 1,
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// The width in bytes (W1 rounds up to one byte).
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 | Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Parses a width from its bit count.
    pub fn from_bits(bits: u32) -> Option<Width> {
        Some(match bits {
            1 => Width::W1,
            8 => Width::W8,
            16 => Width::W16,
            32 => Width::W32,
            64 => Width::W64,
            _ => return None,
        })
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// A function type: parameter types and a return type (paper `T_func`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FuncSig {
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Return type; `Type::Bottom` conventionally encodes "no return value".
    pub ret: Box<Type>,
}

impl FuncSig {
    /// Creates a signature from parameter types and a return type.
    pub fn new(params: Vec<Type>, ret: Type) -> Self {
        FuncSig {
            params,
            ret: Box::new(ret),
        }
    }
}

/// A type in the Manta lattice (paper Figure 6). See the [module docs](self)
/// for the subtyping order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// `⊤` — any value; the top of the lattice.
    Top,
    /// `⊥` — no information; the bottom of the lattice.
    Bottom,
    /// `T_reg<w>` — a register value of width `w`, numeric or pointer.
    Reg(Width),
    /// `T_num<w>` — a numeric value of width `w` (integer or floating).
    Num(Width),
    /// `int<w>` — an integer of width `w`.
    Int(Width),
    /// 32-bit IEEE float.
    Float,
    /// 64-bit IEEE double.
    Double,
    /// `ptr(T)` — a pointer to a value of type `T`.
    Ptr(Arc<Type>),
    /// `T × n` — an array of `n` elements of type `T`.
    Array(Arc<Type>, u64),
    /// `{ offset_i : T_i }` — an object (struct) with typed fields at byte
    /// offsets. Fields are kept sorted by offset and deduplicated.
    Object(Vec<(u64, Type)>),
    /// `{ arg_i : T_i } -> T` — a function.
    Func(FuncSig),
}

impl Type {
    /// Convenience constructor for `ptr(T)`.
    pub fn ptr(pointee: Type) -> Type {
        Type::Ptr(Arc::new(pointee))
    }

    /// Convenience constructor for `T × n`.
    pub fn array(elem: Type, len: u64) -> Type {
        Type::Array(Arc::new(elem), len)
    }

    /// Convenience constructor for an object; sorts fields by offset and
    /// merges duplicate offsets by meeting their types (both claims must
    /// hold of the same field, so the result is the greatest lower
    /// bound; contradictory claims meet to `bottom`).
    pub fn object(mut fields: Vec<(u64, Type)>) -> Type {
        fields.sort_by_key(|(off, _)| *off);
        let mut merged: Vec<(u64, Type)> = Vec::with_capacity(fields.len());
        for (off, t) in fields {
            match merged.last_mut() {
                Some((prev, pt)) if *prev == off => *pt = pt.meet(&t),
                _ => merged.push((off, t)),
            }
        }
        Type::Object(merged)
    }

    /// A pointer to `int<8>` — the conventional C string / byte pointer.
    pub fn byte_ptr() -> Type {
        Type::ptr(Type::Int(Width::W8))
    }

    /// True for `ptr(_)`.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// True for `int`, `float`, `double`, or the abstract `num<w>`.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Type::Int(_) | Type::Float | Type::Double | Type::Num(_)
        )
    }

    /// The register width this type occupies, if it is a register type.
    pub fn width(&self) -> Option<Width> {
        match self {
            Type::Int(w) | Type::Num(w) | Type::Reg(w) => Some(*w),
            Type::Float => Some(Width::W32),
            Type::Double => Some(Width::W64),
            Type::Ptr(_) => Some(Width::W64),
            _ => None,
        }
    }

    /// True when the type is a *singleton* — precisely resolved, i.e. not
    /// `⊤`, `⊥`, or an abstract register/numeric class. Abstractness is
    /// checked recursively through pointers, arrays, objects and functions.
    pub fn is_concrete(&self) -> bool {
        self.is_concrete_at(MAX_TYPE_DEPTH)
    }

    fn is_concrete_at(&self, depth: usize) -> bool {
        if depth == 0 {
            return false;
        }
        match self {
            Type::Top | Type::Bottom | Type::Reg(_) | Type::Num(_) => false,
            Type::Int(_) | Type::Float | Type::Double => true,
            Type::Ptr(t) => t.is_concrete_at(depth - 1),
            Type::Array(t, _) => t.is_concrete_at(depth - 1),
            Type::Object(fields) => fields.iter().all(|(_, t)| t.is_concrete_at(depth - 1)),
            Type::Func(sig) => {
                sig.params.iter().all(|t| t.is_concrete_at(depth - 1))
                    && sig.ret.is_concrete_at(depth - 1)
            }
        }
    }

    /// Structural depth of the type (used to keep lattice operations bounded).
    pub fn depth(&self) -> usize {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => 1 + t.depth(),
            Type::Object(fields) => 1 + fields.iter().map(|(_, t)| t.depth()).max().unwrap_or(0),
            Type::Func(sig) => {
                1 + sig
                    .params
                    .iter()
                    .map(Type::depth)
                    .chain(std::iter::once(sig.ret.depth()))
                    .max()
                    .unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// The subtyping relation `self <: other` (paper notation `other >: self`).
    pub fn is_subtype_of(&self, other: &Type) -> bool {
        self.subtype_at(other, MAX_TYPE_DEPTH)
    }

    fn subtype_at(&self, other: &Type, depth: usize) -> bool {
        if depth == 0 {
            // Conservative: beyond the depth budget only ⊤/⊥ relations hold.
            return matches!(self, Type::Bottom) || matches!(other, Type::Top);
        }
        match (self, other) {
            (Type::Bottom, _) | (_, Type::Top) => true,
            (Type::Top, _) | (_, Type::Bottom) => false,
            (a, b) if a == b => true,
            // int<w> <: num<w> <: reg<w>
            (Type::Int(w), Type::Num(w2)) => w == w2,
            (Type::Float, Type::Num(w)) => *w == Width::W32,
            (Type::Double, Type::Num(w)) => *w == Width::W64,
            (Type::Int(w), Type::Reg(w2)) => w == w2,
            (Type::Float, Type::Reg(w)) => *w == Width::W32,
            (Type::Double, Type::Reg(w)) => *w == Width::W64,
            (Type::Num(w), Type::Reg(w2)) => w == w2,
            // ptr(t) <: reg<64>, covariant in pointee
            (Type::Ptr(_), Type::Reg(w)) => *w == Width::W64,
            (Type::Ptr(a), Type::Ptr(b)) => a.subtype_at(b, depth - 1),
            (Type::Array(a, n), Type::Array(b, m)) => n == m && a.subtype_at(b, depth - 1),
            // Width subtyping on objects: `self` must provide every field of
            // `other` at a subtype.
            (Type::Object(fa), Type::Object(fb)) => fb.iter().all(|(off, tb)| {
                fa.iter()
                    .any(|(ofa, ta)| ofa == off && ta.subtype_at(tb, depth - 1))
            }),
            (Type::Func(a), Type::Func(b)) => {
                a.params.len() == b.params.len()
                    && a.ret.subtype_at(&b.ret, depth - 1)
                    && a.params
                        .iter()
                        .zip(&b.params)
                        .all(|(pa, pb)| pb.subtype_at(pa, depth - 1))
            }
            _ => false,
        }
    }

    /// Least upper bound on the lattice (`∨`, used to update `F↑`).
    pub fn join(&self, other: &Type) -> Type {
        self.join_at(other, MAX_TYPE_DEPTH)
    }

    fn join_at(&self, other: &Type, depth: usize) -> Type {
        if depth == 0 {
            return Type::Top;
        }
        if self == other {
            return self.clone();
        }
        match (self, other) {
            (Type::Bottom, t) | (t, Type::Bottom) => t.clone(),
            (Type::Top, _) | (_, Type::Top) => Type::Top,
            (a, b) if a.subtype_at(b, depth) => b.clone(),
            (a, b) if b.subtype_at(a, depth) => a.clone(),
            // Distinct numerics of equal width meet at num<w>.
            (a, b) if a.is_numeric() && b.is_numeric() => match (a.width(), b.width()) {
                (Some(w1), Some(w2)) if w1 == w2 => Type::Num(w1),
                _ => Type::Top,
            },
            // Pointer joins pointer: covariant join of pointees.
            (Type::Ptr(a), Type::Ptr(b)) => Type::Ptr(Arc::new(a.join_at(b, depth - 1))),
            // Pointer joins a 64-bit numeric at reg<64>.
            (Type::Ptr(_), b) if b.is_numeric() && b.width() == Some(Width::W64) => {
                Type::Reg(Width::W64)
            }
            (a, Type::Ptr(_)) if a.is_numeric() && a.width() == Some(Width::W64) => {
                Type::Reg(Width::W64)
            }
            (Type::Ptr(_), Type::Reg(w)) | (Type::Reg(w), Type::Ptr(_)) if *w == Width::W64 => {
                Type::Reg(Width::W64)
            }
            (Type::Num(w1), Type::Reg(w2)) | (Type::Reg(w1), Type::Num(w2)) if w1 == w2 => {
                Type::Reg(*w1)
            }
            (Type::Array(a, n), Type::Array(b, m)) if n == m => {
                Type::Array(Arc::new(a.join_at(b, depth - 1)), *n)
            }
            // Object join: width subtyping ⇒ LUB keeps the common fields.
            (Type::Object(fa), Type::Object(fb)) => {
                let mut fields = Vec::new();
                for (off, ta) in fa {
                    if let Some((_, tb)) = fb.iter().find(|(ob, _)| ob == off) {
                        fields.push((*off, ta.join_at(tb, depth - 1)));
                    }
                }
                Type::Object(fields)
            }
            (Type::Func(a), Type::Func(b)) if a.params.len() == b.params.len() => {
                let params = a
                    .params
                    .iter()
                    .zip(&b.params)
                    .map(|(pa, pb)| pa.meet_at(pb, depth - 1))
                    .collect();
                Type::Func(FuncSig::new(params, a.ret.join_at(&b.ret, depth - 1)))
            }
            _ => Type::Top,
        }
    }

    /// Greatest lower bound on the lattice (`∧`, used to update `F↓`).
    pub fn meet(&self, other: &Type) -> Type {
        self.meet_at(other, MAX_TYPE_DEPTH)
    }

    fn meet_at(&self, other: &Type, depth: usize) -> Type {
        if depth == 0 {
            return Type::Bottom;
        }
        if self == other {
            return self.clone();
        }
        match (self, other) {
            (Type::Top, t) | (t, Type::Top) => t.clone(),
            (Type::Bottom, _) | (_, Type::Bottom) => Type::Bottom,
            (a, b) if a.subtype_at(b, depth) => a.clone(),
            (a, b) if b.subtype_at(a, depth) => b.clone(),
            (Type::Ptr(a), Type::Ptr(b)) => Type::Ptr(Arc::new(a.meet_at(b, depth - 1))),
            // reg<64> ∧ ptr-shaped... handled by subtype arms above; the
            // remaining same-kind structural meets:
            (Type::Array(a, n), Type::Array(b, m)) if n == m => {
                Type::Array(Arc::new(a.meet_at(b, depth - 1)), *n)
            }
            // Object meet: union of fields, conflicting offsets meet.
            (Type::Object(fa), Type::Object(fb)) => {
                let mut fields: Vec<(u64, Type)> = fa.clone();
                for (off, tb) in fb {
                    if let Some(slot) = fields.iter_mut().find(|(ofa, _)| ofa == off) {
                        slot.1 = slot.1.meet_at(tb, depth - 1);
                    } else {
                        fields.push((*off, tb.clone()));
                    }
                }
                fields.sort_by_key(|(off, _)| *off);
                Type::Object(fields)
            }
            (Type::Func(a), Type::Func(b)) if a.params.len() == b.params.len() => {
                let params = a
                    .params
                    .iter()
                    .zip(&b.params)
                    .map(|(pa, pb)| pa.join_at(pb, depth - 1))
                    .collect();
                Type::Func(FuncSig::new(params, a.ret.meet_at(&b.ret, depth - 1)))
            }
            _ => Type::Bottom,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Top => write!(f, "top"),
            Type::Bottom => write!(f, "bot"),
            Type::Reg(w) => write!(f, "reg{w}"),
            Type::Num(w) => write!(f, "num{w}"),
            Type::Int(w) => write!(f, "i{w}"),
            Type::Float => write!(f, "f32"),
            Type::Double => write!(f, "f64"),
            Type::Ptr(t) => write!(f, "ptr({t})"),
            Type::Array(t, n) => write!(f, "[{t} x {n}]"),
            Type::Object(fields) => {
                write!(f, "{{")?;
                for (i, (off, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{off}: {t}")?;
                }
                write!(f, "}}")
            }
            Type::Func(sig) => {
                write!(f, "fn(")?;
                for (i, p) in sig.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") -> {}", sig.ret)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i64t() -> Type {
        Type::Int(Width::W64)
    }
    fn i32t() -> Type {
        Type::Int(Width::W32)
    }

    #[test]
    fn subtype_chain_int_num_reg_top() {
        assert!(i32t().is_subtype_of(&Type::Num(Width::W32)));
        assert!(Type::Num(Width::W32).is_subtype_of(&Type::Reg(Width::W32)));
        assert!(Type::Reg(Width::W32).is_subtype_of(&Type::Top));
        assert!(i32t().is_subtype_of(&Type::Top));
        assert!(!Type::Num(Width::W32).is_subtype_of(&i32t()));
    }

    #[test]
    fn float_double_live_under_their_widths() {
        assert!(Type::Float.is_subtype_of(&Type::Num(Width::W32)));
        assert!(Type::Double.is_subtype_of(&Type::Num(Width::W64)));
        assert!(!Type::Float.is_subtype_of(&Type::Num(Width::W64)));
    }

    #[test]
    fn pointer_is_a_64bit_register_value() {
        assert!(Type::byte_ptr().is_subtype_of(&Type::Reg(Width::W64)));
        assert!(!Type::byte_ptr().is_subtype_of(&Type::Num(Width::W64)));
    }

    #[test]
    fn pointer_covariance() {
        let p_int = Type::ptr(i64t());
        let p_num = Type::ptr(Type::Num(Width::W64));
        assert!(p_int.is_subtype_of(&p_num));
        assert!(!p_num.is_subtype_of(&p_int));
    }

    #[test]
    fn join_int_float_is_num32() {
        assert_eq!(i32t().join(&Type::Float), Type::Num(Width::W32));
    }

    #[test]
    fn join_ptr_int64_is_reg64() {
        // The paper's motivating example: a union of char* and int64 joins
        // at the abstract 64-bit register class.
        assert_eq!(Type::byte_ptr().join(&i64t()), Type::Reg(Width::W64));
    }

    #[test]
    fn join_mismatched_widths_is_top() {
        assert_eq!(i32t().join(&i64t()), Type::Top);
    }

    #[test]
    fn meet_num_and_ptr_under_reg64() {
        assert_eq!(
            Type::Reg(Width::W64).meet(&Type::byte_ptr()),
            Type::byte_ptr()
        );
        assert_eq!(Type::Num(Width::W64).meet(&i64t()), i64t());
        assert_eq!(Type::byte_ptr().meet(&i64t()), Type::Bottom);
    }

    #[test]
    fn object_width_subtyping() {
        let small = Type::object(vec![(0, i64t())]);
        let big = Type::object(vec![(0, i64t()), (8, Type::byte_ptr())]);
        assert!(big.is_subtype_of(&small));
        assert!(!small.is_subtype_of(&big));
        // join keeps common fields, meet unions fields
        assert_eq!(big.join(&small), small);
        assert_eq!(small.meet(&big), big);
    }

    #[test]
    fn func_contravariance() {
        // fn(num64) -> i64  <:  fn(i64) -> num64
        let f1 = Type::Func(FuncSig::new(vec![Type::Num(Width::W64)], i64t()));
        let f2 = Type::Func(FuncSig::new(vec![i64t()], Type::Num(Width::W64)));
        assert!(f1.is_subtype_of(&f2));
        assert!(!f2.is_subtype_of(&f1));
    }

    #[test]
    fn concrete_detection() {
        assert!(i64t().is_concrete());
        assert!(Type::ptr(Type::Int(Width::W8)).is_concrete());
        assert!(!Type::Num(Width::W64).is_concrete());
        assert!(!Type::ptr(Type::Reg(Width::W64)).is_concrete());
        assert!(!Type::Top.is_concrete());
        assert!(!Type::Bottom.is_concrete());
    }

    #[test]
    fn display_roundtrip_shapes() {
        assert_eq!(i64t().to_string(), "i64");
        assert_eq!(Type::byte_ptr().to_string(), "ptr(i8)");
        assert_eq!(Type::array(i32t(), 4).to_string(), "[i32 x 4]");
        assert_eq!(
            Type::object(vec![(0, i64t()), (8, Type::byte_ptr())]).to_string(),
            "{0: i64, 8: ptr(i8)}"
        );
        assert_eq!(
            Type::Func(FuncSig::new(vec![i64t()], Type::Bottom)).to_string(),
            "fn(i64) -> bot"
        );
    }

    #[test]
    fn depth_is_structural() {
        assert_eq!(i64t().depth(), 0);
        assert_eq!(Type::ptr(Type::ptr(i64t())).depth(), 2);
        assert_eq!(Type::object(vec![(0, Type::ptr(i64t()))]).depth(), 2);
    }

    #[test]
    fn object_meets_duplicate_offsets_instead_of_dropping_one() {
        // Compatible duplicates: num64 ∧ i64 = i64, the more precise claim.
        let t = Type::object(vec![
            (0, Type::Num(Width::W64)),
            (8, Type::byte_ptr()),
            (0, i64t()),
        ]);
        assert_eq!(
            t,
            Type::Object(vec![(0, i64t()), (8, Type::byte_ptr())]),
            "compatible duplicate offsets must meet, not keep one arbitrarily"
        );

        // Contradictory duplicates: i64 ∧ ptr(i8) = bottom — the conflict
        // must stay visible, not silently resolve to whichever field
        // happened to sort first.
        let t = Type::object(vec![(0, i64t()), (0, Type::byte_ptr())]);
        assert_eq!(t, Type::Object(vec![(0, Type::Bottom)]));
        let t = Type::object(vec![(0, Type::byte_ptr()), (0, i64t())]);
        assert_eq!(t, Type::Object(vec![(0, Type::Bottom)]));

        // Three claims at one offset fold left through the meet.
        let t = Type::object(vec![
            (0, Type::Num(Width::W64)),
            (0, Type::Reg(Width::W64)),
            (0, i64t()),
        ]);
        assert_eq!(t, Type::Object(vec![(0, i64t())]));
    }
}
