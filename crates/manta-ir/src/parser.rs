//! Textual IR parser — the inverse of [`crate::printer`].
//!
//! The grammar is line-oriented:
//!
//! ```text
//! module <name>
//! extern <name>(<w>, …) -> <w|void>
//! global <name> <size>
//! func <name>(<w>, …) -> <w|void> [addrtaken] {
//! bb<N>:
//!   v<K> = copy.<w> <opnd>
//!   v<K> = phi.<w> [bb<N>: <opnd>, …]
//!   v<K> = load.<w> <opnd>
//!   store <opnd>, <opnd>
//!   v<K> = alloca <size>
//!   v<K> = gep <opnd>, <offset>
//!   v<K> = <binop>.<w> <opnd>, <opnd>
//!   v<K> = cmp.<pred> <opnd>, <opnd>
//!   [v<K> =] call[.<w>] @<func>|!<extern>(<opnd>, …)
//!   [v<K> =] icall[.<w>] <opnd>(<opnd>, …)
//!   br bb<N> | condbr <opnd>, bb<N>, bb<N> | ret [<opnd>] | unreachable
//! }
//! ```
//!
//! Operands: `p<N>` (parameter), `v<K>` (instruction result), `<int>:i<w>`,
//! `<float>:f<w>`, `null`, `g.<global>`, `fn.<function>`.

use std::collections::HashMap;
use std::fmt;

use crate::externs::ExternRegistry;
use crate::function::{Function, Terminator};
use crate::ids::{BlockId, FuncId, ValueId};
use crate::inst::{BinOp, Callee, CmpPred, InstKind};
use crate::module::Module;
use crate::types::Width;
use crate::value::{ConstKind, Value, ValueKind};

/// A parse failure with its 1-based source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token, or 0 when unknown.
    pub col: usize,
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    /// An error at `line` with no column information.
    pub fn new(line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            col: 0,
            message: message.into(),
        }
    }

    /// Fills in `col` by locating the first backtick-quoted token of the
    /// message inside the source line it points at. Central position
    /// recovery keeps token-level plumbing out of the grammar productions.
    fn locate(mut self, text: &str) -> ParseError {
        if self.col != 0 || self.line == 0 {
            return self;
        }
        let Some(src_line) = text.lines().nth(self.line - 1) else {
            return self;
        };
        let mut quoted = self.message.split('`');
        if let Some(tok) = quoted.nth(1) {
            if !tok.is_empty() {
                if let Some(byte) = src_line.find(tok) {
                    self.col = src_line[..byte].chars().count() + 1;
                }
            }
        }
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(
                f,
                "parse error at line {}, col {}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(ParseError::new(line, message))
}

fn parse_width(line: usize, tok: &str) -> Result<Width> {
    let bits: u32 = tok
        .strip_prefix('w')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::new(line, format!("bad width `{tok}`")))?;
    Width::from_bits(bits).ok_or_else(|| ParseError::new(line, format!("bad width `{tok}`")))
}

fn parse_ret(line: usize, tok: &str) -> Result<Option<Width>> {
    if tok == "void" {
        Ok(None)
    } else {
        parse_width(line, tok).map(Some)
    }
}

struct FuncHeader {
    name: String,
    params: Vec<Width>,
    ret: Option<Width>,
    addrtaken: bool,
    body: Vec<(usize, String)>,
}

/// Parses the canonical textual format into a [`Module`].
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending line (and column,
/// when the offending token could be located).
pub fn parse_module(text: &str) -> Result<Module> {
    let mut errors = Vec::new();
    let module = parse_module_impl(text, false, &mut errors);
    match errors.into_iter().next() {
        None => Ok(module),
        Some(e) => Err(e),
    }
}

/// Parses with per-function error recovery: a function whose body fails
/// to parse is replaced by a *stub* — its declared signature with a
/// single `unreachable` entry block — and the diagnostic is recorded.
/// Malformed top-level lines are skipped the same way. Function ids and
/// call-site arities therefore stay consistent with the declared
/// headers, so the partial module still verifies and analyzes.
///
/// Returns the (possibly partial) module together with every diagnostic,
/// in source order. An empty diagnostics vector means the parse was
/// clean.
pub fn parse_module_recovering(text: &str) -> (Module, Vec<ParseError>) {
    let mut errors = Vec::new();
    let module = parse_module_impl(text, true, &mut errors);
    (module, errors)
}

fn parse_module_impl(text: &str, recover: bool, errors: &mut Vec<ParseError>) -> Module {
    let mut last_ln = 0usize;
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .inspect(|&(i, _)| last_ln = i)
        .filter(|(_, l)| !l.is_empty() && !l.starts_with(';'));

    let module_name = match lines.next() {
        None => {
            errors.push(ParseError::new(0, "empty input"));
            return Module::new("invalid");
        }
        Some((ln, first)) => match first.strip_prefix("module ") {
            Some(name) => name.trim().to_string(),
            None => {
                errors.push(ParseError::new(ln, "expected `module <name>`").locate(text));
                if !recover {
                    return Module::new("invalid");
                }
                "invalid".to_string()
            }
        },
    };
    let mut module = Module::new(&module_name);

    let mut headers: Vec<FuncHeader> = Vec::new();
    let mut in_func = false;
    for (ln, line) in lines {
        if in_func {
            if line == "}" {
                in_func = false;
            } else if let Some(h) = headers.last_mut() {
                h.body.push((ln, line.to_string()));
            }
            continue;
        }
        let top = parse_top_level(&mut module, &mut headers, ln, line);
        match top {
            Ok(entered) => in_func = entered,
            Err(e) => {
                errors.push(e.locate(text));
                if !recover {
                    return module;
                }
            }
        }
    }
    if in_func {
        errors.push(ParseError::new(last_ln, "unterminated function body"));
        if !recover {
            return module;
        }
    }

    let func_ids: HashMap<String, FuncId> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| (h.name.clone(), FuncId::from_index(i)))
        .collect();

    for (i, header) in headers.iter().enumerate() {
        let mut func = Function::new(
            FuncId::from_index(i),
            header.name.clone(),
            &header.params,
            header.ret,
        );
        func.set_address_taken(header.addrtaken);
        if let Err(e) = parse_body(&mut func, header, &module, &func_ids) {
            errors.push(e.locate(text));
            if !recover {
                return module;
            }
            // Recovery: keep the declared signature, drop the body. A
            // fresh function is one `unreachable` entry block, which is
            // exactly the stub we want.
            func = Function::new(
                FuncId::from_index(i),
                header.name.clone(),
                &header.params,
                header.ret,
            );
            func.set_address_taken(header.addrtaken);
        }
        module.push_function(func);
    }
    module
}

/// Handles one top-level line; returns whether it opened a function body.
fn parse_top_level(
    module: &mut Module,
    headers: &mut Vec<FuncHeader>,
    ln: usize,
    line: &str,
) -> Result<bool> {
    if let Some(rest) = line.strip_prefix("extern ") {
        let (name, params, ret) = parse_sig(ln, rest.trim_end())?;
        let id = module.next_extern_id();
        module.push_extern(ExternRegistry::declare(id, &name, &params, ret));
    } else if let Some(rest) = line.strip_prefix("global ") {
        let mut it = rest.split_whitespace();
        let gname = it
            .next()
            .ok_or_else(|| ParseError::new(ln, "global name"))?;
        let size: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseError::new(ln, "global size"))?;
        module.push_global(gname.to_string(), size);
    } else if let Some(rest) = line.strip_prefix("func ") {
        let rest = rest
            .strip_suffix('{')
            .ok_or_else(|| ParseError::new(ln, "expected `{` ending func header"))?
            .trim_end();
        let (rest, addrtaken) = match rest.strip_suffix("addrtaken") {
            Some(r) => (r.trim_end(), true),
            None => (rest, false),
        };
        let (name, params, ret) = parse_sig(ln, rest)?;
        headers.push(FuncHeader {
            name,
            params,
            ret,
            addrtaken,
            body: Vec::new(),
        });
        return Ok(true);
    } else {
        return err(ln, format!("unexpected top-level line `{line}`"));
    }
    Ok(false)
}

/// Parses `name(w64, w32) -> w64`.
fn parse_sig(ln: usize, s: &str) -> Result<(String, Vec<Width>, Option<Width>)> {
    let open = s
        .find('(')
        .ok_or_else(|| ParseError::new(ln, "expected `(`"))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| ParseError::new(ln, "expected `)`"))?;
    let name = s[..open].trim().to_string();
    let params_s = &s[open + 1..close];
    let params = if params_s.trim().is_empty() {
        Vec::new()
    } else {
        params_s
            .split(',')
            .map(|t| parse_width(ln, t.trim()))
            .collect::<Result<Vec<_>>>()?
    };
    let arrow = s[close..]
        .find("->")
        .ok_or_else(|| ParseError::new(ln, "expected `->`"))?;
    let ret = parse_ret(ln, s[close + arrow + 2..].trim())?;
    Ok((name, params, ret))
}

struct BodyCtx<'a> {
    module: &'a Module,
    func_ids: &'a HashMap<String, FuncId>,
    defs: Vec<ValueId>,
    consts: HashMap<String, ValueId>,
}

fn parse_body(
    func: &mut Function,
    header: &FuncHeader,
    module: &Module,
    func_ids: &HashMap<String, FuncId>,
) -> Result<()> {
    // Pass 1: discover blocks and defining lines.
    let mut max_block = 0usize;
    // def number -> (line, width, inst index)
    let mut def_specs: Vec<Option<(usize, Width, usize)>> = Vec::new();
    let mut inst_counter = 0usize;
    for (ln, line) in &header.body {
        if let Some(bb) = line.strip_suffix(':') {
            let n: usize = bb
                .strip_prefix("bb")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError::new(*ln, format!("bad block label `{line}`")))?;
            max_block = max_block.max(n);
            continue;
        }
        let word = line.split_whitespace().next().unwrap_or("");
        if matches!(word, "br" | "condbr" | "ret" | "unreachable") {
            // Terminator lines may still reference blocks forward.
            for tok in line.split(|c: char| c == ',' || c.is_whitespace()) {
                if let Some(n) = tok.strip_prefix("bb").and_then(|s| s.parse::<usize>().ok()) {
                    max_block = max_block.max(n);
                }
            }
            continue;
        }
        // Instruction line.
        if let Some((def, rhs)) = line.split_once('=') {
            let def = def.trim();
            let k: usize = def
                .strip_prefix('v')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError::new(*ln, format!("bad def `{def}`")))?;
            if k >= def_specs.len() {
                def_specs.resize(k + 1, None);
            }
            if def_specs[k].is_some() {
                return err(*ln, format!("duplicate definition of v{k}"));
            }
            let width = def_width(*ln, rhs.trim())?;
            def_specs[k] = Some((*ln, width, inst_counter));
        }
        inst_counter += 1;
    }
    // Forward-reference blocks inside phi incomings as well.
    for (_, line) in &header.body {
        if line.contains("= phi.") {
            if let (Some(o), Some(c)) = (line.find('['), line.rfind(']')) {
                for pair in line[o + 1..c].split(',') {
                    if let Some((bb, _)) = pair.split_once(':') {
                        if let Some(n) = bb
                            .trim()
                            .strip_prefix("bb")
                            .and_then(|s| s.parse::<usize>().ok())
                        {
                            max_block = max_block.max(n);
                        }
                    }
                }
            }
        }
    }
    while func.block_count() <= max_block {
        func.add_block();
    }

    // Pre-create def values so forward references (loops/phis) resolve.
    let mut defs = Vec::with_capacity(def_specs.len());
    for (k, spec) in def_specs.iter().enumerate() {
        let (_, width, inst_index) =
            spec.ok_or_else(|| ParseError::new(0, format!("v{k} referenced but never defined")))?;
        let inst = crate::ids::InstId::from_index(inst_index);
        defs.push(func.add_value(Value {
            kind: ValueKind::Inst { def: inst },
            width,
        }));
    }

    let mut ctx = BodyCtx {
        module,
        func_ids,
        defs,
        consts: HashMap::new(),
    };

    // Pass 2: emit instructions and terminators.
    let mut current = func.entry();
    for (ln, line) in &header.body {
        if let Some(bb) = line.strip_suffix(':') {
            // Validated in pass 1, but stay panic-free on principle.
            let n: usize = bb
                .strip_prefix("bb")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError::new(*ln, format!("bad block label `{line}`")))?;
            current = BlockId::from_index(n);
            continue;
        }
        let word = line.split_whitespace().next().unwrap_or("");
        match word {
            "br" => {
                let t = parse_block_ref(*ln, line[2..].trim())?;
                func.replace_terminator(current, Terminator::Br(t));
            }
            "condbr" => {
                let rest = line["condbr".len()..].trim();
                let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return err(*ln, "condbr expects 3 operands");
                }
                let cond = parse_operand(func, &mut ctx, *ln, parts[0])?;
                let t = parse_block_ref(*ln, parts[1])?;
                let e = parse_block_ref(*ln, parts[2])?;
                func.replace_terminator(
                    current,
                    Terminator::CondBr {
                        cond,
                        then_bb: t,
                        else_bb: e,
                    },
                );
            }
            "ret" => {
                let rest = line[3..].trim();
                let val = if rest.is_empty() {
                    None
                } else {
                    Some(parse_operand(func, &mut ctx, *ln, rest)?)
                };
                func.replace_terminator(current, Terminator::Ret(val));
            }
            "unreachable" => {
                func.replace_terminator(current, Terminator::Unreachable);
            }
            _ => {
                let kind = parse_inst(func, &mut ctx, *ln, line)?;
                func.append_inst(current, kind);
            }
        }
    }
    Ok(())
}

/// Determines the width of the value defined by the right-hand side `rhs`.
fn def_width(ln: usize, rhs: &str) -> Result<Width> {
    let mnemonic = rhs.split_whitespace().next().unwrap_or("");
    let (op, suffix) = match mnemonic.split_once('.') {
        Some((o, s)) => (o, Some(s)),
        None => (mnemonic, None),
    };
    match op {
        "alloca" | "gep" => Ok(Width::W64),
        "cmp" => Ok(Width::W1),
        _ => {
            let s = suffix
                .ok_or_else(|| ParseError::new(ln, format!("`{op}` needs a width suffix")))?;
            parse_width(ln, s)
        }
    }
}

fn parse_block_ref(ln: usize, tok: &str) -> Result<BlockId> {
    tok.strip_prefix("bb")
        .and_then(|s| s.parse::<usize>().ok())
        .map(BlockId::from_index)
        .ok_or_else(|| ParseError::new(ln, format!("bad block ref `{tok}`")))
}

fn parse_operand(
    func: &mut Function,
    ctx: &mut BodyCtx<'_>,
    ln: usize,
    tok: &str,
) -> Result<ValueId> {
    let tok = tok.trim();
    if let Some(n) = tok.strip_prefix('p').and_then(|s| s.parse::<usize>().ok()) {
        return func
            .params()
            .get(n)
            .copied()
            .ok_or_else(|| ParseError::new(ln, format!("no parameter p{n}")));
    }
    if let Some(k) = tok.strip_prefix('v').and_then(|s| s.parse::<usize>().ok()) {
        return ctx
            .defs
            .get(k)
            .copied()
            .ok_or_else(|| ParseError::new(ln, format!("undefined value v{k}")));
    }
    if let Some(v) = ctx.consts.get(tok) {
        return Ok(*v);
    }
    let value = if tok == "null" {
        Value {
            kind: ValueKind::Const(ConstKind::Null),
            width: Width::W64,
        }
    } else if tok == "undef" {
        Value {
            kind: ValueKind::Const(ConstKind::Undef),
            width: Width::W64,
        }
    } else if let Some(gname) = tok.strip_prefix("g.") {
        let g = ctx
            .module
            .globals()
            .find(|g| g.name == gname)
            .ok_or_else(|| ParseError::new(ln, format!("unknown global `{gname}`")))?;
        Value {
            kind: ValueKind::GlobalAddr(g.id),
            width: Width::W64,
        }
    } else if let Some(fname) = tok.strip_prefix("fn.") {
        let f = ctx
            .func_ids
            .get(fname)
            .ok_or_else(|| ParseError::new(ln, format!("unknown function `{fname}`")))?;
        Value {
            kind: ValueKind::FuncAddr(*f),
            width: Width::W64,
        }
    } else if let Some((lit, ty)) = tok.rsplit_once(':') {
        if let Some(bits) = ty.strip_prefix('i') {
            let w = Width::from_bits(
                bits.parse()
                    .map_err(|_| ParseError::new(ln, format!("bad const type `{ty}`")))?,
            )
            .ok_or_else(|| ParseError::new(ln, format!("bad const width `{ty}`")))?;
            let v: i64 = lit
                .parse()
                .map_err(|_| ParseError::new(ln, format!("bad int `{lit}`")))?;
            Value {
                kind: ValueKind::Const(ConstKind::Int(v)),
                width: w,
            }
        } else if let Some(bits) = ty.strip_prefix('f') {
            let w = Width::from_bits(
                bits.parse()
                    .map_err(|_| ParseError::new(ln, format!("bad const type `{ty}`")))?,
            )
            .ok_or_else(|| ParseError::new(ln, format!("bad const width `{ty}`")))?;
            let v: f64 = lit
                .parse()
                .map_err(|_| ParseError::new(ln, format!("bad float `{lit}`")))?;
            Value {
                kind: ValueKind::Const(ConstKind::Float(v)),
                width: w,
            }
        } else {
            return err(ln, format!("bad operand `{tok}`"));
        }
    } else {
        return err(ln, format!("bad operand `{tok}`"));
    };
    let id = func.add_value(value);
    ctx.consts.insert(tok.to_string(), id);
    Ok(id)
}

fn next_def(ctx: &mut BodyCtx<'_>, ln: usize, lhs: &str) -> Result<ValueId> {
    let k: usize = lhs
        .trim()
        .strip_prefix('v')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::new(ln, format!("bad def `{lhs}`")))?;
    ctx.defs
        .get(k)
        .copied()
        .ok_or_else(|| ParseError::new(ln, format!("undefined def v{k}")))
}

fn parse_inst(
    func: &mut Function,
    ctx: &mut BodyCtx<'_>,
    ln: usize,
    line: &str,
) -> Result<InstKind> {
    let (lhs, rhs) = match line.split_once('=') {
        Some((l, r)) => (Some(l.trim()), r.trim()),
        None => (None, line.trim()),
    };
    let mnemonic = rhs.split_whitespace().next().unwrap_or("");
    let (op, _suffix) = match mnemonic.split_once('.') {
        Some((o, s)) => (o, Some(s)),
        None => (mnemonic, None),
    };
    let rest = rhs[mnemonic.len()..].trim();

    let kind =
        match op {
            "copy" => {
                let dst = next_def(
                    ctx,
                    ln,
                    lhs.ok_or_else(|| ParseError::new(ln, "copy needs a def"))?,
                )?;
                let src = parse_operand(func, ctx, ln, rest)?;
                InstKind::Copy { dst, src }
            }
            "phi" => {
                let dst = next_def(
                    ctx,
                    ln,
                    lhs.ok_or_else(|| ParseError::new(ln, "phi needs a def"))?,
                )?;
                let inner = rest
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| ParseError::new(ln, "phi expects `[...]`"))?;
                let mut incomings = Vec::new();
                for pair in inner.split(',') {
                    let (bb, val) = pair
                        .split_once(':')
                        .ok_or_else(|| ParseError::new(ln, "phi incoming `bb: v`"))?;
                    let b = parse_block_ref(ln, bb.trim())?;
                    let v = parse_operand(func, ctx, ln, val)?;
                    incomings.push((b, v));
                }
                InstKind::Phi { dst, incomings }
            }
            "load" => {
                let dst = next_def(
                    ctx,
                    ln,
                    lhs.ok_or_else(|| ParseError::new(ln, "load needs a def"))?,
                )?;
                let width = func.value(dst).width;
                let addr = parse_operand(func, ctx, ln, rest)?;
                InstKind::Load { dst, addr, width }
            }
            "store" => {
                let (a, v) = rest
                    .split_once(',')
                    .ok_or_else(|| ParseError::new(ln, "store expects 2 operands"))?;
                let addr = parse_operand(func, ctx, ln, a)?;
                let val = parse_operand(func, ctx, ln, v)?;
                InstKind::Store { addr, val }
            }
            "alloca" => {
                let dst = next_def(
                    ctx,
                    ln,
                    lhs.ok_or_else(|| ParseError::new(ln, "alloca needs a def"))?,
                )?;
                let size: u64 = rest
                    .parse()
                    .map_err(|_| ParseError::new(ln, format!("bad alloca size `{rest}`")))?;
                InstKind::Alloca { dst, size }
            }
            "gep" => {
                let dst = next_def(
                    ctx,
                    ln,
                    lhs.ok_or_else(|| ParseError::new(ln, "gep needs a def"))?,
                )?;
                let (b, o) = rest
                    .split_once(',')
                    .ok_or_else(|| ParseError::new(ln, "gep expects 2 operands"))?;
                let base = parse_operand(func, ctx, ln, b)?;
                let offset: u64 = o
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::new(ln, format!("bad gep offset `{o}`")))?;
                InstKind::Gep { dst, base, offset }
            }
            "cmp" => {
                let dst = next_def(
                    ctx,
                    ln,
                    lhs.ok_or_else(|| ParseError::new(ln, "cmp needs a def"))?,
                )?;
                let pred = mnemonic
                    .split_once('.')
                    .and_then(|(_, p)| CmpPred::from_mnemonic(p))
                    .ok_or_else(|| ParseError::new(ln, format!("bad cmp `{mnemonic}`")))?;
                let (l, r) = rest
                    .split_once(',')
                    .ok_or_else(|| ParseError::new(ln, "cmp expects 2 operands"))?;
                let lhs_v = parse_operand(func, ctx, ln, l)?;
                let rhs_v = parse_operand(func, ctx, ln, r)?;
                InstKind::Cmp {
                    dst,
                    pred,
                    lhs: lhs_v,
                    rhs: rhs_v,
                }
            }
            "call" | "icall" => {
                let dst = match lhs {
                    Some(l) => Some(next_def(ctx, ln, l)?),
                    None => None,
                };
                let open = rest
                    .find('(')
                    .ok_or_else(|| ParseError::new(ln, "call expects `(`"))?;
                let close = rest
                    .rfind(')')
                    .ok_or_else(|| ParseError::new(ln, "call expects `)`"))?;
                let target = rest[..open].trim();
                let args_s = &rest[open + 1..close];
                let mut args = Vec::new();
                if !args_s.trim().is_empty() {
                    for a in args_s.split(',') {
                        args.push(parse_operand(func, ctx, ln, a)?);
                    }
                }
                let callee =
                    if op == "icall" {
                        Callee::Indirect(parse_operand(func, ctx, ln, target)?)
                    } else if let Some(fname) = target.strip_prefix('@') {
                        Callee::Direct(*ctx.func_ids.get(fname).ok_or_else(|| {
                            ParseError::new(ln, format!("unknown function `{fname}`"))
                        })?)
                    } else if let Some(ename) = target.strip_prefix('!') {
                        Callee::Extern(ctx.module.extern_by_name(ename).ok_or_else(|| {
                            ParseError::new(ln, format!("unknown extern `{ename}`"))
                        })?)
                    } else {
                        return err(ln, format!("bad call target `{target}`"));
                    };
                InstKind::Call { dst, callee, args }
            }
            other => {
                // Binary operators.
                let binop = BinOp::from_mnemonic(other)
                    .ok_or_else(|| ParseError::new(ln, format!("unknown instruction `{other}`")))?;
                let dst = next_def(
                    ctx,
                    ln,
                    lhs.ok_or_else(|| ParseError::new(ln, "binop needs a def"))?,
                )?;
                let (l, r) = rest
                    .split_once(',')
                    .ok_or_else(|| ParseError::new(ln, "binop expects 2 operands"))?;
                let lhs_v = parse_operand(func, ctx, ln, l)?;
                let rhs_v = parse_operand(func, ctx, ln, r)?;
                InstKind::BinOp {
                    op: binop,
                    dst,
                    lhs: lhs_v,
                    rhs: rhs_v,
                }
            }
        };
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;
    use crate::verify::verify_module;

    const SAMPLE: &str = r#"
module demo
extern malloc(w64) -> w64
extern unknowable(w64, w64) -> w64
global table 32

func helper(w64) -> w64 addrtaken {
bb0:
  v0 = add.w64 p0, 1:i64
  ret v0
}

func main(w64) -> w64 {
bb0:
  v0 = call.w64 !malloc(p0)
  store g.table, v0
  v1 = cmp.eq v0, null
  condbr v1, bb1, bb2
bb1:
  ret 0:i64
bb2:
  v2 = call.w64 @helper(p0)
  v3 = icall.w64 fn.helper(v2)
  ret v3
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse_module(SAMPLE).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(m.function_count(), 2);
        assert!(m.function_by_name("helper").unwrap().is_address_taken());
        assert_eq!(m.extern_by_name("malloc").map(|e| e.index()), Some(0));
        assert_eq!(m.globals().count(), 1);
    }

    #[test]
    fn print_parse_print_is_fixpoint() {
        let m = parse_module(SAMPLE).unwrap();
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).unwrap();
        let p2 = print_module(&m2);
        assert_eq!(p1, p2);
        verify_module(&m2).unwrap();
    }

    #[test]
    fn parses_loop_with_forward_phi() {
        let text = r#"
module looped
func f(w64) -> w64 {
bb0:
  br bb1
bb1:
  v0 = phi.w64 [bb0: p0, bb2: v1]
  v2 = cmp.gt v0, 0:i64
  condbr v2, bb2, bb3
bb2:
  v1 = sub.w64 v0, 1:i64
  br bb1
bb3:
  ret v0
}
"#;
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).unwrap();
        assert_eq!(p1, print_module(&m2));
    }

    #[test]
    fn reports_line_numbers() {
        let text = "module m\nfunc f() -> void {\nbb0:\n  v0 = frobnicate.w64 p0\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_sparse_def_numbering() {
        let text = "module m\nfunc f() -> void {\nbb0:\n  v5 = alloca 8\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("never defined"), "{e}");
    }

    #[test]
    fn reports_columns_for_located_tokens() {
        let text = "module m\nfunc f() -> void {\nbb0:\n  v0 = frobnicate.w64 p0\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 4);
        // `frobnicate` starts at column 8 of "  v0 = frobnicate.w64 p0".
        assert_eq!(e.col, 8);
        assert!(e.to_string().contains("col 8"), "{e}");
    }

    #[test]
    fn truncated_input_reports_last_line() {
        let text = "module m\nfunc f() -> void {\nbb0:\n  v0 = alloca 8";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        assert!(e.message.contains("unterminated"), "{e}");
    }

    #[test]
    fn recovery_stubs_broken_function_and_keeps_the_rest() {
        let text = "module m\n\
            func broken(w64) -> w64 {\n\
            bb0:\n\
            \x20 v0 = frobnicate.w64 p0\n\
            \x20 ret v0\n\
            }\n\
            func fine(w64) -> w64 {\n\
            bb0:\n\
            \x20 v0 = add.w64 p0, 1:i64\n\
            \x20 ret v0\n\
            }\n\
            func caller(w64) -> w64 {\n\
            bb0:\n\
            \x20 v0 = call.w64 @broken(p0)\n\
            \x20 v1 = call.w64 @fine(v0)\n\
            \x20 ret v1\n\
            }\n";
        let (m, errs) = parse_module_recovering(text);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].line, 4);
        // All three functions survive with their declared signatures, so
        // the caller's arity checks still pass.
        assert_eq!(m.function_count(), 3);
        verify_module(&m).unwrap();
        let broken = m.function_by_name("broken").unwrap();
        assert_eq!(broken.params().len(), 1);
        assert_eq!(broken.inst_count(), 0, "stub body");
        let fine = m.function_by_name("fine").unwrap();
        assert!(fine.inst_count() > 0, "healthy body kept");
    }

    #[test]
    fn recovery_on_clean_input_matches_strict_parse() {
        let (m, errs) = parse_module_recovering(SAMPLE);
        assert!(errs.is_empty());
        let strict = parse_module(SAMPLE).unwrap();
        assert_eq!(print_module(&m), print_module(&strict));
    }

    #[test]
    fn recovery_never_returns_errors_silently() {
        let (_, errs) = parse_module_recovering("garbage");
        assert!(!errs.is_empty());
        let (m, errs) = parse_module_recovering("");
        assert!(!errs.is_empty());
        assert_eq!(m.function_count(), 0);
    }

    #[test]
    fn rejects_duplicate_defs() {
        let text =
            "module m\nfunc f() -> void {\nbb0:\n  v0 = alloca 8\n  v0 = alloca 8\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }
}
