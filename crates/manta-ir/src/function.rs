//! Functions, basic blocks and terminators.

use crate::ids::{BlockId, FuncId, InstId, ValueId};
use crate::inst::{InstData, InstKind};
use crate::types::Width;
use crate::value::{Value, ValueKind};

/// A basic-block terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` value: `(cond, then, else)`.
    CondBr {
        /// Branch condition.
        cond: ValueId,
        /// Target when the condition is true.
        then_bb: BlockId,
        /// Target when the condition is false.
        else_bb: BlockId,
    },
    /// Function return with an optional value.
    Ret(Option<ValueId>),
    /// Control never reaches past this point (e.g. `exit()` tail).
    Unreachable,
}

impl Terminator {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Values read by this terminator.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }
}

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// Instructions in program order.
    pub insts: Vec<InstId>,
    /// The block terminator.
    pub term: Terminator,
}

/// A function: parameter values, an SSA value arena, an instruction arena,
/// and a CFG of basic blocks.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    id: FuncId,
    name: String,
    params: Vec<ValueId>,
    ret_width: Option<Width>,
    values: Vec<Value>,
    insts: Vec<InstData>,
    blocks: Vec<Block>,
    entry: BlockId,
    address_taken: bool,
}

impl Function {
    /// Creates an empty function shell: parameters materialized, one empty
    /// entry block terminated by `unreachable`. Most users should prefer
    /// [`crate::FunctionBuilder`]; this low-level constructor exists for
    /// parsers and CFG transforms that rebuild functions wholesale.
    pub fn new(
        id: FuncId,
        name: String,
        param_widths: &[Width],
        ret_width: Option<Width>,
    ) -> Function {
        let mut values = Vec::new();
        let mut params = Vec::new();
        for (i, w) in param_widths.iter().enumerate() {
            let vid = ValueId::from_index(values.len());
            values.push(Value {
                kind: ValueKind::Param { index: i as u32 },
                width: *w,
            });
            params.push(vid);
        }
        Function {
            id,
            name,
            params,
            ret_width,
            values,
            insts: Vec::new(),
            blocks: vec![Block {
                id: BlockId(0),
                insts: Vec::new(),
                term: Terminator::Unreachable,
            }],
            entry: BlockId(0),
            address_taken: false,
        }
    }

    /// This function's id within its module.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The (stripped, synthetic) symbol name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter values, in order.
    pub fn params(&self) -> &[ValueId] {
        &self.params
    }

    /// Width of the return value, or `None` for void.
    pub fn ret_width(&self) -> Option<Width> {
        self.ret_width
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Whether the function's address escapes (it can be an indirect-call
    /// target).
    pub fn is_address_taken(&self) -> bool {
        self.address_taken
    }

    /// Marks the function address-taken.
    pub fn set_address_taken(&mut self, taken: bool) {
        self.address_taken = taken;
    }

    /// The value data for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a value of this function.
    pub fn value(&self, v: ValueId) -> &Value {
        &self.values[v.index()]
    }

    /// The instruction data for `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an instruction of this function.
    pub fn inst(&self, i: InstId) -> &InstData {
        &self.insts[i.index()]
    }

    /// The block data for `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a block of this function.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Iterates over all values.
    pub fn values(&self) -> impl Iterator<Item = (ValueId, &Value)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ValueId::from_index(i), v))
    }

    /// Iterates over all instructions in arena order.
    pub fn insts(&self) -> impl Iterator<Item = &InstData> {
        self.insts.iter()
    }

    /// Iterates over all blocks in id order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Number of values.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Number of instructions.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The instruction defining `v`, if `v` is an instruction result.
    pub fn def_inst(&self, v: ValueId) -> Option<InstId> {
        match self.value(v).kind {
            ValueKind::Inst { def } => Some(def),
            _ => None,
        }
    }

    /// All instructions that use `v`, in arena order (paper: `get_users`).
    pub fn users(&self, v: ValueId) -> Vec<InstId> {
        self.insts
            .iter()
            .filter(|i| i.kind.uses().contains(&v))
            .map(|i| i.id)
            .collect()
    }

    // ---- mutation (used by the builder and by preprocessing) ----

    pub(crate) fn push_value(&mut self, value: Value) -> ValueId {
        let id = ValueId::from_index(self.values.len());
        self.values.push(value);
        id
    }

    pub(crate) fn push_inst(&mut self, block: BlockId, kind: InstKind) -> InstId {
        let id = InstId::from_index(self.insts.len());
        self.insts.push(InstData { id, block, kind });
        self.blocks[block.index()].insts.push(id);
        id
    }

    pub(crate) fn push_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block {
            id,
            insts: Vec::new(),
            term: Terminator::Unreachable,
        });
        id
    }

    pub(crate) fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].term = term;
    }

    /// Replaces the terminator of `block` (public for CFG transforms).
    pub fn replace_terminator(&mut self, block: BlockId, term: Terminator) {
        self.set_term(block, term);
    }

    /// Rewrites the defining kind of instruction `i` (public for CFG
    /// transforms such as loop unrolling; callers must preserve SSA form).
    pub fn replace_inst_kind(&mut self, i: InstId, kind: InstKind) {
        self.insts[i.index()].kind = kind;
    }

    /// Appends a fresh block and returns its id (public for CFG transforms).
    pub fn add_block(&mut self) -> BlockId {
        self.push_block()
    }

    /// Appends a fresh value and returns its id (public for CFG transforms).
    pub fn add_value(&mut self, value: Value) -> ValueId {
        self.push_value(value)
    }

    /// Appends an instruction to `block` (public for CFG transforms).
    pub fn append_inst(&mut self, block: BlockId, kind: InstKind) -> InstId {
        self.push_inst(block, kind)
    }

    /// Re-points an instruction-defined value at its actual defining
    /// instruction. SSA constructors create phi placeholder values before
    /// the phi instruction exists; this closes the loop.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an instruction-defined value.
    pub fn fix_value_def(&mut self, v: ValueId, def: InstId) {
        match &mut self.values[v.index()].kind {
            ValueKind::Inst { def: slot } => *slot = def,
            other => panic!("fix_value_def on non-inst value {v}: {other:?}"),
        }
    }

    /// Inserts an instruction at the *front* of `block` — used by SSA
    /// construction to place phis before the block body. Arena order is
    /// unaffected; only the block's program order changes.
    pub fn prepend_inst(&mut self, block: BlockId, kind: InstKind) -> InstId {
        let id = InstId::from_index(self.insts.len());
        self.insts.push(InstData { id, block, kind });
        self.blocks[block.index()].insts.insert(0, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_function_has_params_and_entry() {
        let f = Function::new(
            FuncId(0),
            "f".into(),
            &[Width::W64, Width::W32],
            Some(Width::W64),
        );
        assert_eq!(f.params().len(), 2);
        assert_eq!(f.value(f.params()[0]).width, Width::W64);
        assert_eq!(f.value(f.params()[1]).width, Width::W32);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.block_count(), 1);
        assert!(!f.is_address_taken());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Br(BlockId(3)).successors(), vec![BlockId(3)]);
        let cb = Terminator::CondBr {
            cond: ValueId(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(cb.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(cb.uses(), vec![ValueId(0)]);
        assert!(Terminator::Ret(None).successors().is_empty());
        assert_eq!(Terminator::Ret(Some(ValueId(5))).uses(), vec![ValueId(5)]);
    }

    #[test]
    fn users_finds_all_uses() {
        let mut f = Function::new(FuncId(0), "f".into(), &[Width::W64], Some(Width::W64));
        let p = f.params()[0];
        let d1 = f.push_value(Value {
            kind: ValueKind::Inst { def: InstId(0) },
            width: Width::W64,
        });
        f.push_inst(BlockId(0), InstKind::Copy { dst: d1, src: p });
        let d2 = f.push_value(Value {
            kind: ValueKind::Inst { def: InstId(1) },
            width: Width::W64,
        });
        f.push_inst(
            BlockId(0),
            InstKind::BinOp {
                op: crate::BinOp::Add,
                dst: d2,
                lhs: p,
                rhs: d1,
            },
        );
        assert_eq!(f.users(p), vec![InstId(0), InstId(1)]);
        assert_eq!(f.users(d1), vec![InstId(1)]);
        assert!(f.users(d2).is_empty());
        assert_eq!(f.def_inst(d2), Some(InstId(1)));
        assert_eq!(f.def_inst(p), None);
    }
}
