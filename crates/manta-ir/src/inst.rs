//! IR instructions.
//!
//! The vocabulary matches the instruction classes the paper's typing rules
//! dispatch on (Table 1 and Table 2): value copies (`copy`/`phi`/`call`),
//! memory accesses (`load`/`store`), arithmetic (`add`/`sub`/…), address
//! computation (`alloca`/`gep`), comparisons and calls.

use crate::ids::{BlockId, ExternId, FuncId, InstId, ValueId};
use crate::types::Width;

/// Binary arithmetic / bitwise operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition — may be integer arithmetic *or* pointer arithmetic; Table 2
    /// of the paper prunes data dependencies through it based on types.
    Add,
    /// Subtraction — may compute a pointer difference.
    Sub,
    /// Multiplication (always numeric).
    Mul,
    /// Division (always numeric).
    Div,
    /// Remainder (always numeric).
    Rem,
    /// Bitwise and (numeric; also appears in pointer-alignment idioms).
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    Shr,
}

impl BinOp {
    /// Operators that are *always* numeric type hints. `Add`/`Sub` are
    /// excluded because they participate in pointer arithmetic; `And` is
    /// excluded because of pointer-alignment masking idioms (§6.4).
    pub fn is_numeric_only(self) -> bool {
        !matches!(self, BinOp::Add | BinOp::Sub | BinOp::And)
    }

    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Parses a mnemonic back to an operator.
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            _ => return None,
        })
    }
}

/// Comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpPred {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }

    /// Parses a mnemonic back to a predicate.
    pub fn from_mnemonic(s: &str) -> Option<CmpPred> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            _ => return None,
        })
    }

    /// The predicate holding exactly when `self` does not.
    pub fn negate(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Lt => CmpPred::Ge,
            CmpPred::Le => CmpPred::Gt,
            CmpPred::Gt => CmpPred::Le,
            CmpPred::Ge => CmpPred::Lt,
        }
    }
}

/// The target of a call.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Callee {
    /// A direct call to a module function.
    Direct(FuncId),
    /// A call to a declared external function (libc, firmware SDK, …).
    Extern(ExternId),
    /// An indirect call through a function pointer value.
    Indirect(ValueId),
}

/// Instruction payloads.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstKind {
    /// `dst = copy src` — register move / bitcast (a value copy, rule ① of
    /// Table 1).
    Copy {
        /// Result value.
        dst: ValueId,
        /// Copied value.
        src: ValueId,
    },
    /// `dst = phi [bb_i: v_i]` — SSA merge (also rule ①).
    Phi {
        /// Result value.
        dst: ValueId,
        /// Incoming `(predecessor block, value)` pairs.
        incomings: Vec<(BlockId, ValueId)>,
    },
    /// `dst = load addr` — memory read (rule ②).
    Load {
        /// Loaded value.
        dst: ValueId,
        /// Address operand.
        addr: ValueId,
        /// Access width.
        width: Width,
    },
    /// `store addr, val` — memory write (rule ③).
    Store {
        /// Address operand.
        addr: ValueId,
        /// Stored value.
        val: ValueId,
    },
    /// `dst = alloca size` — a stack slot of `size` bytes; `dst` is its
    /// address. Stack slots may be *recycled* for variables of different
    /// types by the compiler (§2.1).
    Alloca {
        /// Address of the slot.
        dst: ValueId,
        /// Slot size in bytes.
        size: u64,
    },
    /// `dst = gep base, offset` — address of the field at a constant byte
    /// `offset` from `base` (field-sensitive object access).
    Gep {
        /// Resulting field address.
        dst: ValueId,
        /// Base address.
        base: ValueId,
        /// Constant byte offset.
        offset: u64,
    },
    /// `dst = <op> lhs, rhs` — binary arithmetic.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Result value.
        dst: ValueId,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// `dst = cmp.<pred> lhs, rhs` — comparison producing an `i1`.
    ///
    /// A `cmp` is an *indirect* type hint: it reveals only that the two
    /// operands have the same type (§6.4), which is the source of the
    /// pointer-compared-with-`-1` recall loss the paper discusses.
    Cmp {
        /// Result value (width `W1`).
        dst: ValueId,
        /// Predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// `dst = call callee(args…)` — direct, external, or indirect call.
    Call {
        /// Result value, if the callee returns one.
        dst: Option<ValueId>,
        /// Call target.
        callee: Callee,
        /// Actual arguments.
        args: Vec<ValueId>,
    },
}

/// An instruction together with its id and owning block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstData {
    /// This instruction's id.
    pub id: InstId,
    /// The block the instruction belongs to.
    pub block: BlockId,
    /// The operation.
    pub kind: InstKind,
}

impl InstKind {
    /// The value defined by this instruction, if any.
    pub fn def(&self) -> Option<ValueId> {
        match self {
            InstKind::Copy { dst, .. }
            | InstKind::Phi { dst, .. }
            | InstKind::Load { dst, .. }
            | InstKind::Alloca { dst, .. }
            | InstKind::Gep { dst, .. }
            | InstKind::BinOp { dst, .. }
            | InstKind::Cmp { dst, .. } => Some(*dst),
            InstKind::Call { dst, .. } => *dst,
            InstKind::Store { .. } => None,
        }
    }

    /// All values used (read) by this instruction, in operand order.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            InstKind::Copy { src, .. } => vec![*src],
            InstKind::Phi { incomings, .. } => incomings.iter().map(|(_, v)| *v).collect(),
            InstKind::Load { addr, .. } => vec![*addr],
            InstKind::Store { addr, val } => vec![*addr, *val],
            InstKind::Alloca { .. } => vec![],
            InstKind::Gep { base, .. } => vec![*base],
            InstKind::BinOp { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                vec![*lhs, *rhs]
            }
            InstKind::Call { callee, args, .. } => {
                let mut uses = Vec::with_capacity(args.len() + 1);
                if let Callee::Indirect(v) = callee {
                    uses.push(*v);
                }
                uses.extend(args.iter().copied());
                uses
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let k = InstKind::BinOp {
            op: BinOp::Add,
            dst: ValueId(3),
            lhs: ValueId(1),
            rhs: ValueId(2),
        };
        assert_eq!(k.def(), Some(ValueId(3)));
        assert_eq!(k.uses(), vec![ValueId(1), ValueId(2)]);

        let s = InstKind::Store {
            addr: ValueId(0),
            val: ValueId(1),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![ValueId(0), ValueId(1)]);
    }

    #[test]
    fn indirect_call_uses_callee_value_first() {
        let c = InstKind::Call {
            dst: Some(ValueId(9)),
            callee: Callee::Indirect(ValueId(4)),
            args: vec![ValueId(5), ValueId(6)],
        };
        assert_eq!(c.uses(), vec![ValueId(4), ValueId(5), ValueId(6)]);
        assert_eq!(c.def(), Some(ValueId(9)));
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Lt,
            CmpPred::Le,
            CmpPred::Gt,
            CmpPred::Ge,
        ] {
            assert_eq!(CmpPred::from_mnemonic(p.mnemonic()), Some(p));
            assert_eq!(p.negate().negate(), p);
        }
    }

    #[test]
    fn numeric_only_excludes_pointer_arith_ops() {
        assert!(!BinOp::Add.is_numeric_only());
        assert!(!BinOp::Sub.is_numeric_only());
        assert!(!BinOp::And.is_numeric_only());
        assert!(BinOp::Mul.is_numeric_only());
        assert!(BinOp::Xor.is_numeric_only());
    }
}
