//! SSA values.
//!
//! A [`Value`] is anything a binary register can hold at a program point:
//! a function parameter, the result of an instruction, an integer/float
//! constant, the address of a global, or the address of a function. Values
//! carry a machine [`Width`] — *not* a source type, since the binary is
//! stripped.

use crate::ids::{FuncId, GlobalId, InstId};
use crate::types::Width;

/// What kind of entity an SSA value is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValueKind {
    /// The `index`-th formal parameter of the enclosing function.
    Param {
        /// Zero-based parameter position.
        index: u32,
    },
    /// The result of the instruction `def`.
    Inst {
        /// Defining instruction.
        def: InstId,
    },
    /// A constant.
    Const(ConstKind),
    /// The address of a module global.
    GlobalAddr(GlobalId),
    /// The address of a module function (an address-taken function).
    FuncAddr(FuncId),
}

/// Constant payloads.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ConstKind {
    /// An integer constant (sign-agnostic bit pattern).
    Int(i64),
    /// A floating constant.
    Float(f64),
    /// The null pointer constant — in a binary this is just `0`, but the
    /// lifter marks zero constants used in address positions distinctly so
    /// bug checkers can describe NPD sources. Type inference treats it as an
    /// ordinary zero: deciding whether a zero is an integer or a null
    /// pointer is exactly what the inference is for.
    Null,
    /// An undefined value: reading a register that was never written
    /// (produced only by the lifter for ill-formed machine code). Reveals
    /// nothing and is not a bug source.
    Undef,
}

impl Eq for ConstKind {}

impl std::hash::Hash for ConstKind {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            ConstKind::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            ConstKind::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            ConstKind::Null => 2u8.hash(state),
            ConstKind::Undef => 3u8.hash(state),
        }
    }
}

/// An SSA value: its kind plus the machine width it occupies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Value {
    /// What the value is.
    pub kind: ValueKind,
    /// The register width the value occupies.
    pub width: Width,
}

impl Value {
    /// True if the value is a constant equal to integer zero (or null).
    pub fn is_zero_const(&self) -> bool {
        matches!(
            self.kind,
            ValueKind::Const(ConstKind::Int(0)) | ValueKind::Const(ConstKind::Null)
        )
    }

    /// True if the value is any constant.
    pub fn is_const(&self) -> bool {
        matches!(self.kind, ValueKind::Const(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_detection() {
        let z = Value {
            kind: ValueKind::Const(ConstKind::Int(0)),
            width: Width::W64,
        };
        let n = Value {
            kind: ValueKind::Const(ConstKind::Null),
            width: Width::W64,
        };
        let one = Value {
            kind: ValueKind::Const(ConstKind::Int(1)),
            width: Width::W64,
        };
        assert!(z.is_zero_const());
        assert!(n.is_zero_const());
        assert!(!one.is_zero_const());
        assert!(one.is_const());
    }

    #[test]
    fn const_hash_distinguishes_kinds() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ConstKind::Int(0));
        s.insert(ConstKind::Null);
        s.insert(ConstKind::Float(0.0));
        assert_eq!(s.len(), 3);
    }
}
