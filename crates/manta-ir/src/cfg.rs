//! Control-flow-graph utilities: predecessors, successors, reverse
//! post-order, reachability and back-edge detection.

use std::collections::HashSet;

use crate::function::Function;
use crate::ids::BlockId;

/// Precomputed CFG adjacency for one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl Cfg {
    /// Computes the CFG of `func`.
    pub fn new(func: &Function) -> Cfg {
        let n = func.block_count();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for block in func.blocks() {
            for s in block.term.successors() {
                succs[block.id.index()].push(s);
                preds[s.index()].push(block.id);
            }
        }
        let rpo = reverse_post_order(func.entry(), &succs);
        Cfg {
            preds,
            succs,
            rpo,
            entry: func.entry(),
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks in reverse post-order from the entry (unreachable blocks are
    /// excluded).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }

    /// All back edges `(from, to)` where `to` is an ancestor of `from` on
    /// the DFS spanning tree (the heads of natural loops).
    pub fn back_edges(&self) -> Vec<(BlockId, BlockId)> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Unvisited,
            Active,
            Done,
        }
        let n = self.succs.len();
        let mut state = vec![State::Unvisited; n];
        let mut out = Vec::new();
        // Iterative DFS with explicit edge stack to track the active path.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        state[self.entry.index()] = State::Active;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &self.succs[b.index()];
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match state[s.index()] {
                    State::Active => out.push((b, s)),
                    State::Unvisited => {
                        state[s.index()] = State::Active;
                        stack.push((s, 0));
                    }
                    State::Done => {}
                }
            } else {
                state[b.index()] = State::Done;
                stack.pop();
            }
        }
        out
    }

    /// Whether the reachable CFG contains any cycle.
    pub fn has_cycle(&self) -> bool {
        !self.back_edges().is_empty()
    }
}

fn reverse_post_order(entry: BlockId, succs: &[Vec<BlockId>]) -> Vec<BlockId> {
    let mut visited: HashSet<BlockId> = HashSet::new();
    let mut post = Vec::new();
    // Iterative post-order DFS.
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited.insert(entry);
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let ss = &succs[b.index()];
        if *next < ss.len() {
            let s = ss[*next];
            *next += 1;
            if visited.insert(s) {
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::CmpPred;
    use crate::types::Width;

    /// entry -> loop_head <-> loop_body; loop_head -> exit
    fn looped_function() -> crate::Module {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("loopy", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let entry = fb.current_block();
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let zero = fb.const_int(0, Width::W64);
        let c = fb.cmp(CmpPred::Gt, p, zero);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(p));
        assert_eq!(entry.index(), 0);
        mb.finish_function(fb);
        mb.finish()
    }

    #[test]
    fn preds_succs_and_rpo() {
        let m = looped_function();
        let f = m.function_by_name("loopy").unwrap();
        let cfg = Cfg::new(f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1)]);
        assert_eq!(cfg.preds(BlockId(1)).len(), 2); // entry + body
        assert_eq!(cfg.rpo().first(), Some(&BlockId(0)));
        assert_eq!(cfg.rpo().len(), 4);
        assert!(cfg.is_reachable(BlockId(3)));
    }

    #[test]
    fn detects_back_edge() {
        let m = looped_function();
        let f = m.function_by_name("loopy").unwrap();
        let cfg = Cfg::new(f);
        assert!(cfg.has_cycle());
        assert_eq!(cfg.back_edges(), vec![(BlockId(2), BlockId(1))]);
    }

    #[test]
    fn acyclic_function_has_no_back_edge() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[], None);
        let next = fb.new_block();
        fb.br(next);
        fb.switch_to(next);
        fb.ret(None);
        mb.finish_function(fb);
        let m = mb.finish();
        let cfg = Cfg::new(m.function_by_name("f").unwrap());
        assert!(!cfg.has_cycle());
        assert!(cfg.back_edges().is_empty());
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[], None);
        let dead = fb.new_block();
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        mb.finish_function(fb);
        let m = mb.finish();
        let cfg = Cfg::new(m.function_by_name("f").unwrap());
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 1);
    }
}
