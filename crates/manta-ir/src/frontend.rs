//! The per-ISA frontend plugin interface.
//!
//! Manta analyzes [`Module`]s; where those modules come from is a frontend
//! concern. Each supported ISA ships one [`Frontend`] implementation that
//! knows how to recognize its image container by magic bytes and lift the
//! machine code inside it to SSA — the same per-architecture plugin shape
//! as Macaw's architecture-specific semantics packages. The engine, CLI,
//! eval and serve paths stay ISA-agnostic: they hold `dyn Frontend`s and
//! dispatch on [`Frontend::detects`].

use std::fmt;

use crate::module::Module;

/// A frontend failure: unrecognized bytes, malformed container, or machine
/// code the lifter cannot translate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FrontendError {
    /// Description of what went wrong.
    pub message: String,
}

impl FrontendError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> FrontendError {
        FrontendError {
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frontend error: {}", self.message)
    }
}

impl std::error::Error for FrontendError {}

/// A binary-image frontend: recognizes one container format and lifts the
/// machine code inside it to an SSA [`Module`].
pub trait Frontend {
    /// Short identifier used on the command line (`--frontend <name>`).
    fn name(&self) -> &'static str;

    /// One-line description of the ISA and container, for error listings.
    fn describe(&self) -> &'static str;

    /// Whether `bytes` start with this frontend's image magic.
    fn detects(&self, bytes: &[u8]) -> bool;

    /// Decodes the image and lifts every function to SSA.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError`] for malformed containers or unliftable
    /// machine code.
    fn lift_bytes(&self, bytes: &[u8]) -> Result<Module, FrontendError>;
}
