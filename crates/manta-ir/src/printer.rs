//! Textual IR printer.
//!
//! The printed form is *canonical*: instruction results are renumbered
//! sequentially, and constants/addresses are printed inline at their use
//! sites. Consequently `print(parse(print(m))) == print(m)`, which the
//! property tests rely on. See [`crate::parser`] for the grammar.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::function::{Function, Terminator};
use crate::ids::ValueId;
use crate::inst::{Callee, InstKind};
use crate::module::Module;
use crate::types::Width;
use crate::value::{ConstKind, ValueKind};

fn width_token(w: Width) -> &'static str {
    match w {
        Width::W1 => "w1",
        Width::W8 => "w8",
        Width::W16 => "w16",
        Width::W32 => "w32",
        Width::W64 => "w64",
    }
}

/// Renders `module` in the canonical textual format.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", module.name());
    for e in module.externs() {
        let params: Vec<&str> = e.param_widths.iter().map(|&w| width_token(w)).collect();
        let ret = e.ret_width.map_or("void", width_token);
        let _ = writeln!(out, "extern {}({}) -> {}", e.name, params.join(", "), ret);
    }
    for g in module.globals() {
        let _ = writeln!(out, "global {} {}", g.name, g.size);
    }
    for f in module.functions() {
        out.push('\n');
        print_function(module, f, &mut out);
    }
    out
}

/// Renders one function in the canonical textual format — the same text
/// [`print_module`] emits for it. Callers (e.g. the analysis cache) use
/// this as a per-function content fingerprint source: two functions with
/// identical canonical text are behaviorally identical to every
/// analysis.
pub fn print_function_canonical(module: &Module, func: &Function) -> String {
    let mut out = String::new();
    print_function(module, func, &mut out);
    out
}

fn print_function(module: &Module, func: &Function, out: &mut String) {
    let params: Vec<&str> = func
        .params()
        .iter()
        .map(|&p| width_token(func.value(p).width))
        .collect();
    let ret = func.ret_width().map_or("void", width_token);
    let taken = if func.is_address_taken() {
        " addrtaken"
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "func {}({}) -> {}{} {{",
        func.name(),
        params.join(", "),
        ret,
        taken
    );

    // Renumber instruction results sequentially in block-traversal order.
    let mut names: HashMap<ValueId, usize> = HashMap::new();
    for block in func.blocks() {
        for &i in &block.insts {
            if let Some(d) = func.inst(i).kind.def() {
                let n = names.len();
                names.insert(d, n);
            }
        }
    }

    let operand = |v: ValueId| -> String {
        let val = func.value(v);
        match val.kind {
            ValueKind::Param { index } => format!("p{index}"),
            ValueKind::Inst { .. } => format!("v{}", names[&v]),
            ValueKind::Const(ConstKind::Int(k)) => {
                format!("{k}:i{}", val.width.bits())
            }
            ValueKind::Const(ConstKind::Float(x)) => format!("{x:?}:f{}", val.width.bits()),
            ValueKind::Const(ConstKind::Null) => "null".to_string(),
            ValueKind::Const(ConstKind::Undef) => "undef".to_string(),
            ValueKind::GlobalAddr(g) => format!("g.{}", module.global(g).name),
            ValueKind::FuncAddr(f) => format!("fn.{}", module.function(f).name()),
        }
    };
    let def_name = |v: ValueId| format!("v{}", names[&v]);

    for block in func.blocks() {
        let _ = writeln!(out, "{}:", block.id);
        for &i in &block.insts {
            let inst = func.inst(i);
            out.push_str("  ");
            match &inst.kind {
                InstKind::Copy { dst, src } => {
                    let w = width_token(func.value(*dst).width);
                    let _ = writeln!(out, "{} = copy.{} {}", def_name(*dst), w, operand(*src));
                }
                InstKind::Phi { dst, incomings } => {
                    let w = width_token(func.value(*dst).width);
                    let incs: Vec<String> = incomings
                        .iter()
                        .map(|(b, v)| format!("{}: {}", b, operand(*v)))
                        .collect();
                    let _ = writeln!(out, "{} = phi.{} [{}]", def_name(*dst), w, incs.join(", "));
                }
                InstKind::Load { dst, addr, width } => {
                    let _ = writeln!(
                        out,
                        "{} = load.{} {}",
                        def_name(*dst),
                        width_token(*width),
                        operand(*addr)
                    );
                }
                InstKind::Store { addr, val } => {
                    let _ = writeln!(out, "store {}, {}", operand(*addr), operand(*val));
                }
                InstKind::Alloca { dst, size } => {
                    let _ = writeln!(out, "{} = alloca {}", def_name(*dst), size);
                }
                InstKind::Gep { dst, base, offset } => {
                    let _ = writeln!(
                        out,
                        "{} = gep {}, {}",
                        def_name(*dst),
                        operand(*base),
                        offset
                    );
                }
                InstKind::BinOp { op, dst, lhs, rhs } => {
                    let w = width_token(func.value(*dst).width);
                    let _ = writeln!(
                        out,
                        "{} = {}.{} {}, {}",
                        def_name(*dst),
                        op.mnemonic(),
                        w,
                        operand(*lhs),
                        operand(*rhs)
                    );
                }
                InstKind::Cmp {
                    dst,
                    pred,
                    lhs,
                    rhs,
                } => {
                    let _ = writeln!(
                        out,
                        "{} = cmp.{} {}, {}",
                        def_name(*dst),
                        pred.mnemonic(),
                        operand(*lhs),
                        operand(*rhs)
                    );
                }
                InstKind::Call { dst, callee, args } => {
                    let args_s: Vec<String> = args.iter().map(|&a| operand(a)).collect();
                    let target = match callee {
                        Callee::Direct(f) => format!("@{}", module.function(*f).name()),
                        Callee::Extern(e) => format!("!{}", module.extern_decl(*e).name),
                        Callee::Indirect(v) => operand(*v),
                    };
                    let mnemonic = if matches!(callee, Callee::Indirect(_)) {
                        "icall"
                    } else {
                        "call"
                    };
                    match dst {
                        Some(d) => {
                            let w = width_token(func.value(*d).width);
                            let _ = writeln!(
                                out,
                                "{} = {mnemonic}.{} {}({})",
                                def_name(*d),
                                w,
                                target,
                                args_s.join(", ")
                            );
                        }
                        None => {
                            let _ = writeln!(out, "{mnemonic} {}({})", target, args_s.join(", "));
                        }
                    }
                }
            }
        }
        out.push_str("  ");
        match &block.term {
            Terminator::Br(b) => {
                let _ = writeln!(out, "br {b}");
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let _ = writeln!(out, "condbr {}, {then_bb}, {else_bb}", operand(*cond));
            }
            Terminator::Ret(Some(v)) => {
                let _ = writeln!(out, "ret {}", operand(*v));
            }
            Terminator::Ret(None) => {
                let _ = writeln!(out, "ret");
            }
            Terminator::Unreachable => {
                let _ = writeln!(out, "unreachable");
            }
        }
    }
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, CmpPred};

    #[test]
    fn prints_phi_and_special_constants() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W1], Some(Width::W64));
        let c = fb.param(0);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let n = fb.const_null();
        fb.br(j);
        fb.switch_to(e);
        let x = fb.const_float(2.5, Width::W64);
        fb.br(j);
        fb.switch_to(j);
        let m = fb.phi(&[(t, n), (e, x)], Width::W64);
        fb.ret(Some(m));
        mb.finish_function(fb);
        let text = print_module(&mb.finish());
        assert!(
            text.contains("v0 = phi.w64 [bb1: null, bb2: 2.5:f64]"),
            "{text}"
        );
        assert!(text.contains("condbr p0, bb1, bb2"), "{text}");
    }

    #[test]
    fn prints_representative_module() {
        let mut mb = ModuleBuilder::new("demo");
        let malloc = mb.extern_fn("malloc", &[], None);
        let g = mb.global("table", 32);
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let buf = fb.call_extern(malloc, &[p], Some(Width::W64)).unwrap();
        let ga = fb.global_addr(g);
        fb.store(ga, buf);
        let eight = fb.const_int(8, Width::W64);
        let end = fb.binop(BinOp::Add, buf, eight, Width::W64);
        let c = fb.cmp(CmpPred::Ne, end, buf);
        let done = fb.new_block();
        fb.cond_br(c, done, done);
        fb.switch_to(done);
        fb.ret(Some(end));
        mb.finish_function(fb);
        let text = print_module(&mb.finish());
        assert!(text.contains("module demo"));
        assert!(text.contains("extern malloc(w64) -> w64"));
        assert!(text.contains("global table 32"));
        assert!(text.contains("v0 = call.w64 !malloc(p0)"));
        assert!(text.contains("store g.table, v0"));
        assert!(text.contains("v1 = add.w64 v0, 8:i64"));
        assert!(text.contains("v2 = cmp.ne v1, v0"));
        assert!(text.contains("condbr v2, bb1, bb1"));
        assert!(text.contains("ret v1"));
    }
}
