//! Property tests: arbitrary instruction streams survive the SBF
//! encode/decode roundtrip, and structurally valid programs always lift to
//! verifier-clean IR.

use proptest::prelude::*;

use manta_ir::{BinOp, CmpPred, Width};
use manta_isa::{decode, encode, Image, ImageExtern, ImageFunction, ImageGlobal, MachInst, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::And),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
    ]
}

fn arb_pred() -> impl Strategy<Value = CmpPred> {
    prop_oneof![
        Just(CmpPred::Eq),
        Just(CmpPred::Ne),
        Just(CmpPred::Lt),
        Just(CmpPred::Ge),
    ]
}

/// Any instruction, with targets/indexes bounded so programs can be made
/// structurally valid.
fn arb_inst(code_len: u32) -> impl Strategy<Value = MachInst> {
    prop_oneof![
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| MachInst::Mov { rd, rs }),
        (arb_reg(), any::<i64>()).prop_map(|(rd, imm)| MachInst::MovImm { rd, imm }),
        (arb_reg(), -1e9f64..1e9).prop_map(|(rd, imm)| MachInst::MovFloat { rd, imm }),
        (arb_binop(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs, rt)| MachInst::Bin { op, rd, rs, rt }),
        (arb_pred(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(pred, rd, rs, rt)| MachInst::Cmp { pred, rd, rs, rt }),
        (arb_width(), arb_reg(), arb_reg(), 0u32..64)
            .prop_map(|(width, rd, rs, off)| MachInst::Load { width, rd, rs, off }),
        (arb_width(), arb_reg(), 0u32..64, arb_reg())
            .prop_map(|(width, rd, off, rs)| MachInst::Store { width, rd, off, rs }),
        (arb_reg(), 1u32..128).prop_map(|(rd, size)| MachInst::Salloc { rd, size }),
        (arb_reg(), 0..code_len).prop_map(|(rs, target)| MachInst::Brz { rs, target }),
        (0..code_len).prop_map(|target| MachInst::Jmp { target }),
        Just(MachInst::Ret),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode → decode is the identity on arbitrary images.
    #[test]
    fn sbf_roundtrip_arbitrary_images(
        insts in prop::collection::vec(arb_inst(8), 1..24),
        nparams in 0u8..6,
        has_ret in any::<bool>(),
        gsize in 1u64..512,
    ) {
        let mut code = insts;
        code.push(MachInst::Ret); // ensure at least one terminator
        let image = Image {
            name: "prop".into(),
            externs: vec![ImageExtern { name: "malloc".into(), nparams: 1, has_ret: true }],
            globals: vec![ImageGlobal { name: "g".into(), size: gsize }],
            functions: vec![ImageFunction { name: "f".into(), nparams, has_ret, code }],
        };
        let bytes = encode(&image);
        let back = decode(&bytes).expect("well-formed image decodes");
        prop_assert_eq!(image, back);
    }

    /// Valid branch targets always lift to verifier-clean SSA, loops and
    /// all (the lifter is total on structurally valid code).
    #[test]
    fn valid_programs_always_lift(
        body in prop::collection::vec(arb_inst(6), 4..12),
        nparams in 0u8..4,
    ) {
        let mut code = body;
        code.push(MachInst::Ret);
        let len = code.len() as u32;
        // Clamp targets into range.
        for inst in &mut code {
            match inst {
                MachInst::Jmp { target } | MachInst::Brz { target, .. } => {
                    *target %= len;
                }
                _ => {}
            }
        }
        let image = Image {
            name: "prop".into(),
            externs: vec![],
            globals: vec![ImageGlobal { name: "g".into(), size: 8 }],
            functions: vec![ImageFunction { name: "f".into(), nparams, has_ret: true, code }],
        };
        let module = manta_isa::lift::lift(&image).expect("valid code lifts");
        manta_ir::verify::verify_module(&module).expect("lifted module verifies");
    }
}
