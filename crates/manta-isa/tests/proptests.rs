//! Property tests: arbitrary instruction streams survive the SBF
//! encode/decode roundtrip, and structurally valid programs always lift to
//! verifier-clean IR.
//!
//! `proptest` is unavailable offline, so these run the same properties
//! over a deterministic seeded stream: every case is reproducible from its
//! printed seed.

use manta_ir::{BinOp, CmpPred, Width};
use manta_isa::{decode, encode, Image, ImageExtern, ImageFunction, ImageGlobal, MachInst, Reg};

/// SplitMix64 (the shared copy in `manta-store`): tiny, deterministic,
/// and statistically fine for test-case generation.
struct Gen(manta_store::hash::SplitMix64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(manta_store::hash::SplitMix64(seed))
    }

    fn next(&mut self) -> u64 {
        self.0.next()
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn reg(&mut self) -> Reg {
        Reg(self.below(16) as u8)
    }

    fn width(&mut self) -> Width {
        [Width::W8, Width::W16, Width::W32, Width::W64][self.below(4) as usize]
    }

    fn binop(&mut self) -> BinOp {
        [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::And,
            BinOp::Xor,
            BinOp::Shl,
        ][self.below(7) as usize]
    }

    fn pred(&mut self) -> CmpPred {
        [CmpPred::Eq, CmpPred::Ne, CmpPred::Lt, CmpPred::Ge][self.below(4) as usize]
    }

    /// Any instruction, with targets/indexes bounded so programs can be
    /// made structurally valid.
    fn inst(&mut self, code_len: u32) -> MachInst {
        match self.below(11) {
            0 => MachInst::Mov {
                rd: self.reg(),
                rs: self.reg(),
            },
            1 => MachInst::MovImm {
                rd: self.reg(),
                imm: self.next() as i64,
            },
            2 => MachInst::MovFloat {
                rd: self.reg(),
                imm: (self.below(2_000_000_000) as f64) - 1e9,
            },
            3 => MachInst::Bin {
                op: self.binop(),
                rd: self.reg(),
                rs: self.reg(),
                rt: self.reg(),
            },
            4 => MachInst::Cmp {
                pred: self.pred(),
                rd: self.reg(),
                rs: self.reg(),
                rt: self.reg(),
            },
            5 => MachInst::Load {
                width: self.width(),
                rd: self.reg(),
                rs: self.reg(),
                off: self.below(64) as u32,
            },
            6 => MachInst::Store {
                width: self.width(),
                rd: self.reg(),
                off: self.below(64) as u32,
                rs: self.reg(),
            },
            7 => MachInst::Salloc {
                rd: self.reg(),
                size: 1 + self.below(127) as u32,
            },
            8 => MachInst::Brz {
                rs: self.reg(),
                target: self.below(code_len as u64) as u32,
            },
            9 => MachInst::Jmp {
                target: self.below(code_len as u64) as u32,
            },
            _ => MachInst::Ret,
        }
    }
}

/// Encode → decode is the identity on arbitrary images.
#[test]
fn sbf_roundtrip_arbitrary_images() {
    for seed in 0..128u64 {
        let mut g = Gen::new(seed);
        let n = 1 + g.below(23) as usize;
        let mut code: Vec<MachInst> = (0..n).map(|_| g.inst(8)).collect();
        code.push(MachInst::Ret); // ensure at least one terminator
        let image = Image {
            name: "prop".into(),
            externs: vec![ImageExtern {
                name: "malloc".into(),
                nparams: 1,
                has_ret: true,
            }],
            globals: vec![ImageGlobal {
                name: "g".into(),
                size: 1 + g.below(511),
            }],
            functions: vec![ImageFunction {
                name: "f".into(),
                nparams: g.below(6) as u8,
                has_ret: g.below(2) == 1,
                code,
            }],
        };
        let bytes = encode(&image);
        let back = decode(&bytes).expect("well-formed image decodes");
        assert_eq!(image, back, "seed {seed}");
    }
}

/// Valid branch targets always lift to verifier-clean SSA, loops and all
/// (the lifter is total on structurally valid code).
#[test]
fn valid_programs_always_lift() {
    for seed in 0..128u64 {
        let mut g = Gen::new(seed ^ 0xbeef);
        let n = 4 + g.below(8) as usize;
        let mut code: Vec<MachInst> = (0..n).map(|_| g.inst(6)).collect();
        code.push(MachInst::Ret);
        let len = code.len() as u32;
        // Clamp targets into range.
        for inst in &mut code {
            match inst {
                MachInst::Jmp { target } | MachInst::Brz { target, .. } => {
                    *target %= len;
                }
                _ => {}
            }
        }
        let image = Image {
            name: "prop".into(),
            externs: vec![],
            globals: vec![ImageGlobal {
                name: "g".into(),
                size: 8,
            }],
            functions: vec![ImageFunction {
                name: "f".into(),
                nparams: g.below(4) as u8,
                has_ret: true,
                code,
            }],
        };
        let module = manta_isa::lift::lift(&image).expect("valid code lifts");
        manta_ir::verify::verify_module(&module)
            .unwrap_or_else(|e| panic!("seed {seed}: lifted module fails verify: {e:?}"));
    }
}
