//! Lifting SB-ISA machine code to `manta-ir` SSA.
//!
//! This is the reproduction's counterpart of the paper's RetDec stage:
//! "we utilize binary lifter to translate binary code to LLVM IR, in which
//! binary registers and arguments are translated to SSA value[s]" (§3).
//!
//! Basic blocks are recovered from branch targets, and registers are
//! renamed to SSA values with the sealed-block algorithm of Braun et al.
//! (all predecessors are known up front, so every block is sealed): a
//! register read first looks for a block-local definition, then recurses
//! into predecessors, inserting phis at joins. No type information exists
//! at this level — every lifted value carries only its machine width.

use std::collections::HashMap;
use std::fmt;

use manta_ir::{
    BlockId, Callee, ConstKind, Frontend, FrontendError, FuncId, Function, InstKind, Module,
    SsaBuilder, Terminator, Value, ValueId, ValueKind, Width,
};

use crate::image::{Image, ImageError};
use crate::inst::{MachInst, Reg};

/// Lifting failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LiftError {
    /// Description.
    pub message: String,
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lift error: {}", self.message)
    }
}

impl std::error::Error for LiftError {}

impl From<ImageError> for LiftError {
    fn from(e: ImageError) -> LiftError {
        LiftError { message: e.message }
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, LiftError> {
    Err(LiftError {
        message: message.into(),
    })
}

/// Lifts a decoded image to an IR module.
///
/// # Errors
///
/// Returns [`LiftError`] when the machine code is structurally invalid
/// (out-of-range targets or indexes, too many register arguments).
pub fn lift(image: &Image) -> Result<Module, LiftError> {
    let mut module = Module::new(image.name.clone());
    // Externs first, preserving image order so indexes line up.
    for e in &image.externs {
        let fallback: Vec<Width> = vec![Width::W64; e.nparams as usize];
        let ret = if e.has_ret { Some(Width::W64) } else { None };
        module.declare_extern(&e.name, &fallback, ret);
    }
    for g in &image.globals {
        module.push_global_named(&g.name, g.size);
    }
    // Function shells first (direct calls may reference any index).
    for (i, f) in image.functions.iter().enumerate() {
        if f.nparams as usize > 6 {
            return err(format!("function {} has too many parameters", f.name));
        }
        let params = vec![Width::W64; f.nparams as usize];
        let ret = if f.has_ret { Some(Width::W64) } else { None };
        let func = Function::new(FuncId::from_index(i), f.name.clone(), &params, ret);
        module.push_function_raw(func);
    }
    // Lift bodies.
    for (i, f) in image.functions.iter().enumerate() {
        let lifted = Lifter::new(&module, image, f)?.run()?;
        *module.function_mut(FuncId::from_index(i)) = lifted;
    }
    // Address-taken marking (scan all code for lea.f) — after body
    // installation so the flag survives on the final functions.
    for f in &image.functions {
        for inst in &f.code {
            if let MachInst::LeaFunc { index, .. } = inst {
                if *index as usize >= image.functions.len() {
                    return err(format!("lea.f references function {index} out of range"));
                }
                module
                    .function_mut(FuncId::from_index(*index as usize))
                    .set_address_taken(true);
            }
        }
    }
    manta_ir::verify::verify_module(&module).map_err(|e| LiftError {
        message: format!("lifted module failed verification: {e}"),
    })?;
    Ok(module)
}

struct Lifter<'a> {
    module: &'a Module,
    image: &'a Image,
    src: &'a crate::image::ImageFunction,
    func: Function,
    /// Machine instruction index → owning block.
    block_of: Vec<BlockId>,
    /// Block → leader instruction index.
    leader_of: HashMap<BlockId, usize>,
    /// Machine-CFG predecessors per block.
    preds: HashMap<BlockId, Vec<BlockId>>,
    /// Shared Braun-style register renamer (`manta_ir::SsaBuilder`).
    ssa: SsaBuilder<Reg>,
}

impl<'a> Lifter<'a> {
    fn new(
        module: &'a Module,
        image: &'a Image,
        src: &'a crate::image::ImageFunction,
    ) -> Result<Lifter<'a>, LiftError> {
        let fid = module
            .functions()
            .find(|f| f.name() == src.name)
            .expect("shell exists")
            .id();
        let params = vec![Width::W64; src.nparams as usize];
        let ret = if src.has_ret { Some(Width::W64) } else { None };
        let func = Function::new(fid, src.name.clone(), &params, ret);
        Ok(Lifter {
            module,
            image,
            src,
            func,
            block_of: Vec::new(),
            leader_of: HashMap::new(),
            preds: HashMap::new(),
            ssa: SsaBuilder::new(HashMap::new()),
        })
    }

    fn run(mut self) -> Result<Function, LiftError> {
        let code = &self.src.code;
        if code.is_empty() {
            // Empty body: entry stays `unreachable`.
            return Ok(self.func);
        }
        // 1. Leaders: index 0, branch targets, fallthroughs of terminators.
        let n = code.len();
        let mut is_leader = vec![false; n];
        is_leader[0] = true;
        for (i, inst) in code.iter().enumerate() {
            for t in inst.targets() {
                if t as usize >= n {
                    return err(format!(
                        "branch target {t} out of range in {}",
                        self.src.name
                    ));
                }
                is_leader[t as usize] = true;
            }
            if inst.is_terminator() && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }
        // 2. Blocks in leader order; entry (index 0) is the existing bb0.
        self.block_of = vec![BlockId(0); n];
        let mut current = self.func.entry();
        self.leader_of.insert(current, 0);
        for (i, &leader) in is_leader.iter().enumerate() {
            if leader && i != 0 {
                current = self.func.add_block();
                self.leader_of.insert(current, i);
            }
            self.block_of[i] = current;
        }
        // 3. Machine CFG edges (for phi placement).
        for (i, inst) in code.iter().enumerate() {
            let b = self.block_of[i];
            let mut succs: Vec<usize> = Vec::new();
            match inst {
                MachInst::Jmp { target } => succs.push(*target as usize),
                MachInst::Brz { target, .. } => {
                    succs.push(*target as usize);
                    if i + 1 < n {
                        succs.push(i + 1);
                    }
                }
                MachInst::Ret => {}
                _ => {
                    if i + 1 < n && is_leader[i + 1] {
                        succs.push(i + 1);
                    }
                }
            }
            let ends_block = inst.is_terminator() || (i + 1 < n && is_leader[i + 1]);
            if ends_block {
                for s in succs {
                    let sb = self.block_of[s];
                    self.preds.entry(sb).or_default().push(b);
                }
            }
        }
        // 4. Translate in block order (leaders ascending = machine order).
        // Register reads without a block-local definition create *pending*
        // start-of-block phis; their operands are resolved in step 5 once
        // every block's end state is sealed (two-phase Braun-style SSA —
        // needed because loop back edges flow from not-yet-translated
        // blocks). The renaming machinery itself is the shared
        // `manta_ir::SsaBuilder`.
        self.ssa = SsaBuilder::new(self.preds.clone());
        let blocks: Vec<BlockId> = (0..self.func.block_count())
            .map(|i| BlockId(i as u32))
            .collect();
        for &b in &blocks {
            let seed: Vec<(Reg, ValueId)> = if b == self.func.entry() {
                self.func
                    .params()
                    .iter()
                    .enumerate()
                    .map(|(idx, &p)| (Reg::arg(idx), p))
                    .collect()
            } else {
                Vec::new()
            };
            self.ssa.begin_block(seed);
            let start = self.leader_of[&b];
            let mut i = start;
            let mut terminated = false;
            while i < n && self.block_of[i] == b {
                let inst = code[i];
                self.translate(b, i, &inst, &mut terminated)?;
                i += 1;
            }
            if !terminated {
                // Fallthrough into the next block.
                if i < n {
                    self.func
                        .replace_terminator(b, Terminator::Br(self.block_of[i]));
                } else {
                    self.func.replace_terminator(b, Terminator::Unreachable);
                }
            }
            self.ssa.end_block(b);
        }
        // 5. Resolve pending phis against sealed end-of-block states.
        self.ssa.finish(&mut self.func);
        manta_telemetry::counter("lift.insts_decoded", n as u64);
        Ok(self.func)
    }

    fn write(&mut self, _b: BlockId, r: Reg, v: ValueId) {
        self.ssa.write(r, v);
    }

    /// Reads `r` in the block being translated.
    fn read(&mut self, b: BlockId, r: Reg) -> ValueId {
        self.ssa.read(&mut self.func, b, r)
    }

    fn const_int(&mut self, v: i64, width: Width) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Int(v)),
            width,
        })
    }

    fn def_value(&mut self, width: Width) -> (ValueId, manta_ir::InstId) {
        let next = manta_ir::InstId::from_index(self.func.inst_count());
        let v = self.func.add_value(Value {
            kind: ValueKind::Inst { def: next },
            width,
        });
        (v, next)
    }

    fn emit(&mut self, b: BlockId, width: Width, f: impl FnOnce(ValueId) -> InstKind) -> ValueId {
        let (v, expected) = self.def_value(width);
        let got = self.func.append_inst(b, f(v));
        debug_assert_eq!(got, expected);
        v
    }

    #[allow(clippy::too_many_lines)]
    fn translate(
        &mut self,
        b: BlockId,
        idx: usize,
        inst: &MachInst,
        terminated: &mut bool,
    ) -> Result<(), LiftError> {
        let n = self.src.code.len();
        match *inst {
            MachInst::Mov { rd, rs } => {
                let src = self.read(b, rs);
                let v = self.emit(b, self.func.value(src).width, |dst| InstKind::Copy {
                    dst,
                    src,
                });
                self.write(b, rd, v);
            }
            MachInst::MovImm { rd, imm } => {
                let v = self.const_int(imm, Width::W64);
                self.write(b, rd, v);
            }
            MachInst::MovFloat { rd, imm } => {
                let v = self.func.add_value(Value {
                    kind: ValueKind::Const(ConstKind::Float(imm)),
                    width: Width::W64,
                });
                self.write(b, rd, v);
            }
            MachInst::Bin { op, rd, rs, rt } => {
                let lhs = self.read(b, rs);
                let rhs = self.read(b, rt);
                let v = self.emit(b, Width::W64, |dst| InstKind::BinOp { op, dst, lhs, rhs });
                self.write(b, rd, v);
            }
            MachInst::Cmp { pred, rd, rs, rt } => {
                let lhs = self.read(b, rs);
                let rhs = self.read(b, rt);
                let v = self.emit(b, Width::W1, |dst| InstKind::Cmp {
                    dst,
                    pred,
                    lhs,
                    rhs,
                });
                self.write(b, rd, v);
            }
            MachInst::Load { width, rd, rs, off } => {
                let mut addr = self.read(b, rs);
                if off != 0 {
                    addr = self.emit(b, Width::W64, |dst| InstKind::Gep {
                        dst,
                        base: addr,
                        offset: off as u64,
                    });
                }
                let v = self.emit(b, width, |dst| InstKind::Load { dst, addr, width });
                self.write(b, rd, v);
            }
            MachInst::Store { width, rd, off, rs } => {
                let mut addr = self.read(b, rd);
                if off != 0 {
                    addr = self.emit(b, Width::W64, |dst| InstKind::Gep {
                        dst,
                        base: addr,
                        offset: off as u64,
                    });
                }
                let val = self.read(b, rs);
                self.func.append_inst(b, InstKind::Store { addr, val });
                let _ = width;
            }
            MachInst::Salloc { rd, size } => {
                let v = self.emit(b, Width::W64, |dst| InstKind::Alloca {
                    dst,
                    size: size as u64,
                });
                self.write(b, rd, v);
            }
            MachInst::LeaGlobal { rd, index } => {
                if index as usize >= self.image.globals.len() {
                    return err(format!("global index {index} out of range"));
                }
                let v = self.func.add_value(Value {
                    kind: ValueKind::GlobalAddr(manta_ir::GlobalId(index)),
                    width: Width::W64,
                });
                self.write(b, rd, v);
            }
            MachInst::LeaFunc { rd, index } => {
                let v = self.func.add_value(Value {
                    kind: ValueKind::FuncAddr(FuncId(index)),
                    width: Width::W64,
                });
                self.write(b, rd, v);
            }
            MachInst::Call { index, nargs } => {
                if index as usize >= self.image.functions.len() {
                    return err(format!("call index {index} out of range"));
                }
                let target = &self.image.functions[index as usize];
                if nargs != target.nparams {
                    return err(format!(
                        "call to {} passes {nargs} args, expects {}",
                        target.name, target.nparams
                    ));
                }
                let args: Vec<ValueId> = (0..nargs as usize)
                    .map(|i| self.read(b, Reg::arg(i)))
                    .collect();
                if target.has_ret {
                    let v = self.emit(b, Width::W64, |dst| InstKind::Call {
                        dst: Some(dst),
                        callee: Callee::Direct(FuncId(index)),
                        args: args.clone(),
                    });
                    self.write(b, Reg::RET, v);
                } else {
                    self.func.append_inst(
                        b,
                        InstKind::Call {
                            dst: None,
                            callee: Callee::Direct(FuncId(index)),
                            args,
                        },
                    );
                }
            }
            MachInst::ECall { index, nargs } => {
                if index as usize >= self.image.externs.len() {
                    return err(format!("ecall index {index} out of range"));
                }
                let decl = self.module.extern_decl(manta_ir::ExternId(index));
                let args: Vec<ValueId> = (0..nargs as usize)
                    .map(|i| self.read(b, Reg::arg(i)))
                    .collect();
                if let Some(w) = decl.ret_width {
                    let v = self.emit(b, w, |dst| InstKind::Call {
                        dst: Some(dst),
                        callee: Callee::Extern(manta_ir::ExternId(index)),
                        args: args.clone(),
                    });
                    self.write(b, Reg::RET, v);
                } else {
                    self.func.append_inst(
                        b,
                        InstKind::Call {
                            dst: None,
                            callee: Callee::Extern(manta_ir::ExternId(index)),
                            args,
                        },
                    );
                }
            }
            MachInst::ICall { rs, nargs, ret } => {
                let fp = self.read(b, rs);
                let args: Vec<ValueId> = (0..nargs as usize)
                    .map(|i| self.read(b, Reg::arg(i)))
                    .collect();
                if ret {
                    let v = self.emit(b, Width::W64, |dst| InstKind::Call {
                        dst: Some(dst),
                        callee: Callee::Indirect(fp),
                        args: args.clone(),
                    });
                    self.write(b, Reg::RET, v);
                } else {
                    self.func.append_inst(
                        b,
                        InstKind::Call {
                            dst: None,
                            callee: Callee::Indirect(fp),
                            args,
                        },
                    );
                }
            }
            MachInst::Jmp { target } => {
                let tb = self.block_of[target as usize];
                self.func.replace_terminator(b, Terminator::Br(tb));
                *terminated = true;
            }
            MachInst::Brz { rs, target } => {
                let cond_src = self.read(b, rs);
                // CondBr wants an i1; synthesize `cond = (rs != 0)` for
                // wider registers.
                let cond = if self.func.value(cond_src).width == Width::W1 {
                    cond_src
                } else {
                    let zero = self.const_int(0, self.func.value(cond_src).width);
                    self.emit(b, Width::W1, |dst| InstKind::Cmp {
                        dst,
                        pred: manta_ir::CmpPred::Ne,
                        lhs: cond_src,
                        rhs: zero,
                    })
                };
                let else_bb = self.block_of[target as usize];
                let then_bb = if idx + 1 < n {
                    self.block_of[idx + 1]
                } else {
                    // Branch at the very end: the fallthrough does not
                    // exist; both arms go to the target.
                    else_bb
                };
                self.func.replace_terminator(
                    b,
                    Terminator::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    },
                );
                *terminated = true;
            }
            MachInst::Ret => {
                let val = if self.src.has_ret {
                    Some(self.read(b, Reg::RET))
                } else {
                    None
                };
                self.func.replace_terminator(b, Terminator::Ret(val));
                *terminated = true;
            }
        }
        Ok(())
    }
}

/// The SB-ISA frontend plugin: recognizes SBF images by their `SBF1`
/// magic and lifts them via [`lift`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SbFrontend;

impl Frontend for SbFrontend {
    fn name(&self) -> &'static str {
        "sb"
    }

    fn describe(&self) -> &'static str {
        "SB-ISA synthetic register machine (SBF container, magic \"SBF1\")"
    }

    fn detects(&self, bytes: &[u8]) -> bool {
        bytes.starts_with(crate::image::MAGIC)
    }

    fn lift_bytes(&self, bytes: &[u8]) -> Result<Module, FrontendError> {
        let image = crate::image::decode(bytes).map_err(|e| FrontendError::new(e.to_string()))?;
        lift(&image).map_err(|e| FrontendError::new(e.message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn lift_text(text: &str) -> Module {
        lift(&assemble(text).unwrap()).unwrap()
    }

    #[test]
    fn lifts_straightline_function() {
        let m = lift_text(
            "module m\nextern malloc, 1, ret\nfunc f(1) -> ret {\n    mov r2, r1\n    ecall malloc, 1\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        assert_eq!(f.params().len(), 1);
        assert!(f.insts().any(|i| matches!(i.kind, InstKind::Call { .. })));
        assert!(f
            .blocks()
            .any(|b| matches!(b.term, Terminator::Ret(Some(_)))));
    }

    #[test]
    fn lifts_branch_with_phi() {
        // r2 = 1 on one path, 2 on the other; returned after the join.
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    brz r1, zero\n    movi r2, 1\n    jmp done\nzero:\n    movi r2, 2\ndone:\n    mov r0, r2\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        let phis = f
            .insts()
            .filter(|i| matches!(i.kind, InstKind::Phi { .. }))
            .count();
        assert_eq!(phis, 1, "one phi for r2 at the join");
    }

    #[test]
    fn lifts_loop_with_phi() {
        let m = lift_text(
            "module m\nfunc count(1) -> ret {\nhead:\n    brz r1, done\n    movi r2, 1\n    sub r1, r1, r2\n    jmp head\ndone:\n    mov r0, r1\n    ret\n}\n",
        );
        let f = m.function_by_name("count").unwrap();
        assert!(
            f.insts().any(|i| matches!(i.kind, InstKind::Phi { .. })),
            "loop-carried r1 needs a phi"
        );
        manta_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn undefined_register_reads_become_undef() {
        let m = lift_text("module m\nfunc f(0) -> ret {\n    mov r0, r9\n    ret\n}\n");
        let f = m.function_by_name("f").unwrap();
        assert!(f
            .values()
            .any(|(_, v)| matches!(v.kind, ValueKind::Const(ConstKind::Undef))));
    }

    #[test]
    fn lea_f_marks_address_taken() {
        let m = lift_text(
            "module m\nfunc helper(0) -> void {\n    ret\n}\nfunc f(0) -> void {\n    lea.f r1, helper\n    icall r1, 0\n    ret\n}\n",
        );
        assert!(m.function_by_name("helper").unwrap().is_address_taken());
        assert!(!m.function_by_name("f").unwrap().is_address_taken());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let text = "module m\nfunc g(2) -> void {\n    ret\n}\nfunc f(0) -> void {\n    call g, 1\n    ret\n}\n";
        let e = lift(&assemble(text).unwrap()).unwrap_err();
        assert!(e.message.contains("passes 1 args"), "{e}");
    }

    #[test]
    fn memory_offsets_lift_to_gep() {
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    ld.w32 r0, [r1+12]\n    st.w64 [r1+8], r0\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        let geps = f
            .insts()
            .filter(|i| matches!(i.kind, InstKind::Gep { .. }))
            .count();
        assert_eq!(geps, 2);
        // The load destination carries the access width.
        assert!(f.insts().any(|i| matches!(
            i.kind,
            InstKind::Load {
                width: Width::W32,
                ..
            }
        )));
    }
}
