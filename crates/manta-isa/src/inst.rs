//! The SB-ISA machine instruction set.
//!
//! A load/store register machine with 16 general-purpose 64-bit registers.
//! Calling convention: arguments in `r1..r6`, return value in `r0`.
//! Control flow uses instruction-index targets (the assembler resolves
//! labels).

use std::fmt;

use manta_ir::{BinOp, CmpPred, Width};

/// A general-purpose register `r0`–`r15`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of general-purpose registers.
    pub const COUNT: usize = 16;
    /// The return-value register.
    pub const RET: Reg = Reg(0);

    /// The register carrying argument `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`; SB-ISA passes at most six register arguments.
    pub fn arg(i: usize) -> Reg {
        assert!(i < 6, "SB-ISA passes at most 6 register arguments");
        Reg(1 + i as u8)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One machine instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MachInst {
    /// `mov rd, rs`.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `movi rd, imm` — load a 64-bit immediate.
    MovImm {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `movf rd, imm` — load a floating immediate (bit pattern).
    MovFloat {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: f64,
    },
    /// `<op> rd, rs, rt` — binary arithmetic.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `cmp.<pred> rd, rs, rt`.
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Destination (0/1).
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `ld.<w> rd, [rs + off]`.
    Load {
        /// Access width.
        width: Width,
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs: Reg,
        /// Byte offset.
        off: u32,
    },
    /// `st.<w> [rd + off], rs`.
    Store {
        /// Access width.
        width: Width,
        /// Base address register.
        rd: Reg,
        /// Byte offset.
        off: u32,
        /// Stored register.
        rs: Reg,
    },
    /// `salloc rd, size` — reserve a stack slot, address into `rd`.
    /// (Stands in for frame-pointer arithmetic; keeps slots identifiable.)
    Salloc {
        /// Destination (slot address).
        rd: Reg,
        /// Slot size in bytes.
        size: u32,
    },
    /// `lea.g rd, <global>` — address of a global.
    LeaGlobal {
        /// Destination.
        rd: Reg,
        /// Global index in the image.
        index: u32,
    },
    /// `lea.f rd, <func>` — address of a function (makes it address-taken).
    LeaFunc {
        /// Destination.
        rd: Reg,
        /// Function index in the image.
        index: u32,
    },
    /// `call <func>, nargs` — direct call; args in `r1..`, result in `r0`
    /// when the callee returns a value.
    Call {
        /// Callee function index.
        index: u32,
        /// Number of register arguments.
        nargs: u8,
    },
    /// `ecall <extern>, nargs` — call a declared external.
    ECall {
        /// Extern index.
        index: u32,
        /// Number of register arguments.
        nargs: u8,
    },
    /// `icall rs, nargs[, ret]` — indirect call through `rs`.
    ICall {
        /// Function-pointer register.
        rs: Reg,
        /// Number of register arguments.
        nargs: u8,
        /// Whether the call consumes a return value in `r0`.
        ret: bool,
    },
    /// `jmp <target>` — unconditional branch to an instruction index.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// `brz rs, <target>` — branch to `target` when `rs` is zero, else
    /// fall through.
    Brz {
        /// Condition register.
        rs: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// `ret` — return (value in `r0` if the function returns one).
    Ret,
}

impl MachInst {
    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            MachInst::Jmp { .. } | MachInst::Brz { .. } | MachInst::Ret
        )
    }

    /// Branch targets referenced by this instruction.
    pub fn targets(&self) -> Vec<u32> {
        match self {
            MachInst::Jmp { target } => vec![*target],
            MachInst::Brz { target, .. } => vec![*target],
            _ => vec![],
        }
    }
}

impl fmt::Display for MachInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachInst::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            MachInst::MovImm { rd, imm } => write!(f, "movi {rd}, {imm}"),
            MachInst::MovFloat { rd, imm } => write!(f, "movf {rd}, {imm:?}"),
            MachInst::Bin { op, rd, rs, rt } => {
                write!(f, "{} {rd}, {rs}, {rt}", op.mnemonic())
            }
            MachInst::Cmp { pred, rd, rs, rt } => {
                write!(f, "cmp.{} {rd}, {rs}, {rt}", pred.mnemonic())
            }
            MachInst::Load { width, rd, rs, off } => {
                write!(f, "ld.w{} {rd}, [{rs}+{off}]", width.bits())
            }
            MachInst::Store { width, rd, off, rs } => {
                write!(f, "st.w{} [{rd}+{off}], {rs}", width.bits())
            }
            MachInst::Salloc { rd, size } => write!(f, "salloc {rd}, {size}"),
            MachInst::LeaGlobal { rd, index } => write!(f, "lea.g {rd}, {index}"),
            MachInst::LeaFunc { rd, index } => write!(f, "lea.f {rd}, {index}"),
            MachInst::Call { index, nargs } => write!(f, "call {index}, {nargs}"),
            MachInst::ECall { index, nargs } => write!(f, "ecall {index}, {nargs}"),
            MachInst::ICall { rs, nargs, ret } => {
                write!(f, "icall {rs}, {nargs}{}", if *ret { ", ret" } else { "" })
            }
            MachInst::Jmp { target } => write!(f, "jmp {target}"),
            MachInst::Brz { rs, target } => write!(f, "brz {rs}, {target}"),
            MachInst::Ret => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators_and_targets() {
        assert!(MachInst::Ret.is_terminator());
        assert!(MachInst::Jmp { target: 3 }.is_terminator());
        assert!(MachInst::Brz {
            rs: Reg(2),
            target: 9
        }
        .is_terminator());
        assert!(!MachInst::Mov {
            rd: Reg(0),
            rs: Reg(1)
        }
        .is_terminator());
        assert_eq!(
            MachInst::Brz {
                rs: Reg(2),
                target: 9
            }
            .targets(),
            vec![9]
        );
        assert!(MachInst::Ret.targets().is_empty());
    }

    #[test]
    fn arg_registers() {
        assert_eq!(Reg::arg(0), Reg(1));
        assert_eq!(Reg::arg(5), Reg(6));
        assert_eq!(Reg::RET, Reg(0));
    }

    #[test]
    #[should_panic(expected = "at most 6")]
    fn too_many_args_panics() {
        let _ = Reg::arg(6);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            MachInst::Load {
                width: Width::W32,
                rd: Reg(3),
                rs: Reg(4),
                off: 8
            }
            .to_string(),
            "ld.w32 r3, [r4+8]"
        );
        assert_eq!(
            MachInst::Bin {
                op: BinOp::Add,
                rd: Reg(1),
                rs: Reg(2),
                rt: Reg(3)
            }
            .to_string(),
            "add r1, r2, r3"
        );
    }
}
