//! The SBF ("simulated binary format") container.
//!
//! An [`Image`] is the in-memory form of a whole program: external
//! declarations, global regions, and functions with their machine code.
//! [`encode`]/[`decode`] serialize it to/from bytes — the artifact a
//! "stripped binary" is in this reproduction. Function and global *names*
//! are carried for evaluation bookkeeping (the ground-truth oracle keys on
//! them), mirroring the paper keeping `.debug_line` only to score results;
//! the lifter and analyses never consume types from the image because the
//! format has none.

use std::fmt;

use manta_ir::{BinOp, CmpPred, Width};

use crate::inst::{MachInst, Reg};

/// Magic bytes identifying an SBF image.
pub const MAGIC: &[u8; 4] = b"SBF1";

/// An external declaration in an image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageExtern {
    /// Symbol name.
    pub name: String,
    /// Parameter count (ABI-visible).
    pub nparams: u8,
    /// Whether a value is returned.
    pub has_ret: bool,
}

/// A global region in an image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageGlobal {
    /// Symbol name.
    pub name: String,
    /// Region size in bytes.
    pub size: u64,
}

/// A function in an image.
#[derive(Clone, PartialEq, Debug)]
pub struct ImageFunction {
    /// Symbol name.
    pub name: String,
    /// Number of register parameters (`r1..`).
    pub nparams: u8,
    /// Whether the function returns a value in `r0`.
    pub has_ret: bool,
    /// Machine code.
    pub code: Vec<MachInst>,
}

/// A whole SB-ISA program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Image {
    /// Program name.
    pub name: String,
    /// External declarations.
    pub externs: Vec<ImageExtern>,
    /// Globals.
    pub globals: Vec<ImageGlobal>,
    /// Functions.
    pub functions: Vec<ImageFunction>,
}

impl Image {
    /// Total instruction count.
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

/// Decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SBF image: {}", self.message)
    }
}

impl std::error::Error for ImageError {}

fn err<T>(message: impl Into<String>) -> Result<T, ImageError> {
    Err(ImageError {
        message: message.into(),
    })
}

/// Serializes `image` to bytes.
pub fn encode(image: &Image) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_slice(MAGIC);
    put_str(&mut buf, &image.name);
    buf.put_u32_le(image.externs.len() as u32);
    for e in &image.externs {
        put_str(&mut buf, &e.name);
        buf.put_u8(e.nparams);
        buf.put_u8(e.has_ret as u8);
    }
    buf.put_u32_le(image.globals.len() as u32);
    for g in &image.globals {
        put_str(&mut buf, &g.name);
        buf.put_u64_le(g.size);
    }
    buf.put_u32_le(image.functions.len() as u32);
    for f in &image.functions {
        put_str(&mut buf, &f.name);
        buf.put_u8(f.nparams);
        buf.put_u8(f.has_ret as u8);
        buf.put_u32_le(f.code.len() as u32);
        for inst in &f.code {
            encode_inst(&mut buf, inst);
        }
    }
    buf
}

/// The little subset of `bytes::BufMut` the encoder needs, implemented on
/// `Vec<u8>` so the format needs no external crate.
trait PutLe {
    fn put_slice(&mut self, s: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
}

impl PutLe for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Deserializes an image from bytes.
///
/// # Errors
///
/// Returns [`ImageError`] for truncated or malformed input.
pub fn decode(mut bytes: &[u8]) -> Result<Image, ImageError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return err("bad magic");
    }
    bytes = &bytes[4..];
    let name = get_str(&mut bytes)?;
    let mut image = Image {
        name,
        ..Default::default()
    };
    let n_ext = get_u32(&mut bytes)? as usize;
    for _ in 0..n_ext {
        let name = get_str(&mut bytes)?;
        let nparams = get_u8(&mut bytes)?;
        let has_ret = get_u8(&mut bytes)? != 0;
        image.externs.push(ImageExtern {
            name,
            nparams,
            has_ret,
        });
    }
    let n_glob = get_u32(&mut bytes)? as usize;
    for _ in 0..n_glob {
        let name = get_str(&mut bytes)?;
        let size = get_u64(&mut bytes)?;
        image.globals.push(ImageGlobal { name, size });
    }
    let n_fn = get_u32(&mut bytes)? as usize;
    for _ in 0..n_fn {
        let name = get_str(&mut bytes)?;
        let nparams = get_u8(&mut bytes)?;
        let has_ret = get_u8(&mut bytes)? != 0;
        let n_code = get_u32(&mut bytes)? as usize;
        let mut code = Vec::with_capacity(n_code);
        for _ in 0..n_code {
            code.push(decode_inst(&mut bytes)?);
        }
        image.functions.push(ImageFunction {
            name,
            nparams,
            has_ret,
            code,
        });
    }
    Ok(image)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(bytes: &mut &[u8]) -> Result<String, ImageError> {
    let len = get_u16(bytes)? as usize;
    if bytes.len() < len {
        return err("truncated string");
    }
    let s = String::from_utf8(bytes[..len].to_vec()).map_err(|_| ImageError {
        message: "non-utf8 string".into(),
    })?;
    *bytes = &bytes[len..];
    Ok(s)
}

macro_rules! getter {
    ($name:ident, $ty:ty, $size:expr) => {
        fn $name(bytes: &mut &[u8]) -> Result<$ty, ImageError> {
            let Some((head, rest)) = bytes.split_first_chunk::<$size>() else {
                return err("truncated input");
            };
            let v = <$ty>::from_le_bytes(*head);
            *bytes = rest;
            Ok(v)
        }
    };
}
getter!(get_u8, u8, 1);
getter!(get_u16, u16, 2);
getter!(get_u32, u32, 4);
getter!(get_u64, u64, 8);

fn width_code(w: Width) -> u8 {
    match w {
        Width::W1 => 0,
        Width::W8 => 1,
        Width::W16 => 2,
        Width::W32 => 3,
        Width::W64 => 4,
    }
}

fn width_from(code: u8) -> Result<Width, ImageError> {
    Ok(match code {
        0 => Width::W1,
        1 => Width::W8,
        2 => Width::W16,
        3 => Width::W32,
        4 => Width::W64,
        other => return err(format!("bad width code {other}")),
    })
}

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
    }
}

fn binop_from(code: u8) -> Result<BinOp, ImageError> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Shr,
        other => return err(format!("bad binop code {other}")),
    })
}

fn pred_code(p: CmpPred) -> u8 {
    match p {
        CmpPred::Eq => 0,
        CmpPred::Ne => 1,
        CmpPred::Lt => 2,
        CmpPred::Le => 3,
        CmpPred::Gt => 4,
        CmpPred::Ge => 5,
    }
}

fn pred_from(code: u8) -> Result<CmpPred, ImageError> {
    Ok(match code {
        0 => CmpPred::Eq,
        1 => CmpPred::Ne,
        2 => CmpPred::Lt,
        3 => CmpPred::Le,
        4 => CmpPred::Gt,
        5 => CmpPred::Ge,
        other => return err(format!("bad predicate code {other}")),
    })
}

fn encode_inst(buf: &mut Vec<u8>, inst: &MachInst) {
    match inst {
        MachInst::Mov { rd, rs } => {
            buf.put_u8(0);
            buf.put_u8(rd.0);
            buf.put_u8(rs.0);
        }
        MachInst::MovImm { rd, imm } => {
            buf.put_u8(1);
            buf.put_u8(rd.0);
            buf.put_i64_le(*imm);
        }
        MachInst::MovFloat { rd, imm } => {
            buf.put_u8(2);
            buf.put_u8(rd.0);
            buf.put_f64_le(*imm);
        }
        MachInst::Bin { op, rd, rs, rt } => {
            buf.put_u8(3);
            buf.put_u8(binop_code(*op));
            buf.put_u8(rd.0);
            buf.put_u8(rs.0);
            buf.put_u8(rt.0);
        }
        MachInst::Cmp { pred, rd, rs, rt } => {
            buf.put_u8(4);
            buf.put_u8(pred_code(*pred));
            buf.put_u8(rd.0);
            buf.put_u8(rs.0);
            buf.put_u8(rt.0);
        }
        MachInst::Load { width, rd, rs, off } => {
            buf.put_u8(5);
            buf.put_u8(width_code(*width));
            buf.put_u8(rd.0);
            buf.put_u8(rs.0);
            buf.put_u32_le(*off);
        }
        MachInst::Store { width, rd, off, rs } => {
            buf.put_u8(6);
            buf.put_u8(width_code(*width));
            buf.put_u8(rd.0);
            buf.put_u32_le(*off);
            buf.put_u8(rs.0);
        }
        MachInst::Salloc { rd, size } => {
            buf.put_u8(7);
            buf.put_u8(rd.0);
            buf.put_u32_le(*size);
        }
        MachInst::LeaGlobal { rd, index } => {
            buf.put_u8(8);
            buf.put_u8(rd.0);
            buf.put_u32_le(*index);
        }
        MachInst::LeaFunc { rd, index } => {
            buf.put_u8(9);
            buf.put_u8(rd.0);
            buf.put_u32_le(*index);
        }
        MachInst::Call { index, nargs } => {
            buf.put_u8(10);
            buf.put_u32_le(*index);
            buf.put_u8(*nargs);
        }
        MachInst::ECall { index, nargs } => {
            buf.put_u8(11);
            buf.put_u32_le(*index);
            buf.put_u8(*nargs);
        }
        MachInst::ICall { rs, nargs, ret } => {
            buf.put_u8(12);
            buf.put_u8(rs.0);
            buf.put_u8(*nargs);
            buf.put_u8(*ret as u8);
        }
        MachInst::Jmp { target } => {
            buf.put_u8(13);
            buf.put_u32_le(*target);
        }
        MachInst::Brz { rs, target } => {
            buf.put_u8(14);
            buf.put_u8(rs.0);
            buf.put_u32_le(*target);
        }
        MachInst::Ret => buf.put_u8(15),
    }
}

fn decode_inst(bytes: &mut &[u8]) -> Result<MachInst, ImageError> {
    let opcode = get_u8(bytes)?;
    Ok(match opcode {
        0 => MachInst::Mov {
            rd: reg(get_u8(bytes)?)?,
            rs: reg(get_u8(bytes)?)?,
        },
        1 => MachInst::MovImm {
            rd: reg(get_u8(bytes)?)?,
            imm: get_u64(bytes)? as i64,
        },
        2 => MachInst::MovFloat {
            rd: reg(get_u8(bytes)?)?,
            imm: f64::from_bits(get_u64(bytes)?),
        },
        3 => MachInst::Bin {
            op: binop_from(get_u8(bytes)?)?,
            rd: reg(get_u8(bytes)?)?,
            rs: reg(get_u8(bytes)?)?,
            rt: reg(get_u8(bytes)?)?,
        },
        4 => MachInst::Cmp {
            pred: pred_from(get_u8(bytes)?)?,
            rd: reg(get_u8(bytes)?)?,
            rs: reg(get_u8(bytes)?)?,
            rt: reg(get_u8(bytes)?)?,
        },
        5 => MachInst::Load {
            width: width_from(get_u8(bytes)?)?,
            rd: reg(get_u8(bytes)?)?,
            rs: reg(get_u8(bytes)?)?,
            off: get_u32(bytes)?,
        },
        6 => MachInst::Store {
            width: width_from(get_u8(bytes)?)?,
            rd: reg(get_u8(bytes)?)?,
            off: get_u32(bytes)?,
            rs: reg(get_u8(bytes)?)?,
        },
        7 => MachInst::Salloc {
            rd: reg(get_u8(bytes)?)?,
            size: get_u32(bytes)?,
        },
        8 => MachInst::LeaGlobal {
            rd: reg(get_u8(bytes)?)?,
            index: get_u32(bytes)?,
        },
        9 => MachInst::LeaFunc {
            rd: reg(get_u8(bytes)?)?,
            index: get_u32(bytes)?,
        },
        10 => MachInst::Call {
            index: get_u32(bytes)?,
            nargs: get_u8(bytes)?,
        },
        11 => MachInst::ECall {
            index: get_u32(bytes)?,
            nargs: get_u8(bytes)?,
        },
        12 => MachInst::ICall {
            rs: reg(get_u8(bytes)?)?,
            nargs: get_u8(bytes)?,
            ret: get_u8(bytes)? != 0,
        },
        13 => MachInst::Jmp {
            target: get_u32(bytes)?,
        },
        14 => MachInst::Brz {
            rs: reg(get_u8(bytes)?)?,
            target: get_u32(bytes)?,
        },
        15 => MachInst::Ret,
        other => return err(format!("bad opcode {other}")),
    })
}

fn reg(code: u8) -> Result<Reg, ImageError> {
    if (code as usize) < Reg::COUNT {
        Ok(Reg(code))
    } else {
        err(format!("bad register r{code}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        Image {
            name: "sample".into(),
            externs: vec![ImageExtern {
                name: "malloc".into(),
                nparams: 1,
                has_ret: true,
            }],
            globals: vec![ImageGlobal {
                name: "tbl".into(),
                size: 64,
            }],
            functions: vec![ImageFunction {
                name: "f".into(),
                nparams: 1,
                has_ret: true,
                code: vec![
                    MachInst::MovImm {
                        rd: Reg(2),
                        imm: -5,
                    },
                    MachInst::Bin {
                        op: BinOp::Add,
                        rd: Reg(0),
                        rs: Reg(1),
                        rt: Reg(2),
                    },
                    MachInst::MovFloat {
                        rd: Reg(3),
                        imm: 1.5,
                    },
                    MachInst::Load {
                        width: Width::W32,
                        rd: Reg(4),
                        rs: Reg(0),
                        off: 12,
                    },
                    MachInst::Store {
                        width: Width::W64,
                        rd: Reg(0),
                        off: 4,
                        rs: Reg(4),
                    },
                    MachInst::Brz {
                        rs: Reg(4),
                        target: 7,
                    },
                    MachInst::Call { index: 0, nargs: 1 },
                    MachInst::Ret,
                ],
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let img = sample();
        let bytes = encode(&img);
        let back = decode(&bytes).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let e = decode(b"XXXX").unwrap_err();
        assert!(e.message.contains("magic"));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn rejects_bad_register() {
        let mut bytes = Vec::new();
        bytes.put_slice(MAGIC);
        put_str(&mut bytes, "m");
        bytes.put_u32_le(0); // externs
        bytes.put_u32_le(0); // globals
        bytes.put_u32_le(1); // one function
        put_str(&mut bytes, "f");
        bytes.put_u8(0);
        bytes.put_u8(0);
        bytes.put_u32_le(1);
        bytes.put_u8(0); // mov
        bytes.put_u8(99); // bad register
        bytes.put_u8(0);
        let e = decode(&bytes).unwrap_err();
        assert!(e.message.contains("register"));
    }
}
