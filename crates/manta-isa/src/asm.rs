//! A line-oriented SB-ISA assembler and disassembler.
//!
//! Grammar:
//!
//! ```text
//! module <name>
//! extern <name>, <nparams>[, ret]
//! global <name>, <size>
//! func <name>(<nparams>) -> ret|void {
//! <label>:
//!     mov r0, r1          movi r2, 42        movf r3, 1.5
//!     add r0, r1, r2      cmp.eq r4, r1, r2
//!     ld.w64 r5, [r7+8]   st.w32 [r7+0], r5
//!     salloc r6, 16       lea.g r7, <global> lea.f r8, <func>
//!     call <func>, 1      ecall <extern>, 2  icall r8, 2[, ret]
//!     jmp <label>         brz r4, <label>    ret
//! }
//! ```
//!
//! Labels bind to the following instruction; branch operands name labels
//! and are resolved to instruction indexes. [`disassemble`] emits text that
//! [`assemble`] parses back to an identical [`Image`].

use std::collections::HashMap;
use std::fmt;

use manta_ir::{BinOp, CmpPred, Width};

use crate::image::{Image, ImageExtern, ImageFunction, ImageGlobal};
use crate::inst::{MachInst, Reg};

/// Assembly failure with its 1-based line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

fn parse_reg(ln: usize, tok: &str) -> Result<Reg> {
    let n: u8 = tok
        .trim()
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .ok_or(AsmError {
            line: ln,
            message: format!("bad register `{tok}`"),
        })?;
    if (n as usize) >= Reg::COUNT {
        return err(ln, format!("register out of range `{tok}`"));
    }
    Ok(Reg(n))
}

/// `extern name(w64, w64) -> w64` style is accepted too for convenience, but
/// the canonical form is `extern name, nparams[, ret]`.
fn parse_extern(ln: usize, rest: &str) -> Result<ImageExtern> {
    if let Some(open) = rest.find('(') {
        let name = rest[..open].trim().to_string();
        let close = rest.rfind(')').ok_or(AsmError {
            line: ln,
            message: "expected `)`".into(),
        })?;
        let nparams = rest[open + 1..close]
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .count() as u8;
        let has_ret = rest[close..].contains("->") && !rest[close..].contains("void");
        Ok(ImageExtern {
            name,
            nparams,
            has_ret,
        })
    } else {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        if parts.len() < 2 {
            return err(ln, "extern expects `name, nparams[, ret]`");
        }
        let nparams: u8 = parts[1].parse().map_err(|_| AsmError {
            line: ln,
            message: format!("bad nparams `{}`", parts[1]),
        })?;
        Ok(ImageExtern {
            name: parts[0].to_string(),
            nparams,
            has_ret: parts.get(2) == Some(&"ret"),
        })
    }
}

/// Assembles a whole program.
///
/// # Errors
///
/// Returns [`AsmError`] pointing at the offending line.
pub fn assemble(text: &str) -> Result<Image> {
    let mut image = Image::default();
    // Pre-scan function names for forward references.
    let mut func_names: Vec<String> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("func ") {
            let name = rest.split('(').next().unwrap_or("").trim().to_string();
            func_names.push(name);
        }
    }
    let func_index: HashMap<&str, u32> = func_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();

    // An open function body: labels seen so far plus branch fixups of
    // `(line, inst index, label)` resolved at the closing brace.
    type OpenFunction = (
        ImageFunction,
        HashMap<String, u32>,
        Vec<(usize, usize, String)>,
    );
    let lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let mut current: Option<OpenFunction> = None;

    for (ln, line) in lines {
        let line = line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some((ref mut func, ref mut labels, ref mut fixups)) = current {
            if line == "}" {
                // Resolve label fixups.
                for (fln, idx, label) in fixups.drain(..) {
                    let target = *labels.get(&label).ok_or(AsmError {
                        line: fln,
                        message: format!("undefined label `{label}`"),
                    })?;
                    match &mut func.code[idx] {
                        MachInst::Jmp { target: t } | MachInst::Brz { target: t, .. } => {
                            *t = target;
                        }
                        _ => unreachable!("fixup on non-branch"),
                    }
                }
                let (func, _, _) = current.take().expect("current function");
                image.functions.push(func);
                continue;
            }
            if let Some(label) = line.strip_suffix(':') {
                labels.insert(label.trim().to_string(), func.code.len() as u32);
                continue;
            }
            let inst = parse_inst(ln, line, &image, &func_index, func.code.len(), fixups)?;
            func.code.push(inst);
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            image.name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("extern ") {
            image.externs.push(parse_extern(ln, rest)?);
        } else if let Some(rest) = line.strip_prefix("global ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return err(ln, "global expects `name, size`");
            }
            let size: u64 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: format!("bad size `{}`", parts[1]),
            })?;
            image.globals.push(ImageGlobal {
                name: parts[0].to_string(),
                size,
            });
        } else if let Some(rest) = line.strip_prefix("func ") {
            let rest = rest
                .strip_suffix('{')
                .ok_or(AsmError {
                    line: ln,
                    message: "expected `{`".into(),
                })?
                .trim();
            let open = rest.find('(').ok_or(AsmError {
                line: ln,
                message: "expected `(`".into(),
            })?;
            let close = rest.rfind(')').ok_or(AsmError {
                line: ln,
                message: "expected `)`".into(),
            })?;
            let name = rest[..open].trim().to_string();
            let nparams: u8 = rest[open + 1..close].trim().parse().map_err(|_| AsmError {
                line: ln,
                message: "func expects `(nparams)`".into(),
            })?;
            let has_ret = rest[close..].contains("->") && !rest[close..].contains("void");
            current = Some((
                ImageFunction {
                    name,
                    nparams,
                    has_ret,
                    code: Vec::new(),
                },
                HashMap::new(),
                Vec::new(),
            ));
        } else {
            return err(ln, format!("unexpected top-level line `{line}`"));
        }
    }
    if current.is_some() {
        return err(usize::MAX, "unterminated function body");
    }
    Ok(image)
}

fn parse_inst(
    ln: usize,
    line: &str,
    image: &Image,
    func_index: &HashMap<&str, u32>,
    inst_idx: usize,
    fixups: &mut Vec<(usize, usize, String)>,
) -> Result<MachInst> {
    let (mn, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let parts: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let global_idx = |ln: usize, name: &str| -> Result<u32> {
        image
            .globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| i as u32)
            .ok_or(AsmError {
                line: ln,
                message: format!("unknown global `{name}`"),
            })
    };
    let extern_idx = |ln: usize, name: &str| -> Result<u32> {
        image
            .externs
            .iter()
            .position(|e| e.name == name)
            .map(|i| i as u32)
            .ok_or(AsmError {
                line: ln,
                message: format!("unknown extern `{name}`"),
            })
    };

    let (base, suffix) = match mn.split_once('.') {
        Some((b, s)) => (b, Some(s)),
        None => (mn, None),
    };
    let need = |n: usize| -> Result<()> {
        if parts.len() == n {
            Ok(())
        } else {
            err(
                ln,
                format!("`{mn}` expects {n} operands, got {}", parts.len()),
            )
        }
    };
    Ok(match base {
        "mov" => {
            need(2)?;
            MachInst::Mov {
                rd: parse_reg(ln, parts[0])?,
                rs: parse_reg(ln, parts[1])?,
            }
        }
        "movi" => {
            need(2)?;
            let imm: i64 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: format!("bad imm `{}`", parts[1]),
            })?;
            MachInst::MovImm {
                rd: parse_reg(ln, parts[0])?,
                imm,
            }
        }
        "movf" => {
            need(2)?;
            let imm: f64 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: format!("bad float `{}`", parts[1]),
            })?;
            MachInst::MovFloat {
                rd: parse_reg(ln, parts[0])?,
                imm,
            }
        }
        "cmp" => {
            need(3)?;
            let pred = suffix.and_then(CmpPred::from_mnemonic).ok_or(AsmError {
                line: ln,
                message: format!("bad predicate `{mn}`"),
            })?;
            MachInst::Cmp {
                pred,
                rd: parse_reg(ln, parts[0])?,
                rs: parse_reg(ln, parts[1])?,
                rt: parse_reg(ln, parts[2])?,
            }
        }
        "ld" => {
            need(2)?;
            let width = parse_mem_width(ln, suffix)?;
            let (rs, off) = parse_mem(ln, parts[1])?;
            MachInst::Load {
                width,
                rd: parse_reg(ln, parts[0])?,
                rs,
                off,
            }
        }
        "st" => {
            need(2)?;
            let width = parse_mem_width(ln, suffix)?;
            let (rd, off) = parse_mem(ln, parts[0])?;
            MachInst::Store {
                width,
                rd,
                off,
                rs: parse_reg(ln, parts[1])?,
            }
        }
        "salloc" => {
            need(2)?;
            let size: u32 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: format!("bad size `{}`", parts[1]),
            })?;
            MachInst::Salloc {
                rd: parse_reg(ln, parts[0])?,
                size,
            }
        }
        "lea" => {
            need(2)?;
            let rd = parse_reg(ln, parts[0])?;
            match suffix {
                Some("g") => MachInst::LeaGlobal {
                    rd,
                    index: global_idx(ln, parts[1])?,
                },
                Some("f") => {
                    let index = *func_index.get(parts[1]).ok_or(AsmError {
                        line: ln,
                        message: format!("unknown function `{}`", parts[1]),
                    })?;
                    MachInst::LeaFunc { rd, index }
                }
                _ => return err(ln, "lea needs `.g` or `.f` suffix"),
            }
        }
        "call" => {
            need(2)?;
            let index = *func_index.get(parts[0]).ok_or(AsmError {
                line: ln,
                message: format!("unknown function `{}`", parts[0]),
            })?;
            let nargs: u8 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: "bad nargs".into(),
            })?;
            MachInst::Call { index, nargs }
        }
        "ecall" => {
            need(2)?;
            let index = extern_idx(ln, parts[0])?;
            let nargs: u8 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: "bad nargs".into(),
            })?;
            MachInst::ECall { index, nargs }
        }
        "icall" => {
            if parts.len() < 2 || parts.len() > 3 {
                return err(ln, "icall expects `rs, nargs[, ret]`");
            }
            let rs = parse_reg(ln, parts[0])?;
            let nargs: u8 = parts[1].parse().map_err(|_| AsmError {
                line: ln,
                message: "bad nargs".into(),
            })?;
            let ret = parts.get(2) == Some(&"ret");
            MachInst::ICall { rs, nargs, ret }
        }
        "jmp" => {
            need(1)?;
            fixups.push((ln, inst_idx, parts[0].to_string()));
            MachInst::Jmp { target: 0 }
        }
        "brz" => {
            need(2)?;
            let rs = parse_reg(ln, parts[0])?;
            fixups.push((ln, inst_idx, parts[1].to_string()));
            MachInst::Brz { rs, target: 0 }
        }
        "ret" => MachInst::Ret,
        other => {
            let op = BinOp::from_mnemonic(other).ok_or(AsmError {
                line: ln,
                message: format!("unknown mnemonic `{other}`"),
            })?;
            need(3)?;
            MachInst::Bin {
                op,
                rd: parse_reg(ln, parts[0])?,
                rs: parse_reg(ln, parts[1])?,
                rt: parse_reg(ln, parts[2])?,
            }
        }
    })
}

fn parse_mem_width(ln: usize, suffix: Option<&str>) -> Result<Width> {
    let s = suffix.ok_or(AsmError {
        line: ln,
        message: "memory access needs `.w<bits>`".into(),
    })?;
    s.strip_prefix('w')
        .and_then(|b| b.parse::<u32>().ok())
        .and_then(Width::from_bits)
        .ok_or(AsmError {
            line: ln,
            message: format!("bad width `{s}`"),
        })
}

/// `[rN+off]`
fn parse_mem(ln: usize, tok: &str) -> Result<(Reg, u32)> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or(AsmError {
            line: ln,
            message: format!("bad memory operand `{tok}`"),
        })?;
    match inner.split_once('+') {
        Some((r, o)) => {
            let off: u32 = o.trim().parse().map_err(|_| AsmError {
                line: ln,
                message: format!("bad offset `{o}`"),
            })?;
            Ok((parse_reg(ln, r)?, off))
        }
        None => Ok((parse_reg(ln, inner)?, 0)),
    }
}

/// Renders an image back to assembly text that [`assemble`] parses to an
/// identical image.
pub fn disassemble(image: &Image) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "module {}", image.name);
    for e in &image.externs {
        let ret = if e.has_ret { ", ret" } else { "" };
        let _ = writeln!(out, "extern {}, {}{}", e.name, e.nparams, ret);
    }
    for g in &image.globals {
        let _ = writeln!(out, "global {}, {}", g.name, g.size);
    }
    for f in &image.functions {
        let ret = if f.has_ret { "ret" } else { "void" };
        let _ = writeln!(out, "\nfunc {}({}) -> {} {{", f.name, f.nparams, ret);
        // Labels at branch targets.
        let mut targets: Vec<u32> = f.code.iter().flat_map(MachInst::targets).collect();
        targets.sort_unstable();
        targets.dedup();
        for (i, inst) in f.code.iter().enumerate() {
            if targets.contains(&(i as u32)) {
                let _ = writeln!(out, "L{i}:");
            }
            match inst {
                MachInst::Jmp { target } => {
                    let _ = writeln!(out, "    jmp L{target}");
                }
                MachInst::Brz { rs, target } => {
                    let _ = writeln!(out, "    brz {rs}, L{target}");
                }
                MachInst::Call { index, nargs } => {
                    let _ = writeln!(
                        out,
                        "    call {}, {}",
                        image.functions[*index as usize].name, nargs
                    );
                }
                MachInst::ECall { index, nargs } => {
                    let _ = writeln!(
                        out,
                        "    ecall {}, {}",
                        image.externs[*index as usize].name, nargs
                    );
                }
                MachInst::LeaGlobal { rd, index } => {
                    let _ = writeln!(
                        out,
                        "    lea.g {rd}, {}",
                        image.globals[*index as usize].name
                    );
                }
                MachInst::LeaFunc { rd, index } => {
                    let _ = writeln!(
                        out,
                        "    lea.f {rd}, {}",
                        image.functions[*index as usize].name
                    );
                }
                other => {
                    let _ = writeln!(out, "    {other}");
                }
            }
        }
        // A trailing label (branch to one-past-the-end) cannot occur: the
        // assembler only creates labels it later binds.
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
module demo
extern malloc, 1, ret
extern free, 1
global table, 64

func helper(1) -> ret {
    add r0, r1, r1
    ret
}

func main(1) -> ret {
    salloc r7, 16
    movi r2, 42
    st.w64 [r7+8], r2
    ld.w64 r3, [r7+8]
    cmp.eq r4, r3, r2
    brz r4, skip
    mov r1, r3
    call helper, 1
skip:
    lea.f r5, helper
    icall r5, 1, ret
    lea.g r6, table
    ecall malloc, 1
    ret
}
"#;

    #[test]
    fn assembles_sample() {
        let img = assemble(SAMPLE).unwrap();
        assert_eq!(img.name, "demo");
        assert_eq!(img.externs.len(), 2);
        assert!(img.externs[0].has_ret && !img.externs[1].has_ret);
        assert_eq!(img.globals.len(), 1);
        assert_eq!(img.functions.len(), 2);
        let main = &img.functions[1];
        assert!(main.code.iter().any(|i| matches!(i, MachInst::Brz { .. })));
        // `skip` resolved to the lea.f instruction index.
        let brz_target = main
            .code
            .iter()
            .find_map(|i| match i {
                MachInst::Brz { target, .. } => Some(*target),
                _ => None,
            })
            .unwrap();
        assert!(matches!(
            main.code[brz_target as usize],
            MachInst::LeaFunc { .. }
        ));
    }

    #[test]
    fn disassemble_roundtrip() {
        let img = assemble(SAMPLE).unwrap();
        let text = disassemble(&img);
        let img2 = assemble(&text).unwrap();
        assert_eq!(img, img2);
    }

    #[test]
    fn undefined_label_is_reported() {
        let bad = "module m\nfunc f(0) -> void {\n    jmp nowhere\n}\n";
        let e = assemble(bad).unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let bad = "module m\nfunc f(0) -> void {\n    frob r0, r1\n}\n";
        let e = assemble(bad).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn forward_function_references_resolve() {
        let text = "module m\nfunc a(0) -> void {\n    call b, 0\n    ret\n}\nfunc b(0) -> void {\n    ret\n}\n";
        let img = assemble(text).unwrap();
        assert!(matches!(
            img.functions[0].code[0],
            MachInst::Call { index: 1, nargs: 0 }
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "module m ; trailing\n; full comment\n\nfunc f(0) -> void {\n    ret ; done\n}\n";
        let img = assemble(text).unwrap();
        assert_eq!(img.functions[0].code, vec![MachInst::Ret]);
    }
}
