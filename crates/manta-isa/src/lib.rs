//! # manta-isa
//!
//! SB-ISA — a small synthetic register machine standing in for the real
//! binaries the Manta paper analyzes. It provides the *zero-knowledge*
//! entry point of the pipeline: programs exist as encoded bytes in an SBF
//! image (no types, no variable names — only code), and the [`lift`]
//! module translates those bytes into `manta-ir` SSA exactly the way
//! RetDec lifts x86 to LLVM IR in the paper (§3: "binary registers and
//! arguments are translated to SSA values").
//!
//! * [`inst`] — the machine instruction set (16 GP registers, loads and
//!   stores with byte offsets, arithmetic, compares, calls, branches).
//! * [`asm`] — a line-oriented assembler with labels.
//! * [`image`] — the SBF container: encode/decode whole programs to bytes.
//! * [`lift`] — decoder + on-the-fly SSA construction (Braun et al.) into
//!   a [`manta_ir::Module`].
//!
//! ```
//! use manta_isa::{asm, image, lift};
//!
//! let program = r#"
//! module demo
//! extern malloc(w64) -> w64
//! func grab(1) -> ret {
//!     mov r7, r1
//!     ecall malloc, 1
//!     ret
//! }
//! "#;
//! let img = asm::assemble(program)?;
//! let bytes = image::encode(&img);
//! let decoded = image::decode(&bytes)?;
//! let module = lift::lift(&decoded)?;
//! assert_eq!(module.function_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod image;
pub mod inst;
pub mod lift;

pub use asm::{assemble, AsmError};
pub use image::{decode, encode, Image, ImageError, ImageExtern, ImageFunction, ImageGlobal};
pub use inst::{MachInst, Reg};
