//! Stage 1: global flow-insensitive type inference (paper §4.1, Table 1).
//!
//! A unification-based algorithm over all variables and memory objects:
//!
//! | rule | statement | action |
//! |------|-----------|--------|
//! | ① | `p = q` (copy/phi/call binding) | `UnifyVarType(p,q)`; `UnifyObjType` over `ℙ(p) ∪ ℙ(q)` |
//! | ② | `p = *q` | `∀o ∈ ℙ(q): UnifyVarType(p, o)` |
//! | ③ | `*p = q` | `∀o ∈ ℙ(p): UnifyVarType(o, q)` |
//! | ④ | type-revealing site | absorb the revealed type |
//!
//! `cmp` contributes a pure unification of its operands — the "two compared
//! variables have the same type" indirect hint of §6.4.

use std::collections::HashSet;

use manta_analysis::{ModuleAnalysis, ObjectId, VarRef};
use manta_ir::{Callee, InstKind, Terminator, ValueId};
use manta_resilience::{Budget, BudgetExceeded};

use crate::classify;
use crate::reveal::RevealMap;
use crate::unify::UnionFind;
use crate::{InferenceResult, MantaConfig, Stage};

/// Maximum recursion when unifying object field trees.
const MAX_OBJ_UNIFY_DEPTH: usize = 4;

/// Dense index space: DDG nodes first, then objects.
struct Keys<'a> {
    analysis: &'a ModuleAnalysis,
    var_count: usize,
}

impl<'a> Keys<'a> {
    fn new(analysis: &'a ModuleAnalysis) -> Keys<'a> {
        Keys {
            analysis,
            var_count: analysis.ddg.node_count(),
        }
    }

    fn total(&self) -> usize {
        self.var_count + self.analysis.pointsto.object_count()
    }

    fn var(&self, v: VarRef) -> usize {
        self.analysis.ddg.node(v).index()
    }

    fn obj(&self, o: ObjectId) -> usize {
        self.var_count + o.index()
    }
}

/// Runs the global flow-insensitive inference and classifies every
/// variable.
pub fn run(analysis: &ModuleAnalysis, reveals: &RevealMap, config: MantaConfig) -> InferenceResult {
    match run_budgeted(analysis, reveals, config, &Budget::unlimited()) {
        Ok(r) => r,
        Err(_) => unreachable!("unlimited budget tripped"),
    }
}

/// [`run`] under a cooperative budget: one fuel unit per visited
/// instruction, reveal, and materialized variable, so a blown budget
/// surfaces within one statement's worth of work.
///
/// # Errors
///
/// Returns the tripped limit; no partial result is produced (the caller
/// falls back to the previous tier — for this base stage, to nothing).
pub fn run_budgeted(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: MantaConfig,
    budget: &Budget,
) -> Result<InferenceResult, BudgetExceeded> {
    let keys = Keys::new(analysis);
    let module = analysis.module();
    let pts = &analysis.pointsto;

    // The unification ops an instruction emits depend only on the
    // (immutable) points-to relation, never on union-find state, so the
    // per-function op lists are collected across the pool and replayed in
    // function order — exactly the serial op sequence.
    let func_ids: Vec<manta_ir::FuncId> = module.functions().map(|f| f.id()).collect();
    let per_func: Vec<Result<Vec<(usize, usize)>, BudgetExceeded>> =
        manta_parallel::par_map(func_ids, |fid| collect_fi_ops(analysis, &keys, fid, budget));

    let mut uf = UnionFind::new(keys.total());
    for ops in per_func {
        for (a, b) in ops? {
            uf.union(a, b);
        }
    }

    // Rule ④: absorb reveals.
    for func in module.functions() {
        for r in reveals.in_func(func.id()) {
            budget.tick()?;
            uf.absorb(keys.var(VarRef::new(func.id(), r.value)), &r.ty);
        }
    }

    // Materialize the type maps.
    let mut result = InferenceResult::empty(config);
    for func in module.functions() {
        for (value, _) in func.values() {
            budget.tick()?;
            let v = VarRef::new(func.id(), value);
            let interval = uf.interval(keys.var(v)).clone();
            if !interval.is_unknown() {
                result.var_types.insert(v, interval);
            }
        }
    }
    for (o, _) in pts.objects() {
        let interval = uf.interval(keys.obj(o)).clone();
        if !interval.is_unknown() {
            result.obj_types.insert(o, interval);
        }
    }

    let counts = classify::classify(analysis, &mut result);
    result.stage_counts.push((Stage::FlowInsensitive, counts));
    Ok(result)
}

/// Collects the union ops of one function's instructions (Table 1 rules
/// ①–③ plus the `cmp` hint). Fuel is charged per instruction exactly as
/// the historical serial pass.
fn collect_fi_ops(
    analysis: &ModuleAnalysis,
    keys: &Keys<'_>,
    fid: manta_ir::FuncId,
    budget: &Budget,
) -> Result<Vec<(usize, usize)>, BudgetExceeded> {
    let module = analysis.module();
    let pts = &analysis.pointsto;
    let func = module.function(fid);
    let var = |v: ValueId| VarRef::new(fid, v);
    let mut ops: Vec<(usize, usize)> = Vec::new();
    for inst in func.insts() {
        budget.tick()?;
        match &inst.kind {
            // Rule ①: value copies.
            InstKind::Copy { dst, src } => {
                ops.push((keys.var(var(*dst)), keys.var(var(*src))));
                unify_pointees(&mut ops, keys, pts, var(*dst), var(*src));
            }
            InstKind::Phi { dst, incomings } => {
                for (_, v) in incomings {
                    ops.push((keys.var(var(*dst)), keys.var(var(*v))));
                    unify_pointees(&mut ops, keys, pts, var(*dst), var(*v));
                }
            }
            // Rule ② LOAD.
            InstKind::Load { dst, addr, .. } => {
                for &o in pts.pts_var(var(*addr)) {
                    ops.push((keys.var(var(*dst)), keys.obj(o)));
                }
            }
            // Rule ③ STORE.
            InstKind::Store { addr, val } => {
                for &o in pts.pts_var(var(*addr)) {
                    ops.push((keys.obj(o), keys.var(var(*val))));
                }
            }
            // Indirect hint: compared values share a type.
            InstKind::Cmp { lhs, rhs, .. } => {
                ops.push((keys.var(var(*lhs)), keys.var(var(*rhs))));
            }
            // Rule ① for calls: argument/parameter and return bindings
            // (context-insensitive).
            InstKind::Call {
                dst,
                callee: Callee::Direct(target),
                args,
            } => {
                if analysis.pre.is_broken_call(fid, inst.id) {
                    continue;
                }
                let tf = module.function(*target);
                for (i, &a) in args.iter().enumerate() {
                    if let Some(&p) = tf.params().get(i) {
                        ops.push((keys.var(var(a)), keys.var(VarRef::new(*target, p))));
                        unify_pointees(&mut ops, keys, pts, var(a), VarRef::new(*target, p));
                    }
                }
                if let Some(d) = dst {
                    for b in tf.blocks() {
                        if let Terminator::Ret(Some(r)) = b.term {
                            ops.push((keys.var(var(*d)), keys.var(VarRef::new(*target, r))));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(ops)
}

/// Rule ①'s `UnifyObjType` over the pointees of two unified pointers.
fn unify_pointees(
    ops: &mut Vec<(usize, usize)>,
    keys: &Keys<'_>,
    pts: &manta_analysis::PointsTo,
    p: VarRef,
    q: VarRef,
) {
    let all: Vec<ObjectId> = pts
        .pts_var(p)
        .iter()
        .chain(pts.pts_var(q).iter())
        .copied()
        .collect();
    if all.len() < 2 {
        return;
    }
    let first = all[0];
    for &o in &all[1..] {
        unify_obj_types(
            ops,
            keys,
            first,
            o,
            MAX_OBJ_UNIFY_DEPTH,
            &mut HashSet::new(),
        );
    }
}

/// `UnifyObjType(o1, o2)`: unify the contents of two objects and,
/// recursively, fields sharing an offset.
fn unify_obj_types(
    ops: &mut Vec<(usize, usize)>,
    keys: &Keys<'_>,
    a: ObjectId,
    b: ObjectId,
    depth: usize,
    seen: &mut HashSet<(ObjectId, ObjectId)>,
) {
    if a == b || depth == 0 || !seen.insert((a.min(b), a.max(b))) {
        return;
    }
    ops.push((keys.obj(a), keys.obj(b)));
    // Unify fields at matching offsets.
    let pts = &keys.analysis.pointsto;
    let offsets: Vec<u64> = pts
        .objects()
        .filter_map(|(_, k)| match k {
            manta_analysis::ObjectKind::Field { parent, offset } if parent == a || parent == b => {
                Some(offset)
            }
            _ => None,
        })
        .collect();
    for off in offsets {
        if let (Some(fa), Some(fb)) = (pts.field_of(a, off), pts.field_of(b, off)) {
            unify_obj_types(ops, keys, fa, fb, depth - 1, seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Resolution;
    use crate::{Manta, MantaConfig, Sensitivity, VarClass};
    use manta_ir::{BinOp, CmpPred, ModuleBuilder, Type, Width};

    fn infer_fi(m: manta_ir::Module) -> (ModuleAnalysis, InferenceResult) {
        let analysis = ModuleAnalysis::build(m);
        let result = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
        (analysis, result)
    }

    #[test]
    fn copy_chain_propagates_hint() {
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let n = fb.param(0);
        let a = fb.copy(n);
        let b = fb.copy(a);
        let buf = fb.call_extern(malloc, &[b], Some(Width::W64)).unwrap();
        fb.ret(Some(buf));
        mb.finish_function(fb);
        let (_, r) = infer_fi(mb.finish());
        // n ~ a ~ b, b revealed int64 by malloc's parameter type.
        let v = VarRef::new(fid, n);
        assert_eq!(
            r.interval(v).unwrap().resolution(),
            Resolution::Precise(Type::Int(Width::W64))
        );
        assert_eq!(r.class_of(v), VarClass::Precise);
    }

    #[test]
    fn conflicting_branches_over_approximate() {
        // The Figure 3 shape: one slot stores an int-revealed value on one
        // branch and a pointer-revealed value on the other.
        let mut mb = ModuleBuilder::new("m");
        let pd = mb.extern_fn("printf_d", &[], None);
        let ps = mb.extern_fn("printf_s", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64, Width::W64, Width::W1], None);
        let x = fb.param(0);
        let y = fb.param(1);
        let c = fb.param(2);
        let slot = fb.alloca(8);
        let bb_i = fb.new_block();
        let bb_p = fb.new_block();
        let bb_j = fb.new_block();
        fb.cond_br(c, bb_i, bb_p);
        fb.switch_to(bb_i);
        fb.store(slot, x);
        let fmt1 = fb.alloca(8);
        fb.call_extern(pd, &[fmt1, x], Some(Width::W32));
        fb.br(bb_j);
        fb.switch_to(bb_p);
        fb.store(slot, y);
        let fmt2 = fb.alloca(8);
        fb.call_extern(ps, &[fmt2, y], Some(Width::W32));
        fb.br(bb_j);
        fb.switch_to(bb_j);
        let merged = fb.load(slot, Width::W64);
        let _ = merged;
        fb.ret(None);
        mb.finish_function(fb);
        let (_, r) = infer_fi(mb.finish());
        // x is revealed int64, y is revealed ptr; both are stored into the
        // same slot, so the slot contents — and the loaded value — merge.
        assert_eq!(r.class_of(VarRef::new(fid, merged)), VarClass::Over);
        assert_eq!(r.class_of(VarRef::new(fid, x)), VarClass::Over);
        let i = r.interval(VarRef::new(fid, merged)).unwrap();
        assert_eq!(i.upper, Type::Reg(Width::W64));
    }

    #[test]
    fn untouched_variable_is_unknown_and_widened() {
        let mut mb = ModuleBuilder::new("m");
        let opaque = mb.extern_fn("vendor_blob", &[Width::W64], Some(Width::W64));
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let r = fb.call_extern(opaque, &[p], Some(Width::W64)).unwrap();
        fb.ret(Some(r));
        mb.finish_function(fb);
        let (_, res) = infer_fi(mb.finish());
        let v = VarRef::new(fid, p);
        assert_eq!(res.class_of(v), VarClass::Unknown);
        // The accessors expose the §4.1 any-type widening.
        assert_eq!(res.upper(v), Type::Top);
        assert_eq!(res.lower(v), Type::Bottom);
    }

    #[test]
    fn cmp_with_error_constant_corrupts_pointer() {
        // p is loaded through (ptr reveal) but also compared with -1: the
        // §6.4 recall-loss idiom must produce an over-approximated type.
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W1));
        let p = fb.param(0);
        let _x = fb.load(p, Width::W64);
        let neg = fb.const_int(-1, Width::W64);
        let c = fb.cmp(CmpPred::Eq, p, neg);
        fb.ret(Some(c));
        mb.finish_function(fb);
        let (_, r) = infer_fi(mb.finish());
        assert_eq!(r.class_of(VarRef::new(fid, p)), VarClass::Over);
    }

    #[test]
    fn polymorphic_function_merges_caller_types() {
        // id(x) called with an int-revealed and a ptr-revealed argument:
        // context-insensitive unification over-approximates the parameter.
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);
        let (_c1, mut cb1) = mb.function("c1", &[], None);
        let n = cb1.const_int(9, Width::W64);
        let sz = cb1.binop(BinOp::Mul, n, n, Width::W64); // numeric reveal
        cb1.call(id_f, &[sz], Some(Width::W64));
        cb1.ret(None);
        mb.finish_function(cb1);
        let (_c2, mut cb2) = mb.function("c2", &[], None);
        let k = cb2.const_int(8, Width::W64);
        let buf = cb2.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        cb2.call(id_f, &[buf], Some(Width::W64));
        cb2.ret(None);
        mb.finish_function(cb2);
        let (an, r) = infer_fi(mb.finish());
        let id_f = an.module().function_by_name("id").unwrap().id();
        let xp = an.module().function(id_f).params()[0];
        assert_eq!(r.class_of(VarRef::new(id_f, xp)), VarClass::Over);
    }

    #[test]
    fn stage_counts_recorded() {
        let mut mb = ModuleBuilder::new("m");
        let (_, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        fb.ret(Some(p));
        mb.finish_function(fb);
        let (_, r) = infer_fi(mb.finish());
        assert_eq!(r.stage_counts.len(), 1);
        assert_eq!(r.stage_counts[0].0, Stage::FlowInsensitive);
        assert!(r.stage_counts[0].1.total() > 0);
    }
}
