//! Type intervals: the `(F↑, F↓)` pair maintained for every variable and
//! memory object (paper Figure 5).
//!
//! `F↑` starts at `⊥` and climbs by *joining* every hint; `F↓` starts at
//! `⊤` and descends by *meeting* every hint. A variable with a single
//! consistent hint set ends with `F↑ = F↓`; conflicting hints leave a
//! non-trivial interval `F↓ <: F↑`; a variable with no hints keeps the
//! inverted sentinel `(⊥, ⊤)` — *unknown*.

use manta_ir::{Type, Width};

/// The first layer of a type — what §6.1 evaluates for function
/// parameters, and what classification compares.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FirstLayer {
    /// `⊤`.
    Top,
    /// `⊥`.
    Bottom,
    /// Abstract register class of a width.
    Reg(Width),
    /// Abstract numeric class of a width.
    Num(Width),
    /// Concrete integer.
    Int(Width),
    /// Concrete 32-bit float.
    Float,
    /// Concrete 64-bit double.
    Double,
    /// Any pointer.
    Ptr,
    /// Any array.
    Array,
    /// Any object/struct.
    Object,
    /// Any function.
    Func,
}

impl FirstLayer {
    /// Extracts the first layer of `t`.
    pub fn of(t: &Type) -> FirstLayer {
        match t {
            Type::Top => FirstLayer::Top,
            Type::Bottom => FirstLayer::Bottom,
            Type::Reg(w) => FirstLayer::Reg(*w),
            Type::Num(w) => FirstLayer::Num(*w),
            Type::Int(w) => FirstLayer::Int(*w),
            Type::Float => FirstLayer::Float,
            Type::Double => FirstLayer::Double,
            Type::Ptr(_) => FirstLayer::Ptr,
            Type::Array(..) => FirstLayer::Array,
            Type::Object(_) => FirstLayer::Object,
            Type::Func(_) => FirstLayer::Func,
        }
    }

    /// Whether this layer is a concrete type constructor (not `⊤`/`⊥`/an
    /// abstract register or numeric class).
    pub fn is_concrete(self) -> bool {
        !matches!(
            self,
            FirstLayer::Top | FirstLayer::Bottom | FirstLayer::Reg(_) | FirstLayer::Num(_)
        )
    }
}

/// How resolved an interval is — the paper's `V_P` / `V_O` / `V_U`
/// trichotomy, evaluated on one interval.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Resolution {
    /// No hints were ever collected (`F↑ = ⊥ ∧ F↓ = ⊤`).
    Unknown,
    /// Resolved to a singleton. The payload is the representative type
    /// (the lower bound when bounds differ only below the first layer).
    Precise(Type),
    /// A non-trivial interval remains — over-approximated.
    Over,
}

impl Resolution {
    /// True for [`Resolution::Precise`].
    pub fn is_precise(&self) -> bool {
        matches!(self, Resolution::Precise(_))
    }
}

/// The `(F↑, F↓)` pair for one variable or object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeInterval {
    /// Upper bound `F↑`: join of all hints (starts at `⊥`).
    pub upper: Type,
    /// Lower bound `F↓`: meet of all hints (starts at `⊤`).
    pub lower: Type,
}

impl Default for TypeInterval {
    fn default() -> Self {
        Self::unknown()
    }
}

impl TypeInterval {
    /// The no-information sentinel `(⊥, ⊤)`.
    pub fn unknown() -> TypeInterval {
        TypeInterval {
            upper: Type::Bottom,
            lower: Type::Top,
        }
    }

    /// An interval resolved exactly to `t`.
    pub fn exact(t: Type) -> TypeInterval {
        TypeInterval {
            upper: t.clone(),
            lower: t,
        }
    }

    /// The conservative *any-type* interval `(⊤, ⊥)` that unknown
    /// variables are widened to once the flow-insensitive stage finishes
    /// (§4.1).
    pub fn any() -> TypeInterval {
        TypeInterval {
            upper: Type::Top,
            lower: Type::Bottom,
        }
    }

    /// Whether no hint has been absorbed yet.
    pub fn is_unknown(&self) -> bool {
        self.upper == Type::Bottom && self.lower == Type::Top
    }

    /// Whether this is the widened any-type interval.
    pub fn is_any(&self) -> bool {
        self.upper == Type::Top && self.lower == Type::Bottom
    }

    /// Absorbs one type hint: `F↑ ∨= t`, `F↓ ∧= t`.
    pub fn absorb(&mut self, t: &Type) {
        self.upper = self.upper.join(t);
        self.lower = self.lower.meet(t);
    }

    /// Merges another interval into this one (used when unifying
    /// equivalence classes).
    pub fn merge(&mut self, other: &TypeInterval) {
        // Merging with the pristine unknown sentinel must be the identity,
        // not a widen-to-top.
        if other.is_unknown() {
            return;
        }
        if self.is_unknown() {
            *self = other.clone();
            return;
        }
        self.upper = self.upper.join(&other.upper);
        self.lower = self.lower.meet(&other.lower);
    }

    /// Replaces the interval with the bounds of a refined hint set
    /// (Algorithm 1 lines 9–10 / Algorithm 2 lines 10–11): `F↑ = LUB`,
    /// `F↓ = GLB` over `types`. No-op when `types` is empty.
    pub fn replace_with_hints<'a>(&mut self, types: impl IntoIterator<Item = &'a Type>) {
        let mut fresh = TypeInterval::unknown();
        for t in types {
            fresh.absorb(t);
        }
        if !fresh.is_unknown() {
            *self = fresh;
        }
    }

    /// Classifies the interval. Singleton-ness is decided at the first
    /// layer, matching the granularity the paper's evaluation measures
    /// (§6.1 evaluates "first-layer types of function parameters"):
    /// `ptr(int8)` vs `ptr(⊥)` is still *precise* — a pointer — while
    /// `int64` vs `reg64` is over-approximated.
    pub fn resolution(&self) -> Resolution {
        if self.is_unknown() {
            return Resolution::Unknown;
        }
        if self.upper == self.lower {
            return Resolution::Precise(self.upper.clone());
        }
        let (fu, fl) = (FirstLayer::of(&self.upper), FirstLayer::of(&self.lower));
        if fu == fl && fu.is_concrete() {
            return Resolution::Precise(self.lower.clone());
        }
        // An interval wholly inside one width's numeric class — e.g.
        // `[int64, num64]` after mixing a concrete hint with an abstract
        // arithmetic hint — resolves to the concrete lower bound: every
        // other concrete member of the class fails `lower <: t`.
        if let FirstLayer::Num(w) = fu {
            if fl.is_concrete() && self.lower.is_numeric() && self.lower.width() == Some(w) {
                return Resolution::Precise(self.lower.clone());
            }
        }
        Resolution::Over
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_then_single_hint_is_precise() {
        let mut i = TypeInterval::unknown();
        assert_eq!(i.resolution(), Resolution::Unknown);
        i.absorb(&Type::Int(Width::W64));
        assert_eq!(i.resolution(), Resolution::Precise(Type::Int(Width::W64)));
    }

    #[test]
    fn conflicting_hints_over_approximate() {
        let mut i = TypeInterval::unknown();
        i.absorb(&Type::Int(Width::W64));
        i.absorb(&Type::byte_ptr());
        assert_eq!(i.upper, Type::Reg(Width::W64));
        assert_eq!(i.lower, Type::Bottom);
        assert_eq!(i.resolution(), Resolution::Over);
    }

    #[test]
    fn pointer_depth_disagreement_is_still_precise() {
        let mut i = TypeInterval::unknown();
        i.absorb(&Type::byte_ptr());
        i.absorb(&Type::ptr(Type::Bottom));
        assert_eq!(FirstLayer::of(&i.upper), FirstLayer::Ptr);
        assert!(i.resolution().is_precise());
        // The representative is the lower (more specific) bound.
        assert_eq!(i.resolution(), Resolution::Precise(Type::ptr(Type::Bottom)));
    }

    #[test]
    fn any_interval_is_over() {
        assert_eq!(TypeInterval::any().resolution(), Resolution::Over);
        assert!(TypeInterval::any().is_any());
    }

    #[test]
    fn merge_identity_with_unknown() {
        let mut a = TypeInterval::exact(Type::Float);
        a.merge(&TypeInterval::unknown());
        assert_eq!(a, TypeInterval::exact(Type::Float));
        let mut b = TypeInterval::unknown();
        b.merge(&TypeInterval::exact(Type::Float));
        assert_eq!(b, TypeInterval::exact(Type::Float));
    }

    #[test]
    fn replace_with_hints_narrows() {
        let mut i = TypeInterval::unknown();
        i.absorb(&Type::Int(Width::W64));
        i.absorb(&Type::byte_ptr());
        assert_eq!(i.resolution(), Resolution::Over);
        i.replace_with_hints([Type::Int(Width::W64)].iter());
        assert_eq!(i.resolution(), Resolution::Precise(Type::Int(Width::W64)));
        // Empty hint set leaves the interval untouched.
        let before = i.clone();
        i.replace_with_hints(std::iter::empty());
        assert_eq!(i, before);
    }

    #[test]
    fn first_layer_concreteness() {
        assert!(FirstLayer::of(&Type::byte_ptr()).is_concrete());
        assert!(FirstLayer::of(&Type::Int(Width::W8)).is_concrete());
        assert!(!FirstLayer::of(&Type::Num(Width::W32)).is_concrete());
        assert!(!FirstLayer::of(&Type::Reg(Width::W64)).is_concrete());
        assert!(!FirstLayer::of(&Type::Top).is_concrete());
    }

    #[test]
    fn numeric_class_interval_resolves_to_lower() {
        let mut i = TypeInterval::unknown();
        i.absorb(&Type::Int(Width::W64));
        i.absorb(&Type::Num(Width::W64));
        assert_eq!(i.resolution(), Resolution::Precise(Type::Int(Width::W64)));
        // Width mismatch stays over-approximated.
        let mut j = TypeInterval::unknown();
        j.absorb(&Type::Int(Width::W32));
        j.absorb(&Type::Num(Width::W64));
        assert_eq!(j.resolution(), Resolution::Over);
    }

    #[test]
    fn num_singleton_is_precise_but_abstract() {
        // F↑ = F↓ = num64: precise per the paper (no refinement can do
        // better), though the payload is abstract.
        let i = TypeInterval::exact(Type::Num(Width::W64));
        assert_eq!(i.resolution(), Resolution::Precise(Type::Num(Width::W64)));
    }
}
