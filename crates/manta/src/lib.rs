//! # manta
//!
//! The hybrid-sensitive type inference of *Manta: Hybrid-Sensitive Type
//! Inference Toward Type-Assisted Bug Detection for Stripped Binaries*
//! (ASPLOS 2024), reproduced in Rust.
//!
//! The inference runs in up to three stages of increasing precision
//! (paper §4, Figure 1):
//!
//! 1. **Global flow-insensitive inference** ([`flow_insensitive`]) — a
//!    unification-based analysis applying Table 1's rules, maintaining an
//!    upper-bound type map `F↑` (joins) and a lower-bound map `F↓` (meets)
//!    for every variable and memory object. Variables are then classified
//!    as *precise* (`V_P`), *over-approximated* (`V_O`) or *unknown*
//!    (`V_U`).
//! 2. **Context-sensitive refinement** ([`ctx_refine`], Algorithm 1) — for
//!    each `v ∈ V_O`, a backward DDG traversal finds the alias roots of
//!    `v` under CFL-reachability, then a forward traversal collects only
//!    the type hints in CFL-valid contexts, shrinking the interval.
//! 3. **Flow-sensitive refinement** ([`flow_refine`], Algorithm 2) — for
//!    variables still over-approximated, type hints are collected per
//!    def/use site by backward CFG search with strong updates, producing
//!    `v@s` types.
//!
//! The [`Manta`] driver runs any prefix combination of the stages
//! ([`Sensitivity`]), which is exactly the ablation axis of the paper's
//! evaluation (Manta-FI, Manta-FS, Manta-FI+FS, Manta-FI+CS+FS).
//!
//! ```
//! use manta_ir::{ModuleBuilder, Width};
//! use manta_analysis::ModuleAnalysis;
//! use manta::{Manta, MantaConfig, Sensitivity};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let malloc = mb.extern_fn("malloc", &[], None);
//! let (_f, mut fb) = mb.function("grab", &[Width::W64], Some(Width::W64));
//! let n = fb.param(0);
//! let buf = fb.call_extern(malloc, &[n], Some(Width::W64));
//! fb.ret(buf);
//! mb.finish_function(fb);
//!
//! let analysis = ModuleAnalysis::build(mb.finish());
//! let result = Manta::new(MantaConfig::with_sensitivity(Sensitivity::FiCsFs))
//!     .infer(&analysis);
//! // `n` flows into malloc's size parameter: revealed as int64.
//! let f = analysis.module().function_by_name("grab").unwrap();
//! let p0 = manta_analysis::VarRef::new(f.id(), f.params()[0]);
//! assert!(result.interval(p0).unwrap().resolution().is_precise());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod classify;
pub mod ctx_refine;
pub mod engine;
pub mod flow_insensitive;
pub mod flow_refine;
pub mod interval;
pub mod provenance;
pub mod reveal;
pub mod summaries;
mod unify;

use std::collections::HashMap;

use manta_analysis::{ModuleAnalysis, ObjectId, VarRef};
use manta_ir::{InstId, Type};

pub use cache::AnalysisCache;
pub use classify::VarClass;
pub use engine::{Engine, EngineBuilder};
pub use interval::{FirstLayer, Resolution, TypeInterval};
pub use provenance::{ExplainNode, Fact, ProvenanceGraph, PtsDerivation, PtsTarget};
pub use reveal::{Reveal, RevealMap};
pub use unify::UnionFind;

/// Which stages of the hybrid cascade to run — the paper's ablation axis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sensitivity {
    /// Global flow-insensitive inference only (Manta-FI).
    Fi,
    /// Standalone flow-sensitive inference only (Manta-FS): per-use-site
    /// backward hint collection with strong updates and no global
    /// unification.
    Fs,
    /// FI followed directly by flow-sensitive refinement (Manta-FI+FS).
    FiFs,
    /// The full cascade: FI, then context-sensitive, then flow-sensitive
    /// refinement (Manta-FI+CS+FS).
    FiCsFs,
    /// The *reversed* refinement order (FI, then flow-sensitive, then
    /// context-sensitive) — the §6.4 "Type Refinement Order" ablation. The
    /// aggressive flow-sensitive stage runs first and loses types that the
    /// context-sensitive stage could have resolved, so this configuration
    /// is strictly weaker than [`Sensitivity::FiCsFs`].
    FiFsCs,
}

impl Sensitivity {
    /// All ablation configurations, in the paper's column order.
    pub const ALL: [Sensitivity; 4] = [
        Sensitivity::Fi,
        Sensitivity::Fs,
        Sensitivity::FiFs,
        Sensitivity::FiCsFs,
    ];

    /// The ablation columns plus the reversed-order configuration of §6.4.
    pub const WITH_REVERSED: [Sensitivity; 5] = [
        Sensitivity::Fi,
        Sensitivity::Fs,
        Sensitivity::FiFs,
        Sensitivity::FiCsFs,
        Sensitivity::FiFsCs,
    ];

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Sensitivity::Fi => "FI",
            Sensitivity::Fs => "FS",
            Sensitivity::FiFs => "FI+FS",
            Sensitivity::FiCsFs => "FI+CS+FS",
            Sensitivity::FiFsCs => "FI+FS+CS",
        }
    }
}

/// Tuning parameters of the inference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MantaConfig {
    /// The stage combination to run.
    pub sensitivity: Sensitivity,
    /// Maximum calling-context stack depth during CFL traversals.
    pub max_ctx_depth: usize,
    /// Node-visit budget per refined variable (scalability guard).
    pub max_visits: usize,
    /// Whether the flow-sensitive stage applies strong updates (stops at
    /// the first annotation per backward path). Ablation knob; the paper's
    /// algorithm always does.
    pub strong_updates: bool,
}

impl MantaConfig {
    /// The paper's default: full hybrid cascade.
    pub fn full() -> MantaConfig {
        Self::with_sensitivity(Sensitivity::FiCsFs)
    }

    /// Defaults with an explicit sensitivity.
    pub fn with_sensitivity(sensitivity: Sensitivity) -> MantaConfig {
        MantaConfig {
            sensitivity,
            max_ctx_depth: 32,
            max_visits: 4096,
            strong_updates: true,
        }
    }
}

impl Default for MantaConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Per-stage classification counts (drives the paper's Figure 9).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ClassCounts {
    /// `|V_P|` — precisely resolved.
    pub precise: usize,
    /// `|V_O|` — over-approximated.
    pub over: usize,
    /// `|V_U|` — unknown.
    pub unknown: usize,
}

impl ClassCounts {
    /// Total classified variables.
    pub fn total(&self) -> usize {
        self.precise + self.over + self.unknown
    }
}

/// A stage label used in [`InferenceResult::stage_counts`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stage {
    /// After global flow-insensitive inference.
    FlowInsensitive,
    /// After context-sensitive refinement.
    ContextRefine,
    /// After flow-sensitive refinement.
    FlowRefine,
    /// After standalone flow-sensitive inference.
    StandaloneFs,
}

/// The output of the inference: interval type maps for variables, objects
/// and use sites, plus per-stage statistics.
#[derive(Clone, Debug)]
pub struct InferenceResult {
    pub(crate) var_types: HashMap<VarRef, TypeInterval>,
    pub(crate) obj_types: HashMap<ObjectId, TypeInterval>,
    pub(crate) site_types: HashMap<(VarRef, InstId), TypeInterval>,
    pub(crate) class: HashMap<VarRef, VarClass>,
    /// Classification after each executed stage, in execution order.
    pub stage_counts: Vec<(Stage, ClassCounts)>,
    /// The configuration that produced this result.
    pub config: MantaConfig,
    /// Stages that were cut short (budget, panic, injected fault) and the
    /// sensitivity tier the maps actually reflect. Empty for a run that
    /// completed at full configured sensitivity.
    pub degradations: Vec<manta_resilience::Degradation>,
}

impl InferenceResult {
    pub(crate) fn empty(config: MantaConfig) -> InferenceResult {
        InferenceResult {
            var_types: HashMap::new(),
            obj_types: HashMap::new(),
            site_types: HashMap::new(),
            class: HashMap::new(),
            stage_counts: Vec::new(),
            config,
            degradations: Vec::new(),
        }
    }

    /// Whether the run completed at its full configured sensitivity.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// The inferred interval for variable `v`, if any hint reached it.
    pub fn interval(&self, v: VarRef) -> Option<&TypeInterval> {
        self.var_types.get(&v)
    }

    /// The inferred interval for object `o`.
    pub fn obj_interval(&self, o: ObjectId) -> Option<&TypeInterval> {
        self.obj_types.get(&o)
    }

    /// The inferred interval for `v` at site `s` (`v@s`). Falls back to the
    /// variable-level interval: per §4.2.2, `F(v@s) = F(v)` for variables
    /// that needed no flow-sensitive refinement.
    pub fn interval_at(&self, v: VarRef, s: InstId) -> Option<&TypeInterval> {
        self.site_types
            .get(&(v, s))
            .or_else(|| self.var_types.get(&v))
    }

    /// Upper-bound type `F↑(v)`. Unknown variables read as `⊤` — the
    /// conservative any-type widening of §4.1.
    pub fn upper(&self, v: VarRef) -> Type {
        match self.var_types.get(&v) {
            Some(i) if !i.is_unknown() => i.upper.clone(),
            _ => Type::Top,
        }
    }

    /// Lower-bound type `F↓(v)`. Unknown variables read as `⊥` — the
    /// conservative any-type widening of §4.1.
    pub fn lower(&self, v: VarRef) -> Type {
        match self.var_types.get(&v) {
            Some(i) if !i.is_unknown() => i.lower.clone(),
            _ => Type::Bottom,
        }
    }

    /// The classification of `v` after the final executed stage.
    pub fn class_of(&self, v: VarRef) -> VarClass {
        self.class.get(&v).copied().unwrap_or(VarClass::Unknown)
    }

    /// Classification counts after the final stage.
    pub fn final_counts(&self) -> ClassCounts {
        self.stage_counts
            .last()
            .map(|&(_, c)| c)
            .unwrap_or_default()
    }

    /// The resolved singleton type of `v`, if precise.
    pub fn precise_type(&self, v: VarRef) -> Option<Type> {
        match self.var_types.get(&v)?.resolution() {
            Resolution::Precise(t) => Some(t),
            _ => None,
        }
    }
}

/// Read-only access to inferred type intervals — the interface the §5
/// clients (indirect-call pruning, DDG pruning, bug checkers) consume.
///
/// [`InferenceResult`] implements it with full `v@s` site granularity;
/// baseline tools implement it through [`MapTypes`] at variable
/// granularity, which lets the evaluation feed *any* tool's types into the
/// same clients (the paper's Figure 12 setup).
pub trait TypeQuery {
    /// The interval for variable `v`, if known.
    fn var_interval(&self, v: VarRef) -> Option<&TypeInterval>;

    /// The interval for `v` at site `s`; defaults to the variable-level
    /// interval.
    fn site_interval(&self, v: VarRef, s: InstId) -> Option<&TypeInterval> {
        let _ = s;
        self.var_interval(v)
    }

    /// `F↑(v)` with the §4.1 any-type widening for unknowns.
    fn upper_of(&self, v: VarRef) -> Type {
        match self.var_interval(v) {
            Some(i) if !i.is_unknown() => i.upper.clone(),
            _ => Type::Top,
        }
    }

    /// `F↓(v)` with the §4.1 any-type widening for unknowns.
    fn lower_of(&self, v: VarRef) -> Type {
        match self.var_interval(v) {
            Some(i) if !i.is_unknown() => i.lower.clone(),
            _ => Type::Bottom,
        }
    }

    /// `F↑(v@s)` with the widening.
    fn upper_at(&self, v: VarRef, s: InstId) -> Type {
        match self.site_interval(v, s) {
            Some(i) if !i.is_unknown() => i.upper.clone(),
            _ => Type::Top,
        }
    }

    /// The precisely-resolved type of `v` at `s`, if any.
    fn precise_at(&self, v: VarRef, s: InstId) -> Option<Type> {
        match self.site_interval(v, s)?.resolution() {
            Resolution::Precise(t) => Some(t),
            _ => None,
        }
    }

    /// The precisely-resolved type of `v`, if any.
    fn precise_of(&self, v: VarRef) -> Option<Type> {
        match self.var_interval(v)?.resolution() {
            Resolution::Precise(t) => Some(t),
            _ => None,
        }
    }
}

impl TypeQuery for InferenceResult {
    fn var_interval(&self, v: VarRef) -> Option<&TypeInterval> {
        self.var_types.get(&v)
    }

    fn site_interval(&self, v: VarRef, s: InstId) -> Option<&TypeInterval> {
        self.interval_at(v, s)
    }
}

/// A plain variable-to-interval map implementing [`TypeQuery`] — the
/// adapter for baseline tools that produce flat type assignments.
#[derive(Clone, Debug, Default)]
pub struct MapTypes(pub HashMap<VarRef, TypeInterval>);

impl TypeQuery for MapTypes {
    fn var_interval(&self, v: VarRef) -> Option<&TypeInterval> {
        self.0.get(&v)
    }
}

/// The hybrid-sensitive type-inference driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct Manta {
    config: MantaConfig,
}

impl Manta {
    /// Creates a driver with the given configuration.
    pub fn new(config: MantaConfig) -> Manta {
        Manta { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MantaConfig {
        &self.config
    }

    /// Runs the configured stage cascade over a prepared [`ModuleAnalysis`]
    /// — one-shot sugar over [`Engine::analyze`] with an unlimited budget
    /// and no cache.
    pub fn infer(&self, analysis: &ModuleAnalysis) -> InferenceResult {
        match Engine::new(self.config).analyze(analysis) {
            Ok(r) => r,
            Err(_) => unreachable!("non-strict engines convert failures to degradations"),
        }
    }

    /// Runs the cascade under a cooperative budget with per-stage panic
    /// isolation, degrading gracefully.
    ///
    /// When a refinement stage blows its budget, panics, or hits an armed
    /// fault-injection site, the maps of the last *completed* sensitivity
    /// tier are kept, a [`manta_resilience::Degradation`] record is
    /// appended to [`InferenceResult::degradations`], and the cascade
    /// stops there. When the base stage itself fails, an empty result
    /// carrying the degradation record is returned. This method never
    /// panics on stage failure and never returns an error.
    #[deprecated(
        note = "build an `Engine` (`EngineBuilder::budget`) and call `Engine::analyze`, or \
                `Engine::analyze_with_budget` to share a running budget"
    )]
    pub fn infer_resilient(
        &self,
        analysis: &ModuleAnalysis,
        budget: &manta_resilience::Budget,
    ) -> InferenceResult {
        match Engine::new(self.config).analyze_with_budget(analysis, budget) {
            Ok(r) => r,
            Err(_) => unreachable!("non-strict engines convert failures to degradations"),
        }
    }

    /// Like [`Manta::infer_resilient`] but propagating the first stage
    /// failure instead of degrading — the CLI's `--strict` behavior.
    ///
    /// # Errors
    ///
    /// Returns [`manta_resilience::MantaError::Budget`] when `budget`
    /// trips and [`manta_resilience::MantaError::Panic`] when a stage
    /// panics.
    #[deprecated(
        note = "build an `Engine` with `EngineBuilder::strict(true)` and call \
                `Engine::analyze` or `Engine::analyze_with_budget`"
    )]
    pub fn infer_strict(
        &self,
        analysis: &ModuleAnalysis,
        budget: &manta_resilience::Budget,
    ) -> Result<InferenceResult, manta_resilience::MantaError> {
        let engine = Engine {
            config: self.config,
            budget: manta_resilience::BudgetSpec::default(),
            strict: true,
            provenance: false,
            summaries: false,
            partitioned_pointsto: false,
            cache: None,
        };
        engine.analyze_with_budget(analysis, budget)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod resilience_tests {
    use super::*;
    use manta_ir::{BinOp, ModuleBuilder, Width};
    use manta_resilience::Budget;

    /// A module where FI over-approximates and CS genuinely refines: the
    /// polymorphic identity called from an int and a ptr context.
    fn polymorphic_module() -> manta_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let pd = mb.extern_fn("printf_d", &[], None);
        let ps = mb.extern_fn("printf_s", &[], None);
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);
        let (_c1, mut cb1) = mb.function("use_int", &[Width::W64], None);
        let n = cb1.param(0);
        let n2 = cb1.binop(BinOp::Mul, n, n, Width::W64);
        let r1 = cb1.call(id_f, &[n2], Some(Width::W64)).unwrap();
        let fmt = cb1.alloca(8);
        cb1.call_extern(pd, &[fmt, r1], Some(Width::W32));
        cb1.ret(None);
        mb.finish_function(cb1);
        let (_c2, mut cb2) = mb.function("use_ptr", &[], None);
        let k = cb2.const_int(16, Width::W64);
        let buf = cb2.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let r2 = cb2.call(id_f, &[buf], Some(Width::W64)).unwrap();
        let fmt = cb2.alloca(8);
        cb2.call_extern(ps, &[fmt, r2], Some(Width::W32));
        cb2.ret(None);
        mb.finish_function(cb2);
        mb.finish()
    }

    #[test]
    fn resilient_with_unlimited_budget_matches_plain_infer() {
        let analysis = ModuleAnalysis::build(polymorphic_module());
        for s in Sensitivity::WITH_REVERSED {
            let m = Manta::new(MantaConfig::with_sensitivity(s));
            let plain = m.infer(&analysis);
            let resilient = m.infer_resilient(&analysis, &Budget::unlimited());
            assert!(resilient.degradations.is_empty(), "{s:?} degraded");
            assert_eq!(plain.final_counts(), resilient.final_counts(), "{s:?}");
            assert_eq!(plain.stage_counts, resilient.stage_counts, "{s:?}");
        }
    }

    #[test]
    fn zero_fuel_degrades_base_stage_to_empty() {
        let analysis = ModuleAnalysis::build(polymorphic_module());
        let m = Manta::new(MantaConfig::full());
        let r = m.infer_resilient(&analysis, &Budget::with_fuel(0));
        assert!(r.is_degraded());
        assert_eq!(r.degradations.len(), 1);
        assert_eq!(r.degradations[0].stage, "infer.fi");
        assert_eq!(r.degradations[0].completed, "none");
        assert_eq!(r.final_counts().total(), 0);
    }

    #[test]
    fn fuel_cut_after_base_keeps_the_fi_tier() {
        let analysis = ModuleAnalysis::build(polymorphic_module());
        // Measure the base stage's exact fuel use, then allow one unit
        // more: FI completes, CS trips on its first real work.
        let probe = Budget::with_fuel(1_000_000);
        let fi = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi));
        let fi_result = fi.infer_resilient(&analysis, &probe);
        assert!(fi_result.degradations.is_empty());
        let fi_cost = 1_000_000 - probe.fuel_left();
        let m = Manta::new(MantaConfig::full());
        let r = m.infer_resilient(&analysis, &Budget::with_fuel(fi_cost + 1));
        assert_eq!(r.degradations.len(), 1, "{:?}", r.degradations);
        assert_eq!(r.degradations[0].stage, "infer.cs");
        assert_eq!(r.degradations[0].completed, "FI");
        // The kept maps are the flow-insensitive tier, bit for bit.
        assert_eq!(r.stage_counts, fi_result.stage_counts);
        assert_eq!(r.final_counts(), fi_result.final_counts());
    }

    #[test]
    fn strict_mode_propagates_the_budget_error() {
        let analysis = ModuleAnalysis::build(polymorphic_module());
        let m = Manta::new(MantaConfig::full());
        let e = m
            .infer_strict(&analysis, &Budget::with_fuel(0))
            .unwrap_err();
        match e {
            manta_resilience::MantaError::Budget { stage, .. } => {
                assert_eq!(stage, "infer.fi");
            }
            other => panic!("expected budget error, got {other}"),
        }
        // And succeeds outright when unconstrained.
        let r = m.infer_strict(&analysis, &Budget::unlimited()).unwrap();
        assert!(r.degradations.is_empty());
    }
}
