//! Compositional per-function summary cache: precise incremental
//! re-inference after small edits, with wavefront-parallel recomputation.
//!
//! ## What is cached, and what is always fresh
//!
//! The hybrid-sensitive cascade splits cleanly into two cost classes.
//! Reveal collection, flow-insensitive unification and classification are
//! cheap *global* passes — they run fresh on every solve. The expensive
//! part is the refinement stages (CS, FS): per-candidate CFL walks that
//! read only frozen inputs (DDG structure, reveals, CFGs, the call graph
//! and the pre-stage result) and produce independent interval updates.
//! Those per-function update chunks are what this module caches.
//!
//! ## Invalidation: input fingerprints × recorded footprints
//!
//! Each function `g` gets a per-stage **input fingerprint** `IN(g)`
//! covering everything a walk can observe about `g`: its canonical text,
//! its points-to slice (stable object keys, so renumbering does not
//! invalidate), its incident DDG edges in stable name-hash coordinates,
//! its call-graph adjacency, and the per-value interval slice of the
//! pre-stage result. Each cached chunk records the **footprint** of the
//! walks that produced it — every function whose data was read
//! ([`crate::ctx_refine::Footprint`]). A chunk is replayed iff every
//! footprint member's current `IN` matches the value recorded at write
//! time; otherwise the chunk recomputes. Because the footprint covers
//! *all* inputs of the walk, replay is bit-identical by construction —
//! no precision allowlist is needed, and the parity suite pins it.
//!
//! This is the verified-cutoff property: after a 1% edit, the re-solve
//! cost is the cheap global passes plus only the chunks whose recorded
//! inputs actually changed. A function whose recomputed inputs hash
//! identically is transitively cut off.
//!
//! ## Wavefront scheduling
//!
//! Dirty chunks are grouped by the condensation of the call graph
//! ([`manta_parallel::wavefront::condense`]): each strongly-connected
//! component sits at a topological level, and every level's chunks
//! dispatch across the `manta-parallel` pool as one wavefront
//! ([`manta_parallel::wavefront::wavefront_dispatch`] — the shared
//! scheduler layer also used by the partitioned points-to solver and
//! `Engine::analyze_batch`). Chunks are pure against the frozen
//! pre-stage result, so wavefronts bound nothing semantically — they
//! shape the schedule (summaries are the only cross-shard traffic) and
//! feed the `summary.wavefront*` telemetry.
//!
//! ## What bypasses this path
//!
//! Fuel-limited budgets (a blown budget must trip at the same point the
//! full pipeline would), strict engines, armed fault plans, wall-clock
//! deadlines, provenance-recording engines (stage diffs need the full
//! pipeline), and the standalone-FS sensitivity (its alias classes are a
//! global union-find, not per-candidate walks). Degraded-tier results
//! are never persisted.

use std::collections::HashMap;

use manta_analysis::{DepKind, ModuleAnalysis, ObjectKind, VarRef};
use manta_ir::{FuncId, InstId, ValueId};
use manta_parallel::wavefront;
use manta_resilience::Budget;
use manta_store::{hash_str, ByteReader, ByteWriter, DecodeError, Fingerprint, Key};

use crate::cache::{bad, config_hash, dec_interval, enc_interval, function_fingerprints};
use crate::ctx_refine::{self, Footprint};
use crate::flow_refine::{self, Cfgs, FsChunkOut};
use crate::interval::TypeInterval;
use crate::reveal::RevealMap;
use crate::{classify, flow_insensitive, InferenceResult, MantaConfig, Sensitivity, Stage};

/// Version of the persisted summary-state payload. Folded into every
/// input fingerprint and checked on decode, so a codec change orphans
/// (never misreads) older state. v3 added the per-function points-to
/// boundary fingerprint table.
pub const SUMMARY_STATE_VERSION: u32 = 3;

/// The store key holding a module's whole summary state for one config:
/// one mutable entry per `(module name, config)` — edits update it in
/// place rather than orphaning per-fingerprint entries.
#[must_use]
pub fn state_key(module_name: &str, config: &MantaConfig) -> Key {
    Key::new("fsum", hash_str(module_name), config_hash(config, None))
}

/// Whether the summary path supports this sensitivity. Standalone FS
/// builds global alias classes (a module-wide union-find), which the
/// per-function chunk model cannot replay.
#[must_use]
pub fn eligible(sensitivity: Sensitivity) -> bool {
    !matches!(sensitivity, Sensitivity::Fs)
}

/// The refinement stages the summary driver replays, in cascade order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StageKind {
    Cs,
    Fs,
}

impl StageKind {
    fn tag(self) -> u8 {
        match self {
            StageKind::Cs => 0,
            StageKind::Fs => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<StageKind> {
        Some(match tag {
            0 => StageKind::Cs,
            1 => StageKind::Fs,
            _ => return None,
        })
    }

    fn stage(self) -> Stage {
        match self {
            StageKind::Cs => Stage::ContextRefine,
            StageKind::Fs => Stage::FlowRefine,
        }
    }
}

fn stage_order(sensitivity: Sensitivity) -> &'static [StageKind] {
    match sensitivity {
        Sensitivity::Fi => &[],
        Sensitivity::Fs => unreachable!("standalone FS is ineligible for the summary path"),
        Sensitivity::FiFs => &[StageKind::Fs],
        Sensitivity::FiCsFs => &[StageKind::Cs, StageKind::Fs],
        Sensitivity::FiFsCs => &[StageKind::Fs, StageKind::Cs],
    }
}

// ---------------------------------------------------------------------
// Persisted state
// ---------------------------------------------------------------------

/// One cached refinement chunk: the updates one function's candidate
/// partition produced, plus the recorded read footprint that gates
/// replay. Values are function-local ids — valid whenever the owning
/// function's text fingerprint (part of its `IN`) is unchanged.
#[derive(Clone, Debug, PartialEq)]
struct ChunkEntry {
    /// Index into [`State::footprints`]: the `(name hash, IN at write
    /// time)` list for every function the producing walks read. Always
    /// includes the owner.
    footprint: u32,
    /// Variable-level interval updates, by local value id.
    vars: Vec<(u32, TypeInterval)>,
    /// Site-level interval updates (FS stages only).
    sites: Vec<(u32, u32, TypeInterval)>,
}

/// The whole persisted summary state: per stage, per function (by name
/// hash), the cached chunk. Footprints live in a deduplicated side
/// table — chunks in one call cluster record near-identical read sets,
/// so interning shrinks the payload by the cluster size and lets
/// validation run once per distinct footprint instead of once per
/// chunk.
#[derive(Default, Debug)]
struct State {
    footprints: Vec<Vec<(u64, u64)>>,
    /// Per-function points-to *boundary* fingerprints `(name hash, fp)`,
    /// sorted by name hash: the points-to sets visible at the
    /// function's interface (parameters and returns) in stable object
    /// keys. A function whose boundary fingerprint changed since the
    /// state was written has different cross-function points-to facts,
    /// so its callers' chunks are force-dirtied — the summary-mode
    /// analogue of the partitioned solver re-solving an edited
    /// partition plus the callers its boundary deltas dirty.
    boundary_fps: Vec<(u64, u64)>,
    stages: Vec<(u8, Vec<(u64, ChunkEntry)>)>,
}

impl State {
    fn entries(&self, tag: u8) -> Option<&Vec<(u64, ChunkEntry)>> {
        self.stages.iter().find(|(t, _)| *t == tag).map(|(_, e)| e)
    }
}

/// Builds the deduplicated footprint table of the *next* state: every
/// replayed, recomputed and carried-forward chunk re-interns its
/// footprint list here, so the table never accretes dead lists.
#[derive(Default)]
struct FpInterner {
    table: Vec<Vec<(u64, u64)>>,
    index: HashMap<Vec<(u64, u64)>, u32>,
}

impl FpInterner {
    fn intern(&mut self, list: Vec<(u64, u64)>) -> u32 {
        if let Some(&i) = self.index.get(&list) {
            return i;
        }
        let i = self.table.len() as u32;
        self.index.insert(list.clone(), i);
        self.table.push(list);
        i
    }
}

fn encode_state(state: &State) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(SUMMARY_STATE_VERSION);
    w.usize(state.footprints.len());
    for list in &state.footprints {
        w.usize(list.len());
        for (h, fp) in list {
            w.u64(*h).u64(*fp);
        }
    }
    w.usize(state.boundary_fps.len());
    for (nh, fp) in &state.boundary_fps {
        w.u64(*nh).u64(*fp);
    }
    w.usize(state.stages.len());
    for (tag, entries) in &state.stages {
        w.u8(*tag);
        w.usize(entries.len());
        for (nh, e) in entries {
            w.u64(*nh);
            w.u32(e.footprint);
            w.usize(e.vars.len());
            for (v, i) in &e.vars {
                w.u32(*v);
                enc_interval(&mut w, i);
            }
            w.usize(e.sites.len());
            for (v, s, i) in &e.sites {
                w.u32(*v).u32(*s);
                enc_interval(&mut w, i);
            }
        }
    }
    w.finish()
}

fn decode_state(payload: &[u8]) -> Result<State, DecodeError> {
    let mut r = ByteReader::new(payload);
    if r.u32("summary version")? != SUMMARY_STATE_VERSION {
        return Err(bad("summary version"));
    }
    let n_fps = r.len("summary footprints")?;
    let mut footprints = Vec::with_capacity(n_fps.min(4096));
    for _ in 0..n_fps {
        let nf = r.len("summary footprint")?;
        let mut list = Vec::with_capacity(nf.min(4096));
        for _ in 0..nf {
            list.push((r.u64("footprint name")?, r.u64("footprint fp")?));
        }
        footprints.push(list);
    }
    let n_bnd = r.len("summary boundary fps")?;
    let mut boundary_fps = Vec::with_capacity(n_bnd.min(4096));
    for _ in 0..n_bnd {
        boundary_fps.push((r.u64("boundary name")?, r.u64("boundary fp")?));
    }
    let n_stages = r.len("summary stages")?;
    let mut stages = Vec::with_capacity(n_stages.min(4));
    for _ in 0..n_stages {
        let tag = r.u8("summary stage tag")?;
        StageKind::from_tag(tag).ok_or(bad("summary stage tag"))?;
        let n = r.len("summary entries")?;
        let mut entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let nh = r.u64("summary name hash")?;
            let footprint = r.u32("summary footprint ref")?;
            if footprint as usize >= footprints.len() {
                return Err(bad("summary footprint ref"));
            }
            let nv = r.len("summary vars")?;
            let mut vars = Vec::with_capacity(nv.min(4096));
            for _ in 0..nv {
                vars.push((r.u32("summary var")?, dec_interval(&mut r)?));
            }
            let ns = r.len("summary sites")?;
            let mut sites = Vec::with_capacity(ns.min(4096));
            for _ in 0..ns {
                sites.push((
                    r.u32("summary site var")?,
                    r.u32("summary site inst")?,
                    dec_interval(&mut r)?,
                ));
            }
            entries.push((
                nh,
                ChunkEntry {
                    footprint,
                    vars,
                    sites,
                },
            ));
        }
        stages.push((tag, entries));
    }
    r.expect_end("summary state")?;
    Ok(State {
        footprints,
        boundary_fps,
        stages,
    })
}

// ---------------------------------------------------------------------
// Input fingerprints
// ---------------------------------------------------------------------

/// Per-function input-fingerprint machinery. The *static* part (text,
/// points-to slice, DDG slice, call-graph adjacency, extern signatures)
/// is computed once per solve; [`Inputs::stage_fps`] folds in the
/// per-value interval slice of the live result at each stage entry.
struct Inputs {
    name_hash: Vec<u64>,
    by_name: HashMap<u64, FuncId>,
    static_fp: Vec<u64>,
    /// Content-stable object keys, kept for the boundary fingerprints.
    obj_keys: Vec<u64>,
}

impl Inputs {
    fn new(analysis: &ModuleAnalysis, text_fps: &[(String, u64)]) -> Inputs {
        let module = analysis.module();
        let name_hash: Vec<u64> = module.functions().map(|f| hash_str(f.name())).collect();
        let by_name: HashMap<u64, FuncId> = module
            .functions()
            .map(|f| (hash_str(f.name()), f.id()))
            .collect();

        // Extern signatures feed reveal rules without appearing in any
        // function's canonical text, so they fold into every IN: an
        // extern-sig edit soundly invalidates everything.
        let mut eh = Fingerprint::new();
        eh.write_u64(u64::from(SUMMARY_STATE_VERSION));
        for decl in module.externs() {
            eh.write_str(&decl.name);
            eh.write_usize(decl.param_widths.len());
            for w in &decl.param_widths {
                eh.write_u64(u64::from(w.bits()));
            }
            eh.write_u64(decl.ret_width.map(|w| u64::from(w.bits())).unwrap_or(0));
            eh.write_str(&format!("{:?}", decl.sig));
            eh.write_str(&format!("{:?}", decl.effect));
        }
        let extern_digest = eh.finish();

        let obj_keys = stable_object_keys(analysis, &name_hash);
        let ddg = &analysis.ddg;
        let pts = &analysis.pointsto;
        let cg = &analysis.callgraph;

        let mut static_fp = Vec::with_capacity(name_hash.len());
        // Arith edges hash their operator via its Debug text; memoized
        // per distinct operator, not per edge.
        let mut op_hash: HashMap<manta_ir::BinOp, u64> = HashMap::new();
        for func in module.functions() {
            let fid = func.id();
            let mut h = Fingerprint::new();
            h.write_u64(u64::from(SUMMARY_STATE_VERSION));
            h.write_u64(extern_digest);
            h.write_u64(text_fps[fid.index()].1);

            // Points-to slice: per value, the sorted stable object keys.
            for (value, _) in func.values() {
                let v = VarRef::new(fid, value);
                let mut ks: Vec<u64> = pts.pts_var(v).iter().map(|o| obj_keys[o.index()]).collect();
                ks.sort_unstable();
                h.write_u64(u64::from(value.0));
                h.write_usize(ks.len());
                for k in ks {
                    h.write_u64(k);
                }
            }

            // DDG slice: every edge incident to this function's nodes, in
            // stable coordinates. Hashes are sorted so adjacency-list
            // construction order (which can shift when *other* functions
            // change) cannot perturb the fingerprint.
            for (value, _) in func.values() {
                let n = ddg.node(VarRef::new(fid, value));
                let mut es: Vec<u64> = Vec::new();
                for &(other, kind) in ddg.children(n) {
                    es.push(edge_hash(0, ddg.var(other), kind, &name_hash, &mut op_hash));
                }
                for &(other, kind) in ddg.parents(n) {
                    es.push(edge_hash(1, ddg.var(other), kind, &name_hash, &mut op_hash));
                }
                es.sort_unstable();
                h.write_u64(u64::from(value.0));
                h.write_usize(es.len());
                for e in es {
                    h.write_u64(e);
                }
            }

            // Call-graph adjacency: both directions, with sites. Needed
            // beyond the DDG slice because e.g. a new zero-argument call
            // edge changes the FS caller crossing without adding any DDG
            // edge.
            let mut es: Vec<u64> = Vec::new();
            for e in cg.callees(fid) {
                let mut eh = Fingerprint::new();
                eh.write_u64(0)
                    .write_u64(name_hash[e.callee.index()])
                    .write_u64(u64::from(e.site.0));
                es.push(eh.finish());
            }
            for e in cg.callers(fid) {
                let mut eh = Fingerprint::new();
                eh.write_u64(1)
                    .write_u64(name_hash[e.caller.index()])
                    .write_u64(u64::from(e.site.0));
                es.push(eh.finish());
            }
            es.sort_unstable();
            h.write_usize(es.len());
            for e in es {
                h.write_u64(e);
            }

            static_fp.push(h.finish());
        }

        Inputs {
            name_hash,
            by_name,
            static_fp,
            obj_keys,
        }
    }

    /// Per-function points-to *boundary* fingerprints: the points-to
    /// sets of the function's parameters and returned values, in stable
    /// object keys. This is exactly the slice of points-to facts the
    /// function exchanges with its callers — the summary-state analogue
    /// of the partitioned solver's boundary slots.
    fn boundary_fps(&self, analysis: &ModuleAnalysis) -> Vec<u64> {
        let module = analysis.module();
        let pts = &analysis.pointsto;
        let mut out = Vec::with_capacity(self.static_fp.len());
        for func in module.functions() {
            let fid = func.id();
            let mut h = Fingerprint::new();
            h.write_u64(u64::from(SUMMARY_STATE_VERSION));
            let eat_var = |h: &mut Fingerprint, v: manta_ir::ValueId| {
                let mut ks: Vec<u64> = pts
                    .pts_var(VarRef::new(fid, v))
                    .iter()
                    .map(|o| self.obj_keys[o.index()])
                    .collect();
                ks.sort_unstable();
                h.write_usize(ks.len());
                for k in ks {
                    h.write_u64(k);
                }
            };
            for &p in func.params() {
                h.write_u64(0);
                eat_var(&mut h, p);
            }
            for b in func.blocks() {
                if let manta_ir::Terminator::Ret(Some(r)) = b.term {
                    h.write_u64(1);
                    eat_var(&mut h, r);
                }
            }
            out.push(h.finish());
        }
        out
    }

    /// The per-function input fingerprints at one stage entry: the
    /// static part plus the current per-value interval slice (the only
    /// live input the walks read).
    fn stage_fps(&self, analysis: &ModuleAnalysis, result: &InferenceResult) -> Vec<u64> {
        let module = analysis.module();
        let mut out = Vec::with_capacity(self.static_fp.len());
        for func in module.functions() {
            let fid = func.id();
            let mut w = ByteWriter::new();
            for (value, _) in func.values() {
                match result.var_types.get(&VarRef::new(fid, value)) {
                    None => {
                        w.u8(0);
                    }
                    Some(i) => {
                        w.u8(1);
                        enc_interval(&mut w, i);
                    }
                }
            }
            let mut h = Fingerprint::new();
            h.write_u64(self.static_fp[fid.index()]);
            h.write(&w.finish());
            out.push(h.finish());
        }
        out
    }
}

/// Content-stable keys for abstract objects: allocation coordinates in
/// name-hash space, recursively for fields — so an edit elsewhere that
/// renumbers `ObjectId`s does not invalidate an untouched function's
/// points-to slice.
fn stable_object_keys(analysis: &ModuleAnalysis, name_hash: &[u64]) -> Vec<u64> {
    let pts = &analysis.pointsto;
    let module = analysis.module();
    let n = pts.object_count();
    let mut keys: Vec<Option<u64>> = vec![None; n];
    fn key_of(
        o: manta_analysis::ObjectId,
        pts: &manta_analysis::PointsTo,
        module: &manta_ir::Module,
        name_hash: &[u64],
        keys: &mut Vec<Option<u64>>,
    ) -> u64 {
        if let Some(k) = keys[o.index()] {
            return k;
        }
        let mut h = Fingerprint::new();
        match pts.object_kind(o) {
            ObjectKind::Stack { func, site, size } => {
                h.write_u64(0)
                    .write_u64(name_hash[func.index()])
                    .write_u64(u64::from(site.0))
                    .write_u64(size);
            }
            ObjectKind::Heap { func, site } => {
                h.write_u64(1)
                    .write_u64(name_hash[func.index()])
                    .write_u64(u64::from(site.0));
            }
            ObjectKind::Global(g) => {
                h.write_u64(2).write_str(&module.global(g).name);
            }
            ObjectKind::Field { parent, offset } => {
                let pk = key_of(parent, pts, module, name_hash, keys);
                h.write_u64(3).write_u64(pk).write_u64(offset);
            }
            ObjectKind::ExternBuf { func, site } => {
                h.write_u64(4)
                    .write_u64(name_hash[func.index()])
                    .write_u64(u64::from(site.0));
            }
        }
        let k = h.finish();
        keys[o.index()] = Some(k);
        k
    }
    for i in 0..n {
        key_of(
            manta_analysis::ObjectId(i as u32),
            pts,
            module,
            name_hash,
            &mut keys,
        );
    }
    keys.into_iter().map(|k| k.unwrap_or(0)).collect()
}

fn edge_hash(
    dir: u64,
    other: VarRef,
    kind: DepKind,
    name_hash: &[u64],
    op_hash: &mut HashMap<manta_ir::BinOp, u64>,
) -> u64 {
    let mut h = Fingerprint::new();
    h.write_u64(dir)
        .write_u64(name_hash[other.func.index()])
        .write_u64(u64::from(other.value.0));
    match kind {
        DepKind::Direct => {
            h.write_u64(0);
        }
        DepKind::Arith { op, operand } => {
            let oh = *op_hash
                .entry(op)
                .or_insert_with(|| hash_str(&format!("{op:?}")));
            h.write_u64(1).write_u64(oh).write_u64(u64::from(operand));
        }
        DepKind::Cmp => {
            h.write_u64(2);
        }
        DepKind::Field => {
            h.write_u64(7);
        }
        // The ObjectId payload labels which object mediated the memory
        // dependency; no traversal reads it, so it stays out of the
        // fingerprint (object renumbering must not invalidate).
        DepKind::Memory(_) => {
            h.write_u64(3);
        }
        DepKind::CallParam(cs) => {
            h.write_u64(4)
                .write_u64(name_hash[cs.caller.index()])
                .write_u64(u64::from(cs.site.0));
        }
        DepKind::CallReturn(cs) => {
            h.write_u64(5)
                .write_u64(name_hash[cs.caller.index()])
                .write_u64(u64::from(cs.site.0));
        }
        DepKind::ExternFlow => {
            h.write_u64(6);
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------
// Wavefront scheduling
// ---------------------------------------------------------------------
//
// The scheduler itself lives in `manta_parallel::wavefront` (SCC
// condensation + level-by-level dispatch); this driver only maps
// functions onto condensation levels and names the telemetry counter.

// ---------------------------------------------------------------------
// The solve driver
// ---------------------------------------------------------------------

/// What one summary-mode solve reused and recomputed — the edit-storm
/// test's observability surface.
#[derive(Clone, Debug, Default)]
pub struct SolveReport {
    /// Functions whose cached chunks were replayed, per stage, by name.
    pub reused: Vec<String>,
    /// Functions whose chunks were recomputed, per stage, by name.
    pub recomputed: Vec<String>,
    /// Width of each dispatched recompute wavefront.
    pub wavefront_widths: Vec<usize>,
}

/// Runs the cascade in summary mode: reveal + FI + classification fresh,
/// refinement chunks replayed from `prev_state` where their recorded
/// footprints validate, recomputed (with footprint recording) otherwise.
/// Returns the result — bit-identical to the full pipeline — plus the
/// encoded new state and a reuse report.
#[must_use]
pub fn solve(
    analysis: &ModuleAnalysis,
    config: &MantaConfig,
    prev_state: Option<&[u8]>,
) -> (InferenceResult, Vec<u8>, SolveReport) {
    let text_fps = function_fingerprints(analysis.module());
    solve_with(analysis, config, prev_state, &text_fps)
}

/// [`solve`] with the canonical-text fingerprints precomputed by the
/// caller. The engine already hashes every function for the module
/// cache index; hashing again here would double the dominant fixed
/// cost of a warm summary solve.
pub(crate) fn solve_with(
    analysis: &ModuleAnalysis,
    config: &MantaConfig,
    prev_state: Option<&[u8]>,
    text_fps: &[(String, u64)],
) -> (InferenceResult, Vec<u8>, SolveReport) {
    manta_telemetry::span!("infer.summary");
    let module = analysis.module();
    let prev = {
        manta_telemetry::span!("summary.decode");
        match prev_state {
            Some(p) => match decode_state(p) {
                Ok(s) => s,
                Err(_) => {
                    manta_telemetry::counter("summary.state_corrupt", 1);
                    State::default()
                }
            },
            None => State::default(),
        }
    };
    let inputs = {
        manta_telemetry::span!("summary.inputs");
        Inputs::new(analysis, text_fps)
    };
    let stages = stage_order(config.sensitivity);
    let mut report = SolveReport::default();

    let reveals = RevealMap::collect(analysis);
    let mut result = flow_insensitive::run(analysis, &reveals, *config);

    // Call-graph condensation: SCC topological levels drive the
    // recompute wavefronts (callees' chunks before callers').
    let call_edges: Vec<(u32, u32)> = analysis
        .callgraph
        .edges()
        .iter()
        .map(|e| (e.caller.0, e.callee.0))
        .collect();
    let cond = wavefront::condense(module.function_count(), &call_edges);
    let level_of_func = cond.node_levels();

    let needs_fs = stages.contains(&StageKind::Fs);
    let cfgs = needs_fs.then(|| Cfgs::new(analysis));

    // Points-to boundary fingerprints: a function whose interface-level
    // points-to facts changed since the state was written exchanged
    // different facts with its callers, so every caller's chunk is
    // force-dirtied (in addition to ordinary footprint validation —
    // forcing extra recomputes is always sound because recompute is
    // deterministic and bit-identical). This mirrors the partitioned
    // solver: an edited partition's boundary deltas dirty its callers.
    let boundary_now = {
        manta_telemetry::span!("summary.boundary_fps");
        inputs.boundary_fps(analysis)
    };
    let force_dirty: std::collections::HashSet<u64> = {
        let prev_bnd: HashMap<u64, u64> = prev.boundary_fps.iter().copied().collect();
        let mut force = std::collections::HashSet::new();
        if !prev_bnd.is_empty() {
            for func in module.functions() {
                let fid = func.id();
                let nh = inputs.name_hash[fid.index()];
                if prev_bnd.get(&nh) == Some(&boundary_now[fid.index()]) {
                    continue;
                }
                // Changed (or new) boundary: the owner and every caller
                // consume its interface facts.
                force.insert(nh);
                for e in analysis.callgraph.callers(fid) {
                    force.insert(inputs.name_hash[e.caller.index()]);
                }
            }
        }
        manta_telemetry::counter("summary.boundary_dirty", force.len() as u64);
        force
    };

    let mut new_state = State::default();
    let mut interner = FpInterner::default();
    for &stage in stages {
        let in_fps = {
            manta_telemetry::span!("summary.stage_fps");
            inputs.stage_fps(analysis, &result)
        };
        let over = classify::over_approximated(analysis, &result);
        match stage {
            StageKind::Cs => manta_telemetry::counter("cs.candidates", over.len() as u64),
            StageKind::Fs => manta_telemetry::counter("fs.candidates", over.len() as u64),
        }
        let chunks = ctx_refine::partition_by_func(over);

        let (reused, dirty) = {
            manta_telemetry::span!("summary.validate");
            let prev_by_name: HashMap<u64, &ChunkEntry> = prev
                .entries(stage.tag())
                .map(|es| es.iter().map(|(h, e)| (*h, e)).collect())
                .unwrap_or_default();
            // Footprint validity memoized per interned list: chunks in
            // one call cluster share a footprint, so each distinct read
            // set is checked once per stage no matter how many chunks
            // cite it.
            let mut fp_ok: Vec<Option<bool>> = vec![None; prev.footprints.len()];
            let mut reused: Vec<(FuncId, ChunkEntry)> = Vec::new();
            let mut dirty: Vec<(FuncId, Vec<VarRef>)> = Vec::new();
            for chunk in chunks {
                let f = chunk[0].func;
                let nh = inputs.name_hash[f.index()];
                // Boundary-forced chunks recompute even when their read
                // footprint still validates: the interface-level points-to
                // change is not guaranteed to show up in the stage
                // fingerprints the footprint cites.
                let valid = if force_dirty.contains(&nh) {
                    None
                } else {
                    prev_by_name.get(&nh).copied().filter(|e| {
                        let idx = e.footprint as usize;
                        *fp_ok[idx].get_or_insert_with(|| {
                            prev.footprints[idx].iter().all(|&(h, fp)| {
                                inputs.by_name.get(&h).map(|g| in_fps[g.index()]) == Some(fp)
                            })
                        })
                    })
                };
                match valid {
                    Some(e) => reused.push((f, e.clone())),
                    None => dirty.push((f, chunk)),
                }
            }
            (reused, dirty)
        };
        manta_telemetry::counter("summary.hits", reused.len() as u64);
        manta_telemetry::counter("summary.recomputes", dirty.len() as u64);
        for (f, _) in &reused {
            report.reused.push(module.function(*f).name().to_string());
        }
        for (f, _) in &dirty {
            report
                .recomputed
                .push(module.function(*f).name().to_string());
        }

        // Recompute dirty chunks wavefront by wavefront against the
        // frozen pre-stage result, recording footprints.
        let levels = wavefront::group_by_level(dirty, |f: FuncId| level_of_func[f.index()]);
        let mut width_max = 0u64;
        for l in &levels {
            report.wavefront_widths.push(l.len());
            width_max = width_max.max(l.len() as u64);
        }
        if width_max > 0 {
            manta_telemetry::counter_set("summary.wavefront_width_max", width_max);
        }
        let frozen: &InferenceResult = &result;
        let raw = {
            manta_telemetry::span!("summary.recompute");
            wavefront::wavefront_dispatch(levels, "summary.wavefronts", |(f, chunk)| {
                let mut fp = Footprint::on(module.function_count());
                let (vars, sites) = match stage {
                    StageKind::Cs => {
                        let updates = match ctx_refine::refine_chunk(
                            analysis,
                            &reveals,
                            config,
                            frozen,
                            &Budget::unlimited(),
                            chunk,
                            &mut fp,
                        ) {
                            Ok(u) => u,
                            Err(_) => unreachable!("unlimited budget tripped"),
                        };
                        (updates, Vec::new())
                    }
                    StageKind::Fs => {
                        let out: FsChunkOut = match flow_refine::refine_chunk(
                            analysis,
                            &reveals,
                            config,
                            frozen,
                            cfgs.as_ref().expect("Cfgs built for FS stages"),
                            &Budget::unlimited(),
                            chunk,
                            &mut fp,
                        ) {
                            Ok(o) => o,
                            Err(_) => unreachable!("unlimited budget tripped"),
                        };
                        out
                    }
                };
                let footprint: Vec<(u64, u64)> = fp
                    .into_funcs()
                    .into_iter()
                    .map(|g| (inputs.name_hash[g.index()], in_fps[g.index()]))
                    .collect();
                let vars: Vec<(u32, TypeInterval)> =
                    vars.into_iter().map(|(v, i)| (v.value.0, i)).collect();
                let sites: Vec<(u32, u32, TypeInterval)> = sites
                    .into_iter()
                    .map(|((v, s), i)| (v.value.0, s.0, i))
                    .collect();
                (f, footprint, vars, sites)
            })
        };
        // Interning is sequential bookkeeping, so it happens after the
        // parallel dispatch rather than inside it.
        let computed: Vec<(FuncId, ChunkEntry)> = raw
            .into_iter()
            .map(|(f, footprint, vars, sites)| {
                let entry = ChunkEntry {
                    footprint: interner.intern(footprint),
                    vars,
                    sites,
                };
                (f, entry)
            })
            .collect();

        // Apply updates (keys are unique per chunk, so order between
        // replayed and recomputed chunks cannot matter), then classify —
        // exactly what `refine_budgeted` does after its own merge.
        manta_telemetry::span!("summary.apply");
        let mut applied_vars = 0u64;
        let mut applied_sites = 0u64;
        for (f, entry) in reused.iter().chain(computed.iter()) {
            for (v, i) in &entry.vars {
                result
                    .var_types
                    .insert(VarRef::new(*f, ValueId(*v)), i.clone());
                applied_vars += 1;
            }
            for (v, s, i) in &entry.sites {
                result
                    .site_types
                    .insert((VarRef::new(*f, ValueId(*v)), InstId(*s)), i.clone());
                applied_sites += 1;
            }
        }
        match stage {
            StageKind::Cs => manta_telemetry::counter("cs.refined", applied_vars),
            StageKind::Fs => manta_telemetry::counter("fs.site_types", applied_sites),
        }
        let counts = classify::classify(analysis, &mut result);
        result.stage_counts.push((stage.stage(), counts));

        // New state for this stage: replayed + recomputed entries, plus
        // previous entries for functions that still exist but had no
        // candidates this round (a later edit may revive them).
        // Replayed and carried entries cite the *previous* footprint
        // table, so their lists re-intern into the new one.
        let mut entries: Vec<(u64, ChunkEntry)> = Vec::new();
        let mut present: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (f, mut e) in reused {
            let nh = inputs.name_hash[f.index()];
            present.insert(nh);
            e.footprint = interner.intern(prev.footprints[e.footprint as usize].clone());
            entries.push((nh, e));
        }
        for (f, e) in computed {
            let nh = inputs.name_hash[f.index()];
            present.insert(nh);
            entries.push((nh, e));
        }
        if let Some(old) = prev.entries(stage.tag()) {
            for (nh, e) in old {
                if inputs.by_name.contains_key(nh) && !present.contains(nh) {
                    let mut e = e.clone();
                    e.footprint = interner.intern(prev.footprints[e.footprint as usize].clone());
                    entries.push((*nh, e));
                }
            }
        }
        entries.sort_by_key(|(nh, _)| *nh);
        new_state.stages.push((stage.tag(), entries));
    }

    result.config = *config;
    new_state.footprints = interner.table;
    new_state.boundary_fps = {
        let mut fps: Vec<(u64, u64)> = module
            .functions()
            .map(|f| {
                let i = f.id().index();
                (inputs.name_hash[i], boundary_now[i])
            })
            .collect();
        fps.sort_unstable();
        fps
    };
    let encoded = {
        manta_telemetry::span!("summary.encode");
        encode_state(&new_state)
    };
    (result, encoded, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::results_identical;
    use crate::Manta;
    use manta_ir::{BinOp, ModuleBuilder, Width};

    fn module(mul: bool) -> manta_ir::Module {
        let mut mb = ModuleBuilder::new("summ");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);
        let (_c1, mut cb1) = mb.function("use_int", &[Width::W64], None);
        let n = cb1.param(0);
        let n2 = if mul {
            cb1.binop(BinOp::Mul, n, n, Width::W64)
        } else {
            cb1.binop(BinOp::Add, n, n, Width::W64)
        };
        let r1 = cb1.call(id_f, &[n2], Some(Width::W64)).unwrap();
        let s = cb1.alloca(8);
        cb1.store(s, r1);
        cb1.ret(None);
        mb.finish_function(cb1);
        let (_c2, mut cb2) = mb.function("use_ptr", &[], None);
        let k = cb2.const_int(16, Width::W64);
        let buf = cb2.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let r2 = cb2.call(id_f, &[buf], Some(Width::W64)).unwrap();
        let v = cb2.load(r2, Width::W64);
        let _ = v;
        cb2.ret(None);
        mb.finish_function(cb2);
        mb.finish()
    }

    #[test]
    fn summary_solve_matches_full_pipeline_bit_identically() {
        for s in [
            Sensitivity::Fi,
            Sensitivity::FiFs,
            Sensitivity::FiCsFs,
            Sensitivity::FiFsCs,
        ] {
            let analysis = manta_analysis::ModuleAnalysis::build(module(true));
            let config = MantaConfig::with_sensitivity(s);
            let full = Manta::new(config).infer(&analysis);
            let (cold, state, _) = solve(&analysis, &config, None);
            assert!(results_identical(&full, &cold), "{s:?} cold");
            let (warm, _, report) = solve(&analysis, &config, Some(&state));
            assert!(results_identical(&full, &warm), "{s:?} warm");
            assert!(
                report.recomputed.is_empty(),
                "{s:?}: nothing changed, nothing should recompute: {report:?}"
            );
        }
    }

    #[test]
    fn edit_recomputes_only_footprint_dirty_chunks() {
        let config = MantaConfig::full();
        let before = manta_analysis::ModuleAnalysis::build(module(true));
        let (_, state, _) = solve(&before, &config, None);

        let after = manta_analysis::ModuleAnalysis::build(module(false));
        let full = Manta::new(config).infer(&after);
        let (incr, _, report) = solve(&after, &config, Some(&state));
        assert!(results_identical(&full, &incr), "edit parity");
        // `use_ptr` is untouched by the edit and shares no walk inputs
        // with `use_int`'s changed text, so its chunks must replay.
        assert!(
            !report.recomputed.contains(&"use_ptr".to_string()),
            "untouched function recomputed: {report:?}"
        );
    }

    #[test]
    fn corrupt_state_degrades_to_full_recompute() {
        let config = MantaConfig::full();
        let analysis = manta_analysis::ModuleAnalysis::build(module(true));
        let full = Manta::new(config).infer(&analysis);
        let (r, _, _) = solve(&analysis, &config, Some(b"garbage"));
        assert!(results_identical(&full, &r));
    }

    #[test]
    fn state_codec_roundtrips() {
        let config = MantaConfig::full();
        let analysis = manta_analysis::ModuleAnalysis::build(module(true));
        let (_, state, _) = solve(&analysis, &config, None);
        let decoded = decode_state(&state).unwrap();
        assert_eq!(encode_state(&decoded), state);
    }
}
