//! Variable classification into `V_P` / `V_O` / `V_U` (paper §4.1).

use manta_analysis::{ModuleAnalysis, VarRef};
use manta_ir::ValueKind;

use crate::interval::Resolution;
use crate::{ClassCounts, InferenceResult};

/// The classification of one variable after a stage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VarClass {
    /// `V_P` — type precisely resolved as a singleton; no refinement can
    /// produce a better result.
    Precise,
    /// `V_O` — over-approximated; higher-precision stages may narrow the
    /// interval.
    Over,
    /// `V_U` — no type hints were captured; refinement cannot help either
    /// (even the flow-insensitive stage saw nothing), so the variable is
    /// widened to the *any-type* interval.
    Unknown,
}

/// Recomputes the classification of every non-constant variable from the
/// intervals in `result`, updates `result.class`, widens unknowns to the
/// any-type interval, and returns the counts.
///
/// Constants are excluded: their types are trivially known and the paper's
/// metrics count program variables.
pub fn classify(analysis: &ModuleAnalysis, result: &mut InferenceResult) -> ClassCounts {
    manta_telemetry::span!("classify");
    let mut counts = ClassCounts::default();
    for func in analysis.module().functions() {
        for (value, data) in func.values() {
            if matches!(data.kind, ValueKind::Const(_)) {
                continue;
            }
            let v = VarRef::new(func.id(), value);
            let class = match result.var_types.get(&v) {
                None => VarClass::Unknown,
                Some(i) => match i.resolution() {
                    Resolution::Unknown => VarClass::Unknown,
                    Resolution::Precise(_) => VarClass::Precise,
                    Resolution::Over => VarClass::Over,
                },
            };
            match class {
                VarClass::Precise => counts.precise += 1,
                VarClass::Over => counts.over += 1,
                // §4.1 widens V_U to the any-type interval `(⊤, ⊥)`; here
                // the `(⊥, ⊤)` sentinel is kept internally (so unknowns
                // stay distinguishable from maximal hint conflicts) and
                // the widening happens in [`InferenceResult::upper`] /
                // [`InferenceResult::lower`].
                VarClass::Unknown => counts.unknown += 1,
            }
            result.class.insert(v, class);
        }
    }
    // The latest classification wins: counter_set so a report shows the
    // final |V_P| / |V_O| / |V_U| split, not a sum over stages.
    manta_telemetry::counter_set("classify.v_p", counts.precise as u64);
    manta_telemetry::counter_set("classify.v_o", counts.over as u64);
    manta_telemetry::counter_set("classify.v_u", counts.unknown as u64);
    counts
}

/// The set of variables currently classified `V_O`, in deterministic order.
pub fn over_approximated(analysis: &ModuleAnalysis, result: &InferenceResult) -> Vec<VarRef> {
    let mut out = Vec::new();
    for func in analysis.module().functions() {
        for (value, data) in func.values() {
            if matches!(data.kind, ValueKind::Const(_)) {
                continue;
            }
            let v = VarRef::new(func.id(), value);
            if result.class.get(&v) == Some(&VarClass::Over) {
                out.push(v);
            }
        }
    }
    out
}
