//! The staged inference engine: one orchestration path for every way of
//! running Manta.
//!
//! Four cross-cutting features (telemetry, resilience, parallelism,
//! caching) each used to add its own `infer_*` entrypoint, leaving the
//! driver logic — spans, budgets, panic isolation, cache keying,
//! degradation records — re-implemented per variant. This module folds
//! the matrix back into two pieces:
//!
//! * [`Stage`] — one pipeline pass (reveal, FI, CS, FS, or the whole
//!   analysis substrate) with a name, a fault/isolation site, and a
//!   completed-tier label. Stages know *what* to compute, nothing about
//!   budgets, spans, faults, or caching.
//! * [`Engine`] — the driver. Built once via [`EngineBuilder`] from a
//!   [`MantaConfig`], a [`BudgetSpec`], a strictness flag, a thread
//!   count, and an optional [`AnalysisCache`], it applies every
//!   cross-cutting concern exactly once, in one loop, for every stage.
//!
//! [`Engine::analyze`] replaces `infer` / `infer_resilient` /
//! `infer_strict` / `infer_cached` / `infer_resilient_cached`;
//! [`Engine::analyze_batch`] adds whole-module scheduling across the
//! work-stealing pool on top. The legacy entrypoints survive as thin
//! deprecated shims over this module and are bit-identical to it (see
//! `tests/engine_parity.rs`).

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use manta_analysis::ModuleAnalysis;
use manta_ir::Module;
use manta_resilience::{
    fault_point_budgeted, isolate, plan_active, Budget, BudgetExceeded, BudgetSpec, Degradation,
    DegradationKind, MantaError,
};
use manta_store::{Key, StoreError};

use crate::cache::{config_hash, encode_result, module_fingerprint, AnalysisCache};
use crate::provenance::ProvenanceGraph;
use crate::{
    ctx_refine, flow_insensitive, flow_refine, reveal, InferenceResult, MantaConfig, Sensitivity,
};

// ---------------------------------------------------------------------
// Stage context
// ---------------------------------------------------------------------

/// Everything a [`Stage`] may read or write while it runs.
///
/// The context owns the evolving [`InferenceResult`] and the reveal map;
/// the substrate slot lets the preprocessing stage run under the same
/// driver even though it *produces* the [`ModuleAnalysis`] the later
/// stages consume.
pub struct StageCtx<'a> {
    config: MantaConfig,
    budget: &'a Budget,
    substrate: SubstrateSlot<'a>,
    reveals: Option<reveal::RevealMap>,
    result: InferenceResult,
}

enum SubstrateSlot<'a> {
    /// The substrate stage has not run yet; holds the raw module.
    Pending(Option<Module>),
    /// The caller supplied a prebuilt analysis.
    Ready(&'a ModuleAnalysis),
    /// The substrate stage ran and built the analysis in place.
    Built(Box<ModuleAnalysis>),
}

impl<'a> StageCtx<'a> {
    fn over(analysis: &'a ModuleAnalysis, config: MantaConfig, budget: &'a Budget) -> StageCtx<'a> {
        StageCtx {
            config,
            budget,
            substrate: SubstrateSlot::Ready(analysis),
            reveals: None,
            result: InferenceResult::empty(config),
        }
    }

    fn pending(module: Module, config: MantaConfig, budget: &'a Budget) -> StageCtx<'a> {
        StageCtx {
            config,
            budget,
            substrate: SubstrateSlot::Pending(Some(module)),
            reveals: None,
            result: InferenceResult::empty(config),
        }
    }

    /// The inference configuration in effect.
    pub fn config(&self) -> &MantaConfig {
        &self.config
    }

    /// The cooperative budget every stage ticks against.
    pub fn budget(&self) -> &Budget {
        self.budget
    }

    /// The analysis substrate (panics if the substrate stage has not
    /// run and no prebuilt analysis was supplied).
    pub fn analysis(&self) -> &ModuleAnalysis {
        match &self.substrate {
            SubstrateSlot::Ready(a) => a,
            SubstrateSlot::Built(a) => a,
            SubstrateSlot::Pending(_) => panic!("substrate stage has not run yet"),
        }
    }

    /// The reveal map (panics if the reveal stage has not run).
    pub fn reveals(&self) -> &reveal::RevealMap {
        self.reveals.as_ref().expect("reveal stage has not run yet")
    }

    /// The evolving inference result.
    pub fn result(&self) -> &InferenceResult {
        &self.result
    }

    /// Mutable access for refinement stages.
    pub fn result_mut(&mut self) -> &mut InferenceResult {
        &mut self.result
    }
}

// ---------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------

/// One pass of the pipeline, registered with the [`Engine`] driver.
///
/// Implementations carry no resilience or telemetry logic of their own:
/// the driver opens the span, arms the fault point, isolates panics,
/// snapshots the result for rollback, and records degradations — once,
/// identically, for every stage.
pub trait Stage: Sync {
    /// Span name under the `infer` root (e.g. `"fi"`).
    fn name(&self) -> &'static str;

    /// Fault-injection / panic-isolation site and the `stage` label on
    /// any [`Degradation`] this stage causes (e.g. `"infer.fi"`).
    fn site(&self) -> &'static str;

    /// The completed-tier label this stage contributes on success:
    /// base tiers return `"FI"` / `"FS"`, refinements `"+CS"` / `"+FS"`,
    /// stages outside the precision cascade (reveal, substrate) `None`.
    fn tier(&self) -> Option<&'static str> {
        None
    }

    /// Whether the driver wraps this stage in `isolate` + a budgeted
    /// fault point. The substrate stage opts out: it guards its four
    /// sub-passes (preprocess, callgraph, points-to, DDG) at its own
    /// finer-grained `analysis.*` sites.
    fn guarded(&self) -> bool {
        true
    }

    /// Whether the driver opens a span named [`Stage::name`] around the
    /// stage. The substrate stage opts out because it instruments
    /// itself (`analysis.build` and children).
    fn spanned(&self) -> bool {
        true
    }

    /// Runs the pass, reading and writing through `ctx`.
    ///
    /// # Errors
    ///
    /// Budget exhaustion and (for the substrate) inner-stage failures
    /// surface as [`MantaError`]; panics are caught by the driver.
    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), MantaError>;
}

/// Converts a blown per-stage budget into a [`MantaError`], bumping the
/// `resilience.budget_exhausted` counter exactly once.
fn budget_error(site: &'static str, e: BudgetExceeded) -> MantaError {
    manta_resilience::budget_exhausted(site);
    MantaError::Budget {
        stage: site.to_string(),
        kind: e.kind,
    }
}

/// Builds the analysis substrate (preprocess → call graph → points-to →
/// DDG) from a raw module.
struct SubstrateStage {
    /// Solve points-to with the compositional partitioned solver.
    partitioned: bool,
}

impl Stage for SubstrateStage {
    fn name(&self) -> &'static str {
        "analysis.build"
    }

    fn site(&self) -> &'static str {
        "analysis.build"
    }

    fn guarded(&self) -> bool {
        false
    }

    fn spanned(&self) -> bool {
        false
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), MantaError> {
        let module = match &mut ctx.substrate {
            SubstrateSlot::Pending(m) => m.take().expect("substrate stage ran twice"),
            _ => return Ok(()),
        };
        let analysis = ModuleAnalysis::build_budgeted_with(
            module,
            manta_analysis::BuildOptions {
                partitioned_pointsto: self.partitioned,
                ..manta_analysis::BuildOptions::default()
            },
            ctx.budget,
        )?;
        ctx.substrate = SubstrateSlot::Built(Box::new(analysis));
        Ok(())
    }
}

/// Collects type-revealing instructions (paper §4.1, Table 1 sources).
struct RevealStage;

impl Stage for RevealStage {
    fn name(&self) -> &'static str {
        "reveal"
    }

    fn site(&self) -> &'static str {
        "infer.reveal"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), MantaError> {
        ctx.reveals = Some(reveal::RevealMap::collect(ctx.analysis()));
        Ok(())
    }
}

/// Global flow-insensitive unification — the FI base tier.
struct FiStage;

impl Stage for FiStage {
    fn name(&self) -> &'static str {
        "fi"
    }

    fn site(&self) -> &'static str {
        "infer.fi"
    }

    fn tier(&self) -> Option<&'static str> {
        Some("FI")
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), MantaError> {
        let mut r =
            flow_insensitive::run_budgeted(ctx.analysis(), ctx.reveals(), ctx.config, ctx.budget)
                .map_err(|e| budget_error(self.site(), e))?;
        r.config = ctx.config;
        ctx.result = r;
        Ok(())
    }
}

/// Standalone flow-sensitive inference — the FS base tier
/// ([`Sensitivity::Fs`]), no global unification at all.
struct StandaloneFsStage;

impl Stage for StandaloneFsStage {
    fn name(&self) -> &'static str {
        "fs"
    }

    fn site(&self) -> &'static str {
        "infer.fs"
    }

    fn tier(&self) -> Option<&'static str> {
        Some("FS")
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), MantaError> {
        let mut r = flow_refine::standalone_fs_budgeted(
            ctx.analysis(),
            ctx.reveals(),
            &ctx.config,
            ctx.budget,
        )
        .map_err(|e| budget_error(self.site(), e))?;
        r.config = ctx.config;
        ctx.result = r;
        Ok(())
    }
}

/// Context-sensitive CFL refinement (Algorithm 1).
struct CsStage;

impl Stage for CsStage {
    fn name(&self) -> &'static str {
        "cs"
    }

    fn site(&self) -> &'static str {
        "infer.cs"
    }

    fn tier(&self) -> Option<&'static str> {
        Some("+CS")
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), MantaError> {
        let StageCtx {
            config,
            budget,
            substrate,
            reveals,
            result,
        } = ctx;
        let analysis: &ModuleAnalysis = match &*substrate {
            SubstrateSlot::Ready(a) => a,
            SubstrateSlot::Built(a) => a,
            SubstrateSlot::Pending(_) => panic!("substrate stage has not run yet"),
        };
        let reveals = reveals.as_ref().expect("reveal stage has not run yet");
        ctx_refine::refine_budgeted(analysis, reveals, config, result, budget)
            .map_err(|e| budget_error(self.site(), e))
    }
}

/// Flow-sensitive refinement of the remaining over-approximated
/// variables (Algorithm 2).
struct FsRefineStage;

impl Stage for FsRefineStage {
    fn name(&self) -> &'static str {
        "fs"
    }

    fn site(&self) -> &'static str {
        "infer.fs"
    }

    fn tier(&self) -> Option<&'static str> {
        Some("+FS")
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), MantaError> {
        let StageCtx {
            config,
            budget,
            substrate,
            reveals,
            result,
        } = ctx;
        let analysis: &ModuleAnalysis = match &*substrate {
            SubstrateSlot::Ready(a) => a,
            SubstrateSlot::Built(a) => a,
            SubstrateSlot::Pending(_) => panic!("substrate stage has not run yet"),
        };
        let reveals = reveals.as_ref().expect("reveal stage has not run yet");
        flow_refine::refine_budgeted(analysis, reveals, config, result, budget)
            .map_err(|e| budget_error(self.site(), e))
    }
}

/// The inference cascade for one sensitivity, in execution order.
///
/// [`Sensitivity::FiFsCs`] lists FS before CS — §6.4's reversed-order
/// ablation, the aggressive stage first.
pub fn stages(sensitivity: Sensitivity) -> &'static [&'static dyn Stage] {
    match sensitivity {
        Sensitivity::Fi => &[&RevealStage, &FiStage],
        Sensitivity::Fs => &[&RevealStage, &StandaloneFsStage],
        Sensitivity::FiFs => &[&RevealStage, &FiStage, &FsRefineStage],
        Sensitivity::FiCsFs => &[&RevealStage, &FiStage, &CsStage, &FsRefineStage],
        Sensitivity::FiFsCs => &[&RevealStage, &FiStage, &FsRefineStage, &CsStage],
    }
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Composes sensitivity config, budget, strictness, thread pool, cache,
/// and telemetry into an [`Engine`].
///
/// ```
/// use manta::engine::EngineBuilder;
/// use manta::Sensitivity;
///
/// let engine = EngineBuilder::new()
///     .sensitivity(Sensitivity::FiCsFs)
///     .fuel(1_000_000)
///     .build()
///     .unwrap();
/// # let _ = engine;
/// ```
#[derive(Default)]
pub struct EngineBuilder {
    config: MantaConfig,
    budget: BudgetSpec,
    strict: bool,
    threads: Option<usize>,
    telemetry: Option<bool>,
    provenance: Option<bool>,
    summaries: bool,
    partitioned_pointsto: bool,
    cache_dir: Option<PathBuf>,
    cache: Option<Arc<AnalysisCache>>,
}

impl EngineBuilder {
    /// Starts from the default configuration (full sensitivity is
    /// [`MantaConfig::full`], the default config is FI-only).
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Sets the whole inference configuration.
    #[must_use]
    pub fn config(mut self, config: MantaConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets only the sensitivity, keeping the other config knobs.
    #[must_use]
    pub fn sensitivity(mut self, sensitivity: Sensitivity) -> Self {
        self.config.sensitivity = sensitivity;
        self
    }

    /// Sets the budget specification (fuel and/or deadline).
    #[must_use]
    pub fn budget(mut self, spec: BudgetSpec) -> Self {
        self.budget = spec;
        self
    }

    /// Caps cooperative fuel (abstract work units) per analysis.
    #[must_use]
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.budget.fuel = Some(fuel);
        self
    }

    /// Caps wall-clock time per analysis, in milliseconds.
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.budget.deadline_ms = Some(ms);
        self
    }

    /// Propagate the first stage failure as an error instead of
    /// degrading gracefully (the CLI's `--strict`).
    #[must_use]
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Sizes the process-global work-stealing pool (0 = one worker per
    /// core). Applied at [`EngineBuilder::build`] time.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables or disables telemetry collection process-wide. When not
    /// called, the current telemetry state is left untouched.
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = Some(enabled);
        self
    }

    /// Enables or disables type-provenance recording: the engine builds
    /// a [`ProvenanceGraph`] alongside each analysis (retrieved through
    /// [`Engine::analyze_explained`]) and the points-to solver records
    /// first-derivation origins. Off — the default — costs one branch
    /// per potential recording point and leaves results bit-identical
    /// to a build without the feature. Applied process-wide at
    /// [`EngineBuilder::build`] time, like [`EngineBuilder::telemetry`];
    /// when not called, the current process state is left untouched.
    #[must_use]
    pub fn provenance(mut self, enabled: bool) -> Self {
        self.provenance = Some(enabled);
        self
    }

    /// Enables compositional per-function summaries: with a cache
    /// attached, a module-fingerprint miss re-solves incrementally —
    /// reveal/FI/classification fresh, refinement chunks replayed from
    /// the persisted summary state wherever their recorded input
    /// footprints still validate (see [`crate::summaries`]). Results
    /// stay bit-identical to the full pipeline. Ignored without a
    /// cache; bypassed (full pipeline) under fuel limits, deadlines,
    /// strict mode, fault plans, provenance recording, and the
    /// standalone-FS sensitivity.
    #[must_use]
    pub fn summaries(mut self, enabled: bool) -> Self {
        self.summaries = enabled;
        self
    }

    /// Solves points-to with the compositional partitioned solver:
    /// per-function constraint partitions with explicit boundary
    /// interfaces, scheduled callees-first as call-graph wavefronts
    /// with each partition's local fixpoint an independent parallel
    /// job. Results are bit-identical to the monolithic delta solver
    /// (pinned by the differential suite); the win is batch-mode
    /// wall-clock on multi-core hosts and incremental re-solves.
    #[must_use]
    pub fn partitioned_pointsto(mut self, enabled: bool) -> Self {
        self.partitioned_pointsto = enabled;
        self
    }

    /// Opens (or initializes) a persistent [`AnalysisCache`] in `dir`
    /// at build time.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Attaches an already-open cache (shared via [`Arc`]). Takes
    /// precedence over [`EngineBuilder::cache_dir`].
    #[must_use]
    pub fn cache(mut self, cache: Arc<AnalysisCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Builds the engine, applying the thread-pool size and telemetry
    /// switch and opening the cache directory if one was given.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] only when a cache directory was
    /// requested and cannot be opened; cacheless builds are infallible.
    pub fn build(self) -> Result<Engine, StoreError> {
        if let Some(threads) = self.threads {
            manta_parallel::set_threads(threads);
        }
        if let Some(enabled) = self.telemetry {
            manta_telemetry::set_enabled(enabled);
        }
        if let Some(enabled) = self.provenance {
            manta_telemetry::set_provenance_enabled(enabled);
        }
        let cache = match (self.cache, self.cache_dir) {
            (Some(cache), _) => Some(cache),
            (None, Some(dir)) => Some(Arc::new(AnalysisCache::open(dir)?)),
            (None, None) => None,
        };
        Ok(Engine {
            config: self.config,
            budget: self.budget,
            strict: self.strict,
            provenance: self.provenance.unwrap_or(false),
            summaries: self.summaries,
            partitioned_pointsto: self.partitioned_pointsto,
            cache,
        })
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// The single orchestration path: every analysis — plain, budgeted,
/// strict, cached, batched, CLI- or eval-driven — runs through
/// [`Engine::analyze`]'s driver loop.
#[derive(Clone)]
pub struct Engine {
    pub(crate) config: MantaConfig,
    pub(crate) budget: BudgetSpec,
    pub(crate) strict: bool,
    pub(crate) provenance: bool,
    pub(crate) summaries: bool,
    pub(crate) partitioned_pointsto: bool,
    pub(crate) cache: Option<Arc<AnalysisCache>>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("budget", &self.budget)
            .field("strict", &self.strict)
            .field("provenance", &self.provenance)
            .field("summaries", &self.summaries)
            .field("partitioned_pointsto", &self.partitioned_pointsto)
            .field("cache", &self.cache.is_some())
            .finish()
    }
}

impl Engine {
    /// An engine with the given config and everything else default:
    /// unlimited budget, graceful degradation, no cache.
    pub fn new(config: MantaConfig) -> Engine {
        Engine {
            config,
            budget: BudgetSpec::default(),
            strict: false,
            provenance: false,
            summaries: false,
            partitioned_pointsto: false,
            cache: None,
        }
    }

    /// Starts a builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The inference configuration.
    pub fn config(&self) -> &MantaConfig {
        &self.config
    }

    /// The budget specification new analyses start from.
    pub fn budget(&self) -> &BudgetSpec {
        &self.budget
    }

    /// Whether stage failures propagate as errors.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Whether this engine records a type-provenance graph per analysis.
    pub fn provenance(&self) -> bool {
        self.provenance
    }

    /// Whether the substrate solves points-to with the partitioned
    /// solver.
    pub fn partitioned_pointsto(&self) -> bool {
        self.partitioned_pointsto
    }

    /// The attached persistent cache, if any.
    pub fn cache(&self) -> Option<&AnalysisCache> {
        self.cache.as_deref()
    }

    /// The attached cache as a shareable handle, for callers that hold
    /// the cache beyond one engine's lifetime (a daemon publishing
    /// store stats after its sessions end).
    pub fn cache_handle(&self) -> Option<Arc<AnalysisCache>> {
        self.cache.clone()
    }

    /// A per-session view of this engine with its own budget: shares
    /// the configuration, strictness and the attached cache (the `Arc`
    /// is cloned, not the store), overriding only the budget spec. A
    /// multi-tenant server derives one per request so an abusive
    /// client's budget cannot leak into its neighbors'.
    #[must_use]
    pub fn with_budget_spec(&self, budget: BudgetSpec) -> Engine {
        Engine {
            budget,
            ..self.clone()
        }
    }

    /// Analyzes one prepared module: cache lookup (when attached and
    /// eligible), then the staged cascade under a fresh budget.
    ///
    /// # Errors
    ///
    /// Non-strict engines never error — failures degrade and are
    /// recorded on [`InferenceResult::degradations`]. Strict engines
    /// propagate the first stage failure.
    pub fn analyze(&self, analysis: &ModuleAnalysis) -> Result<InferenceResult, MantaError> {
        self.analyze_inner(analysis, None).map(|(r, _)| r)
    }

    /// Like [`Engine::analyze`] but also returning the type-provenance
    /// graph when the engine was built with
    /// [`EngineBuilder::provenance`]`(true)`. The graph is `Some` iff
    /// provenance is on; a cache hit restores the persisted graph (and
    /// recomputes when the cached entry predates provenance recording).
    ///
    /// # Errors
    ///
    /// As for [`Engine::analyze`].
    pub fn analyze_explained(
        &self,
        analysis: &ModuleAnalysis,
    ) -> Result<(InferenceResult, Option<ProvenanceGraph>), MantaError> {
        self.analyze_inner(analysis, None)
    }

    /// Like [`Engine::analyze`] but charging work to an external,
    /// possibly shared, running budget (the CLI shares one budget
    /// across a whole command). A cache-served result consumes no
    /// budget.
    ///
    /// # Errors
    ///
    /// As for [`Engine::analyze`].
    pub fn analyze_with_budget(
        &self,
        analysis: &ModuleAnalysis,
        budget: &Budget,
    ) -> Result<InferenceResult, MantaError> {
        self.analyze_inner(analysis, Some(budget)).map(|(r, _)| r)
    }

    /// Like [`Engine::analyze`] but reading and writing through an
    /// explicitly provided cache instead of the engine's own — for
    /// callers that manage cache lifetime themselves (the eval runner's
    /// legacy entrypoints).
    ///
    /// # Errors
    ///
    /// As for [`Engine::analyze`].
    pub fn analyze_with_cache(
        &self,
        analysis: &ModuleAnalysis,
        cache: &AnalysisCache,
    ) -> Result<InferenceResult, MantaError> {
        self.analyze_cached(analysis, cache, None).map(|(r, _)| r)
    }

    /// Builds the analysis substrate and runs the cascade, sharing one
    /// budget across both.
    ///
    /// # Errors
    ///
    /// Substrate failures always propagate (there is nothing to degrade
    /// to without points-to and DDG); inference failures follow
    /// [`Engine::analyze`] semantics.
    pub fn analyze_module(
        &self,
        module: Module,
    ) -> Result<(ModuleAnalysis, InferenceResult), MantaError> {
        let budget = self.budget.start();
        let analysis = self.build_substrate(module, &budget)?;
        let result = self.analyze_with_budget(&analysis, &budget)?;
        Ok((analysis, result))
    }

    /// Runs the substrate stage (preprocess → call graph → points-to →
    /// DDG) under the same driver the inference stages use.
    ///
    /// # Errors
    ///
    /// Returns the first sub-stage failure: budget exhaustion at an
    /// `analysis.*` site or a caught panic.
    pub fn build_substrate(
        &self,
        module: Module,
        budget: &Budget,
    ) -> Result<ModuleAnalysis, MantaError> {
        let mut ctx = StageCtx::pending(module, self.config, budget);
        Self::run_stage(
            &SubstrateStage {
                partitioned: self.partitioned_pointsto,
            },
            &mut ctx,
        )?;
        match ctx.substrate {
            SubstrateSlot::Built(analysis) => Ok(*analysis),
            _ => unreachable!("substrate stage builds the analysis or errors"),
        }
    }

    /// Schedules whole-module analyses across the work-stealing pool,
    /// one job per module; within a job the nested stage-level
    /// parallelism runs inline on the worker.
    ///
    /// Results come back in input order, each exactly what
    /// [`Engine::analyze`] returns for that module.
    pub fn analyze_batch(
        &self,
        analyses: &[ModuleAnalysis],
    ) -> Vec<Result<InferenceResult, MantaError>> {
        // Modules are mutually independent, so the batch is one
        // wavefront on the shared scheduler the summary driver and the
        // partitioned points-to solver use for their per-level dispatch.
        let jobs: Vec<&ModuleAnalysis> = analyses.iter().collect();
        manta_parallel::wavefront::wavefront_dispatch(vec![jobs], "engine.batch_wavefronts", |a| {
            self.analyze(a)
        })
    }

    fn analyze_inner(
        &self,
        analysis: &ModuleAnalysis,
        external: Option<&Budget>,
    ) -> Result<(InferenceResult, Option<ProvenanceGraph>), MantaError> {
        match &self.cache {
            Some(cache) => self.analyze_cached(analysis, cache, external),
            None => self.run_uncached(analysis, external),
        }
    }

    fn run_uncached(
        &self,
        analysis: &ModuleAnalysis,
        external: Option<&Budget>,
    ) -> Result<(InferenceResult, Option<ProvenanceGraph>), MantaError> {
        match external {
            Some(budget) => self.run_pipeline(analysis, budget),
            None => self.run_pipeline(analysis, &self.budget.start()),
        }
    }

    /// The cache policy, applied in one place: bypass entirely under a
    /// strict engine, an armed fault plan, or a wall-clock deadline
    /// (faults and deadlines make results nondeterministic); otherwise
    /// sync the per-function index, look up, and persist only
    /// non-degraded results. A provenance-recording engine persists the
    /// graph next to the result under a `"prov"` key with the same
    /// fingerprint and config hash — the result payload itself stays
    /// bit-identical to a provenance-off run.
    fn analyze_cached(
        &self,
        analysis: &ModuleAnalysis,
        cache: &AnalysisCache,
        external: Option<&Budget>,
    ) -> Result<(InferenceResult, Option<ProvenanceGraph>), MantaError> {
        if self.strict || plan_active() || self.budget.deadline_ms.is_some() {
            return self.run_uncached(analysis, external);
        }
        // Canonical-text hashing is the dominant fixed cost of a warm
        // cached solve; compute the per-function and module
        // fingerprints once and feed every consumer below.
        let fingerprints = crate::cache::function_fingerprints(analysis.module());
        let fingerprint = module_fingerprint(analysis.module());
        cache.sync_module_with(analysis, &fingerprints, fingerprint);
        let cfg = config_hash(&self.config, self.budget.fuel);
        let key = Key::new("infer", fingerprint, cfg);
        let prov_key = Key::new("prov", fingerprint, cfg);
        if let Some(hit) = cache.get_result(&key) {
            if !self.provenance {
                return Ok((hit, None));
            }
            // Serve the persisted graph with the hit; a missing or
            // undecodable graph (entry written by a provenance-off
            // engine) falls through to recompute both.
            if let Some(graph) = cache
                .store()
                .get(&prov_key)
                .and_then(|p| ProvenanceGraph::decode(&p).ok())
            {
                return Ok((hit, Some(graph)));
            }
        }
        // Summary mode: on an infer-key miss, re-solve incrementally from
        // the persisted per-function summary state instead of running the
        // full pipeline. Fuel-limited budgets fall through (a blown
        // budget must trip exactly where the full pipeline would), as do
        // provenance engines (stage diffs need the pipeline driver) and
        // ineligible sensitivities.
        if self.summaries
            && !self.provenance
            && self.budget.fuel.is_none()
            && crate::summaries::eligible(self.config.sensitivity)
        {
            let state_key = crate::summaries::state_key(analysis.module().name(), &self.config);
            let prev = cache.store().get(&state_key);
            let (result, state, _report) = crate::summaries::solve_with(
                analysis,
                &self.config,
                prev.as_deref(),
                &fingerprints,
            );
            if !result.is_degraded() {
                let _ = cache.store().put(&key, &encode_result(&result));
                let _ = cache.store().put(&state_key, &state);
            }
            return Ok((result, None));
        }
        let (result, prov) = self.run_pipeline(analysis, &self.budget.start())?;
        if !result.is_degraded() {
            let _ = cache.store().put(&key, &encode_result(&result));
            if let Some(graph) = &prov {
                let _ = cache.store().put(&prov_key, &graph.encode());
            }
        }
        Ok((result, prov))
    }

    /// The driver loop: every cross-cutting concern — span, fault
    /// point, budget attribution, panic isolation, tier snapshot /
    /// rollback, degradation record — applied once per stage.
    fn run_pipeline(
        &self,
        analysis: &ModuleAnalysis,
        budget: &Budget,
    ) -> Result<(InferenceResult, Option<ProvenanceGraph>), MantaError> {
        manta_telemetry::span!("infer");
        let mut prov = self.provenance.then(ProvenanceGraph::new);
        if let (Some(graph), Some(p)) = (prov.as_mut(), analysis.pointsto.provenance.as_ref()) {
            graph.record_pointsto(p);
        }
        let mut ctx = StageCtx::over(analysis, self.config, budget);
        let mut completed = String::from("none");
        for stage in stages(self.config.sensitivity) {
            // Stages mutate `ctx.result` in place but only commit after
            // a full pass; the snapshot restores the last completed
            // tier if the stage is cut short or panics midway — and,
            // when provenance is on, is the pre-stage state the fact
            // diff runs against.
            let snapshot = (!self.strict || prov.is_some()).then(|| ctx.result.clone());
            match Self::run_stage(*stage, &mut ctx) {
                Ok(()) => {
                    if let Some(graph) = prov.as_mut() {
                        if stage.site() == "infer.reveal" {
                            graph.record_reveals(ctx.reveals(), analysis.module());
                        } else if let Some(tier) = stage.tier() {
                            let before =
                                snapshot.as_ref().expect("provenance snapshots every stage");
                            graph.record_stage_diff(tier, before, &ctx.result);
                        }
                    }
                    if let Some(tier) = stage.tier() {
                        if completed == "none" {
                            completed = tier.trim_start_matches('+').to_string();
                        } else {
                            completed.push_str(tier);
                        }
                    }
                }
                Err(e) => {
                    if self.strict {
                        return Err(e);
                    }
                    let kind = DegradationKind::from_error(&e);
                    let detail = e.to_string();
                    ctx.result = snapshot.expect("non-strict stages snapshot before running");
                    ctx.result.degradations.push(Degradation::record(
                        stage.site(),
                        completed,
                        kind,
                        detail,
                    ));
                    break;
                }
            }
        }
        ctx.result.config = self.config;
        Ok((ctx.result, prov))
    }

    /// Runs one stage under the uniform guards.
    fn run_stage(stage: &dyn Stage, ctx: &mut StageCtx<'_>) -> Result<(), MantaError> {
        let _span = stage.spanned().then(|| manta_telemetry::span(stage.name()));
        if !stage.guarded() {
            return stage.run(ctx);
        }
        let site = stage.site();
        let budget = ctx.budget;
        isolate(site, || {
            fault_point_budgeted(site, budget);
            stage.run(ctx)
        })?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::results_identical;
    use manta_ir::{ModuleBuilder, Width};

    fn module(tag: &str) -> Module {
        let mut mb = ModuleBuilder::new(tag);
        let malloc = mb.extern_fn("malloc", &[], None);
        let (_f, mut fb) = mb.function("grab", &[Width::W64], Some(Width::W64));
        let n = fb.param(0);
        let buf = fb.call_extern(malloc, &[n], Some(Width::W64));
        fb.ret(buf);
        mb.finish_function(fb);
        mb.finish()
    }

    #[test]
    fn builder_defaults_are_unlimited_and_graceful() {
        let engine = Engine::builder().build().expect("cacheless build");
        assert!(engine.budget().is_unlimited());
        assert!(!engine.strict());
        assert!(engine.cache().is_none());
    }

    #[test]
    fn analyze_module_builds_and_infers() {
        let engine = Engine::new(MantaConfig::full());
        let (analysis, result) = engine.analyze_module(module("m")).expect("analyze");
        assert_eq!(analysis.module().name(), "m");
        assert!(!result.is_degraded());
        assert!(!result.var_types.is_empty());
    }

    #[test]
    fn batch_results_match_individual_analyzes_in_order() {
        let engine = Engine::new(MantaConfig::full());
        let analyses: Vec<ModuleAnalysis> = ["a", "b", "c"]
            .iter()
            .map(|tag| ModuleAnalysis::build(module(tag)))
            .collect();
        let batch = engine.analyze_batch(&analyses);
        assert_eq!(batch.len(), analyses.len());
        for (a, b) in analyses.iter().zip(&batch) {
            let solo = engine.analyze(a).expect("non-strict never errors");
            let b = b.as_ref().expect("non-strict never errors");
            assert!(results_identical(&solo, b));
        }
    }

    #[test]
    fn every_sensitivity_has_a_base_tier_first() {
        for s in [
            Sensitivity::Fi,
            Sensitivity::Fs,
            Sensitivity::FiFs,
            Sensitivity::FiCsFs,
            Sensitivity::FiFsCs,
        ] {
            let cascade = stages(s);
            assert_eq!(cascade[0].site(), "infer.reveal");
            let first_tier = cascade[1].tier().expect("base tier after reveal");
            assert!(!first_tier.starts_with('+'), "base tier must not append");
            for stage in &cascade[2..] {
                assert!(stage.tier().expect("refinement tier").starts_with('+'));
            }
        }
    }

    #[test]
    fn analyze_explained_builds_a_graph_only_when_enabled() {
        let analysis = ModuleAnalysis::build(module("prov"));
        let off = Engine::new(MantaConfig::full());
        let (r_off, g_off) = off.analyze_explained(&analysis).expect("analyze");
        assert!(g_off.is_none(), "provenance off yields no graph");

        // Engine constructed literally so the process-global provenance
        // switch (which other tests observe) stays untouched.
        let on = Engine {
            provenance: true,
            ..Engine::new(MantaConfig::full())
        };
        let (r_on, g_on) = on.analyze_explained(&analysis).expect("analyze");
        let graph = g_on.expect("provenance on yields a graph");
        assert!(
            results_identical(&r_off, &r_on),
            "recording must not change results"
        );
        let tiers = graph.tier_counts();
        assert!(tiers.contains_key(crate::provenance::TIER_REVEAL));
        assert!(tiers.contains_key("FI"));
        // Every FI fact chains back to reveal leaves or is hint-free.
        let malloc_ret = *r_on.var_types.keys().min().expect("typed vars");
        assert!(graph.explain(malloc_ret).is_some());
    }

    #[test]
    fn strict_zero_fuel_propagates_a_budget_error() {
        let analysis = ModuleAnalysis::build(module("strict"));
        let engine = Engine::builder()
            .config(MantaConfig::full())
            .fuel(0)
            .strict(true)
            .build()
            .expect("cacheless build");
        let err = engine.analyze(&analysis).expect_err("zero fuel must trip");
        assert!(matches!(err, MantaError::Budget { .. }), "got {err:?}");
    }
}
