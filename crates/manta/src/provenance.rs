//! The type-provenance graph: *why* the engine believes each type fact.
//!
//! When provenance recording is on ([`EngineBuilder::provenance`]), the
//! staged driver records one [`Fact`] per type-interval change:
//!
//! * **Leaves** are the type-revealing instructions of §4.1 (Table 1):
//!   one fact per [`crate::reveal::Reveal`], carrying the revealing
//!   instruction site and the revealed type as an exact interval.
//! * After every completed **tier stage** (FI, CS, FS — the tier labels
//!   of [`crate::engine::Stage::tier`]), the driver diffs the evolving
//!   [`InferenceResult`] against the pre-stage snapshot it already takes
//!   for rollback; every variable whose interval changed (and every
//!   refined `v@s` site interval) becomes a fact whose predecessors are
//!   the variable's most recent earlier facts.
//!
//! The result is an append-only DAG — predecessor indices always point
//! at earlier facts — so [`ProvenanceGraph::explain`] can materialize
//! the backward derivation tree of any variable without cycle checks:
//! FS site facts chain to the CS fact they refined, CS facts to the FI
//! fact, FI facts to the reveal leaves that seeded the unification.
//!
//! Points-to propagation is recorded separately (its facts are `n ∋ o`
//! memberships, not intervals): the solver's first-derivation origins
//! ([`manta_analysis::PointsToProvenance`]) are flattened into
//! [`PtsDerivation`] records and attached to the same graph, so an
//! explanation can also say *how* a pointer came to point at an object.
//!
//! The graph serializes through the same `manta-store` byte codec as
//! cached inference results and is persisted next to them under a
//! `"prov"` key — a warm cache hit restores the explanation tree
//! without rerunning the cascade.
//!
//! [`EngineBuilder::provenance`]: crate::engine::EngineBuilder::provenance

use std::collections::{BTreeMap, HashMap};

use manta_analysis::{ObjectId, PointsToProvenance, PtsSource, VarRef};
use manta_ir::{ConstKind, InstId, Module, ValueKind};
use manta_store::{ByteReader, ByteWriter, DecodeError};

use crate::cache::{bad, dec_interval, dec_varref, enc_interval, enc_varref, CODEC_VERSION};
use crate::interval::TypeInterval;
use crate::reveal::RevealMap;
use crate::InferenceResult;

/// The tier label of leaf facts (type-revealing instructions). Stage
/// facts use the labels of [`crate::engine::Stage::tier`]: `"FI"`,
/// `"FS"`, `"+CS"`, `"+FS"`.
pub const TIER_REVEAL: &str = "reveal";

/// One node of the provenance DAG: a type fact about `var`, produced by
/// `tier`, optionally anchored at an instruction `site`, with the fact
/// indices it was derived from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fact {
    /// The variable the fact is about.
    pub var: VarRef,
    /// Producing tier: [`TIER_REVEAL`] for leaves, else the stage tier
    /// label (`"FI"`, `"FS"`, `"+CS"`, `"+FS"`).
    pub tier: String,
    /// The anchoring instruction: the revealing site for leaves, the
    /// refined use site `s` for flow-sensitive `v@s` facts, `None` for
    /// variable-level stage facts.
    pub site: Option<InstId>,
    /// The interval this fact established.
    pub interval: TypeInterval,
    /// Indices of the facts this one was derived from (always smaller
    /// than this fact's own index — the graph is append-only).
    pub preds: Vec<u32>,
}

/// What a points-to derivation is about: a variable's or an object's
/// points-to set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PtsTarget {
    /// Membership in a variable's points-to set.
    Var(VarRef),
    /// Membership in an object's (contents') points-to set.
    Obj(ObjectId),
}

/// One points-to membership `target ∋ points_at` and how the solver
/// first derived it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PtsDerivation {
    /// Whose points-to set grew.
    pub target: PtsTarget,
    /// The object it came to point at.
    pub points_at: ObjectId,
    /// The first derivation of the membership.
    pub via: PtsSource,
}

/// The full provenance graph of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct ProvenanceGraph {
    facts: Vec<Fact>,
    by_var: HashMap<VarRef, Vec<u32>>,
    pts: Vec<PtsDerivation>,
}

/// One node of a backward explanation tree (see
/// [`ProvenanceGraph::explain`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExplainNode {
    /// Index of the explained fact in [`ProvenanceGraph::facts`].
    pub fact: u32,
    /// The explanations of its predecessors.
    pub children: Vec<ExplainNode>,
}

impl ProvenanceGraph {
    /// An empty graph.
    pub fn new() -> ProvenanceGraph {
        ProvenanceGraph::default()
    }

    /// All facts, in recording order.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// All points-to derivations, in deterministic (target, object)
    /// order.
    pub fn pts_derivations(&self) -> &[PtsDerivation] {
        &self.pts
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty() && self.pts.is_empty()
    }

    /// The fact indices recorded for `v`, oldest first.
    pub fn facts_of(&self, v: VarRef) -> &[u32] {
        self.by_var.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of facts per tier label — the graph's shape summary.
    pub fn tier_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.facts {
            *counts.entry(f.tier.clone()).or_insert(0) += 1;
        }
        counts
    }

    fn push_fact(&mut self, fact: Fact) -> u32 {
        let idx = self.facts.len() as u32;
        self.by_var.entry(fact.var).or_default().push(idx);
        self.facts.push(fact);
        idx
    }

    /// Records one leaf fact per type-revealing instruction. Iterates
    /// functions in module order so the graph is deterministic.
    pub fn record_reveals(&mut self, reveals: &RevealMap, module: &Module) {
        for func in module.functions() {
            for r in reveals.in_func(func.id()) {
                self.push_fact(Fact {
                    var: VarRef::new(func.id(), r.value),
                    tier: TIER_REVEAL.to_string(),
                    site: Some(r.site),
                    interval: TypeInterval::exact(r.ty.clone()),
                    preds: Vec::new(),
                });
            }
        }
    }

    /// Records the facts a completed tier stage produced: every variable
    /// whose interval differs from the pre-stage snapshot, then every
    /// refined `v@s` site interval. Predecessors are the variable's
    /// newest earlier fact — or all its reveal leaves when the stage is
    /// the first to type it.
    pub fn record_stage_diff(
        &mut self,
        tier: &str,
        before: &InferenceResult,
        after: &InferenceResult,
    ) {
        let mut changed: Vec<VarRef> = after
            .var_types
            .iter()
            .filter(|(v, i)| before.var_types.get(v) != Some(i))
            .map(|(v, _)| *v)
            .collect();
        changed.sort();
        for v in changed {
            let preds = self.derive_preds(v);
            let interval = after.var_types[&v].clone();
            self.push_fact(Fact {
                var: v,
                tier: tier.to_string(),
                site: None,
                interval,
                preds,
            });
        }

        let mut changed_sites: Vec<(VarRef, InstId)> = after
            .site_types
            .iter()
            .filter(|(k, i)| before.site_types.get(k) != Some(i))
            .map(|(k, _)| *k)
            .collect();
        changed_sites.sort();
        for (v, s) in changed_sites {
            let mut preds = self.derive_preds(v);
            // A reveal at exactly `v@s` is direct evidence for the site
            // fact even when a newer stage fact supersedes it var-wide.
            if let Some(ri) = self.facts_of(v).iter().copied().find(|&i| {
                let f = &self.facts[i as usize];
                f.tier == TIER_REVEAL && f.site == Some(s)
            }) {
                if !preds.contains(&ri) {
                    preds.push(ri);
                }
            }
            let interval = after.site_types[&(v, s)].clone();
            self.push_fact(Fact {
                var: v,
                tier: tier.to_string(),
                site: Some(s),
                interval,
                preds,
            });
        }
    }

    /// The predecessor set for a new fact about `v`: its newest earlier
    /// fact, or all its reveal leaves when only leaves exist.
    fn derive_preds(&self, v: VarRef) -> Vec<u32> {
        let idxs = match self.by_var.get(&v) {
            Some(idxs) if !idxs.is_empty() => idxs,
            _ => return Vec::new(),
        };
        let last = *idxs.last().expect("non-empty");
        if self.facts[last as usize].tier == TIER_REVEAL {
            idxs.clone()
        } else {
            vec![last]
        }
    }

    /// Flattens the points-to solver's first-derivation origins into the
    /// graph, in sorted (deterministic) order.
    pub fn record_pointsto(&mut self, prov: &PointsToProvenance) {
        let mut vars: Vec<(&(VarRef, ObjectId), &PtsSource)> = prov.var_origins.iter().collect();
        vars.sort_by_key(|(k, _)| **k);
        for (&(v, o), &via) in vars {
            self.pts.push(PtsDerivation {
                target: PtsTarget::Var(v),
                points_at: o,
                via,
            });
        }
        let mut objs: Vec<(&(ObjectId, ObjectId), &PtsSource)> = prov.obj_origins.iter().collect();
        objs.sort_by_key(|(k, _)| **k);
        for (&(c, o), &via) in objs {
            self.pts.push(PtsDerivation {
                target: PtsTarget::Obj(c),
                points_at: o,
                via,
            });
        }
    }

    /// The backward explanation tree of `v`'s final type: the newest
    /// fact about `v`, expanded through predecessors down to the reveal
    /// leaves. `None` when the graph holds no fact about `v`.
    pub fn explain(&self, v: VarRef) -> Option<ExplainNode> {
        let &last = self.by_var.get(&v)?.last()?;
        Some(self.expand(last))
    }

    /// The backward explanation tree of `v@s` — the newest fact about
    /// `v` anchored at site `s`, falling back to [`ProvenanceGraph::explain`].
    pub fn explain_at(&self, v: VarRef, s: InstId) -> Option<ExplainNode> {
        let idxs = self.by_var.get(&v)?;
        let at_site = idxs.iter().rev().copied().find(|&i| {
            self.facts[i as usize].site == Some(s) && self.facts[i as usize].tier != TIER_REVEAL
        });
        match at_site {
            Some(i) => Some(self.expand(i)),
            None => self.explain(v),
        }
    }

    fn expand(&self, idx: u32) -> ExplainNode {
        // Predecessor indices are strictly decreasing, so recursion
        // terminates without a visited set.
        let children = self.facts[idx as usize]
            .preds
            .iter()
            .map(|&p| self.expand(p))
            .collect();
        ExplainNode {
            fact: idx,
            children,
        }
    }

    /// Renders the explanation tree of `v` (optionally pinned to site
    /// `s`) as indented text, using the module's printer names
    /// (`p0`/`v3`) for variables.
    pub fn render_explain(&self, module: &Module, v: VarRef, s: Option<InstId>) -> Option<String> {
        let root = match s {
            Some(site) => self.explain_at(v, site)?,
            None => self.explain(v)?,
        };
        let mut out = String::new();
        self.render_node(module, &root, "", true, true, &mut out);
        let mut pts: Vec<&PtsDerivation> = self
            .pts
            .iter()
            .filter(|d| d.target == PtsTarget::Var(v))
            .collect();
        pts.sort_by_key(|d| d.points_at);
        for d in pts {
            out.push_str(&format!(
                "points-to obj{}: {}\n",
                d.points_at.0,
                describe_source(module, d.via)
            ));
        }
        Some(out)
    }

    fn render_node(
        &self,
        module: &Module,
        node: &ExplainNode,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        out: &mut String,
    ) {
        let f = &self.facts[node.fact as usize];
        let connector = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}└─ ")
        } else {
            format!("{prefix}├─ ")
        };
        let site = f.site.map(|s| format!(" @{s}")).unwrap_or_default();
        out.push_str(&format!(
            "{connector}{} {}{site}: [{}, {}]\n",
            f.tier,
            var_label(module, f.var),
            f.interval.lower,
            f.interval.upper,
        ));
        let child_prefix = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        let n = node.children.len();
        for (i, c) in node.children.iter().enumerate() {
            self.render_node(module, c, &child_prefix, i + 1 == n, false, out);
        }
    }

    /// Serializes the graph with the `manta-store` byte codec (the same
    /// primitives as [`crate::cache::encode_result`]).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(CODEC_VERSION);
        w.usize(self.facts.len());
        for f in &self.facts {
            enc_varref(&mut w, f.var);
            w.str(&f.tier);
            match f.site {
                Some(s) => {
                    w.u8(1).u32(s.0);
                }
                None => {
                    w.u8(0);
                }
            }
            enc_interval(&mut w, &f.interval);
            w.usize(f.preds.len());
            for &p in &f.preds {
                w.u32(p);
            }
        }
        w.usize(self.pts.len());
        for d in &self.pts {
            match d.target {
                PtsTarget::Var(v) => {
                    w.u8(0);
                    enc_varref(&mut w, v);
                }
                PtsTarget::Obj(o) => {
                    w.u8(1).u32(o.0);
                }
            }
            w.u32(d.points_at.0);
            match d.via {
                PtsSource::Seed => {
                    w.u8(0);
                }
                PtsSource::CopiedFromVar(v) => {
                    w.u8(1);
                    enc_varref(&mut w, v);
                }
                PtsSource::CopiedFromObj(o) => {
                    w.u8(2).u32(o.0);
                }
                PtsSource::FieldOf(o) => {
                    w.u8(3).u32(o.0);
                }
            }
        }
        w.finish()
    }

    /// Decodes a payload written by [`ProvenanceGraph::encode`].
    ///
    /// # Errors
    ///
    /// Any malformed byte — including a predecessor index that does not
    /// point backward — yields a [`DecodeError`]; payloads come from
    /// disk and must never panic.
    pub fn decode(payload: &[u8]) -> Result<ProvenanceGraph, DecodeError> {
        let mut r = ByteReader::new(payload);
        if r.u32("prov version")? != CODEC_VERSION {
            return Err(bad("prov version"));
        }
        let n = r.len("fact count")?;
        let mut graph = ProvenanceGraph::new();
        for idx in 0..n {
            let var = dec_varref(&mut r)?;
            let tier = r.str("fact tier")?.to_string();
            let site = match r.u8("fact site tag")? {
                0 => None,
                1 => Some(InstId(r.u32("fact site")?)),
                _ => return Err(bad("fact site tag")),
            };
            let interval = dec_interval(&mut r)?;
            let np = r.len("pred count")?;
            let mut preds = Vec::with_capacity(np.min(1024));
            for _ in 0..np {
                let p = r.u32("pred index")?;
                if p as usize >= idx {
                    return Err(bad("pred index"));
                }
                preds.push(p);
            }
            graph.push_fact(Fact {
                var,
                tier,
                site,
                interval,
                preds,
            });
        }
        let n = r.len("pts count")?;
        for _ in 0..n {
            let target = match r.u8("pts target tag")? {
                0 => PtsTarget::Var(dec_varref(&mut r)?),
                1 => PtsTarget::Obj(ObjectId(r.u32("pts target obj")?)),
                _ => return Err(bad("pts target tag")),
            };
            let points_at = ObjectId(r.u32("pts object")?);
            let via = match r.u8("pts source tag")? {
                0 => PtsSource::Seed,
                1 => PtsSource::CopiedFromVar(dec_varref(&mut r)?),
                2 => PtsSource::CopiedFromObj(ObjectId(r.u32("pts source obj")?)),
                3 => PtsSource::FieldOf(ObjectId(r.u32("pts parent obj")?)),
                _ => return Err(bad("pts source tag")),
            };
            graph.pts.push(PtsDerivation {
                target,
                points_at,
                via,
            });
        }
        r.expect_end("provenance graph")?;
        Ok(graph)
    }
}

fn describe_source(module: &Module, via: PtsSource) -> String {
    match via {
        PtsSource::Seed => "seeded at its allocation site".to_string(),
        PtsSource::CopiedFromVar(v) => format!("copied from {}", var_label(module, v)),
        PtsSource::CopiedFromObj(o) => format!("copied from the contents of obj{}", o.0),
        PtsSource::FieldOf(o) => format!("materialized as a field of obj{}", o.0),
    }
}

/// The printer-compatible label of `v`: `func:p0` for parameters,
/// `func:v3` for instruction results (numbered in block-traversal
/// order, exactly as `manta_ir::printer` numbers them), constants by
/// their literal.
pub fn var_label(module: &Module, v: VarRef) -> String {
    let func = module.function(v.func);
    let name = func.name();
    match func.value(v.value).kind {
        ValueKind::Param { index } => format!("{name}:p{index}"),
        ValueKind::Inst { .. } => match inst_number(func, v.value) {
            Some(n) => format!("{name}:v{n}"),
            None => format!("{name}:{}", v.value),
        },
        ValueKind::Const(ConstKind::Int(k)) => {
            format!("{name}:{k}:i{}", func.value(v.value).width.bits())
        }
        ValueKind::Const(ConstKind::Float(x)) => {
            format!("{name}:{x:?}:f{}", func.value(v.value).width.bits())
        }
        ValueKind::Const(ConstKind::Null) => format!("{name}:null"),
        ValueKind::Const(ConstKind::Undef) => format!("{name}:undef"),
        ValueKind::GlobalAddr(g) => format!("{name}:g.{}", module.global(g).name),
        ValueKind::FuncAddr(f) => format!("{name}:fn.{}", module.function(f).name()),
    }
}

fn inst_number(func: &manta_ir::Function, v: manta_ir::ValueId) -> Option<usize> {
    let mut n = 0;
    for block in func.blocks() {
        for &i in &block.insts {
            if let Some(d) = func.inst(i).kind.def() {
                if d == v {
                    return Some(n);
                }
                n += 1;
            }
        }
    }
    None
}

/// Resolves a printer-style variable token (`p0`, `v3`) inside the
/// named function — the inverse of [`var_label`], used by the CLI's
/// `explain` command.
pub fn resolve_var(module: &Module, func_name: &str, token: &str) -> Option<VarRef> {
    let func = module.function_by_name(func_name)?;
    if let Some(rest) = token.strip_prefix('p') {
        let index: usize = rest.parse().ok()?;
        let &value = func.params().get(index)?;
        return Some(VarRef::new(func.id(), value));
    }
    if let Some(rest) = token.strip_prefix('v') {
        let want: usize = rest.parse().ok()?;
        let mut n = 0;
        for block in func.blocks() {
            for &i in &block.insts {
                if let Some(d) = func.inst(i).kind.def() {
                    if n == want {
                        return Some(VarRef::new(func.id(), d));
                    }
                    n += 1;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::{ModuleBuilder, Type, Width};

    fn leaf(var: VarRef, site: u32, t: Type) -> Fact {
        Fact {
            var,
            tier: TIER_REVEAL.to_string(),
            site: Some(InstId(site)),
            interval: TypeInterval::exact(t),
            preds: Vec::new(),
        }
    }

    #[test]
    fn explain_walks_back_to_the_leaves() {
        let v = VarRef::new(manta_ir::FuncId(0), manta_ir::ValueId(0));
        let mut g = ProvenanceGraph::new();
        let a = g.push_fact(leaf(v, 0, Type::Int(Width::W64)));
        let b = g.push_fact(leaf(v, 1, Type::Num(Width::W64)));
        let fi = g.push_fact(Fact {
            var: v,
            tier: "FI".to_string(),
            site: None,
            interval: TypeInterval::exact(Type::Int(Width::W64)),
            preds: vec![a, b],
        });
        let cs = g.push_fact(Fact {
            var: v,
            tier: "+CS".to_string(),
            site: None,
            interval: TypeInterval::exact(Type::Int(Width::W64)),
            preds: vec![fi],
        });
        let tree = g.explain(v).expect("facts exist");
        assert_eq!(tree.fact, cs);
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].fact, fi);
        assert_eq!(tree.children[0].children.len(), 2);
    }

    #[test]
    fn codec_roundtrips_and_rejects_forward_preds() {
        let v = VarRef::new(manta_ir::FuncId(2), manta_ir::ValueId(7));
        let mut g = ProvenanceGraph::new();
        let a = g.push_fact(leaf(v, 3, Type::byte_ptr()));
        g.push_fact(Fact {
            var: v,
            tier: "FI".to_string(),
            site: None,
            interval: TypeInterval::exact(Type::byte_ptr()),
            preds: vec![a],
        });
        g.pts.push(PtsDerivation {
            target: PtsTarget::Var(v),
            points_at: ObjectId(4),
            via: PtsSource::FieldOf(ObjectId(1)),
        });
        let bytes = g.encode();
        let back = ProvenanceGraph::decode(&bytes).expect("roundtrip");
        assert_eq!(back.facts(), g.facts());
        assert_eq!(back.pts_derivations(), g.pts_derivations());
        assert_eq!(back.facts_of(v), g.facts_of(v));

        // A pred index pointing at itself (or forward) must be rejected.
        let mut w = ByteWriter::new();
        w.u32(CODEC_VERSION);
        w.usize(1);
        enc_varref(&mut w, v);
        w.str(TIER_REVEAL);
        w.u8(0);
        enc_interval(&mut w, &TypeInterval::exact(Type::Float));
        w.usize(1);
        w.u32(0); // pred 0 of fact 0: self-reference
        w.usize(0);
        assert!(ProvenanceGraph::decode(&w.finish()).is_err());
    }

    #[test]
    fn resolve_and_label_are_inverse_on_printer_names() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let a = fb.load(p, Width::W64);
        let b = fb.load(a, Width::W64);
        fb.ret(Some(b));
        mb.finish_function(fb);
        let module = mb.finish();

        let pv = resolve_var(&module, "f", "p0").expect("p0");
        assert_eq!(pv, VarRef::new(fid, p));
        assert_eq!(var_label(&module, pv), "f:p0");
        let v1 = resolve_var(&module, "f", "v1").expect("v1");
        assert_eq!(v1, VarRef::new(fid, b));
        assert_eq!(var_label(&module, v1), "f:v1");
        assert!(resolve_var(&module, "f", "v9").is_none());
        assert!(resolve_var(&module, "g", "p0").is_none());
    }
}
