//! Type-revealing instruction extraction (Table 1, rule ④).
//!
//! A *reveal* is a `(value, site, type)` triple: at instruction `site`,
//! `value` is used in a way that exposes (part of) its type. The paper's
//! examples — "type-known external functions such as `malloc()`, arithmetic
//! calculations, or pointer dereference" — map to:
//!
//! * arguments to / results of modeled external functions, typed by the
//!   extern's known signature;
//! * address operands of `load`/`store`/`gep` and `alloca`/`gep` results:
//!   `ptr(⊥)` (a pointer to something);
//! * operands/results of numeric-only arithmetic (`mul`, `div`, `xor`, …):
//!   `num<w>`. `add`/`sub`/`and` reveal nothing — they participate in
//!   pointer arithmetic and alignment idioms (§6.4);
//! * non-zero integer and float constants: `int<w>` / `float` / `double`.
//!   Zero constants reveal nothing, because deciding whether a zero is an
//!   integer or a null pointer is precisely the inference's job;
//! * the callee operand of an indirect call: `ptr(⊥)`.
//!
//! `cmp` is an *indirect* hint: it only says its operands share a type, so
//! it contributes a unification edge (handled in
//! [`crate::flow_insensitive`]) rather than a reveal. Combined with
//! constant reveals this reproduces the paper's documented recall loss:
//! `if (p == (void*)-1)` unifies a pointer with a revealed `int64`.

use std::collections::HashMap;

use manta_analysis::{ModuleAnalysis, VarRef};
use manta_ir::{
    Callee, ConstKind, ExternEffect, FuncId, InstId, InstKind, Type, ValueId, ValueKind, Width,
};

/// One type-revealing event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reveal {
    /// The revealed value.
    pub value: ValueId,
    /// The instruction at which the type is revealed.
    pub site: InstId,
    /// The revealed type.
    pub ty: Type,
}

/// All reveals of a module, indexed by function and by variable.
#[derive(Clone, Debug, Default)]
pub struct RevealMap {
    per_func: HashMap<FuncId, Vec<Reveal>>,
    by_var: HashMap<VarRef, Vec<(InstId, Type)>>,
}

impl RevealMap {
    /// Extracts every reveal in the analyzed module.
    pub fn collect(analysis: &ModuleAnalysis) -> RevealMap {
        let module = analysis.module();
        let mut map = RevealMap::default();
        for func in module.functions() {
            let fid = func.id();
            let mut out: Vec<Reveal> = Vec::new();
            let mut push = |value: ValueId, site: InstId, ty: Type| {
                out.push(Reveal { value, site, ty });
            };
            for inst in func.insts() {
                let s = inst.id;
                // Constant operands reveal at each use site.
                for u in inst.kind.uses() {
                    if let ValueKind::Const(c) = func.value(u).kind {
                        match c {
                            ConstKind::Int(v) if v != 0 => {
                                push(u, s, Type::Int(func.value(u).width));
                            }
                            ConstKind::Float(_) => {
                                let t = if func.value(u).width == Width::W32 {
                                    Type::Float
                                } else {
                                    Type::Double
                                };
                                push(u, s, t);
                            }
                            _ => {}
                        }
                    }
                }
                match &inst.kind {
                    InstKind::Load { addr, .. } => push(*addr, s, Type::ptr(Type::Bottom)),
                    InstKind::Store { addr, .. } => push(*addr, s, Type::ptr(Type::Bottom)),
                    InstKind::Alloca { dst, .. } => push(*dst, s, Type::ptr(Type::Bottom)),
                    InstKind::Gep { dst, base, .. } => {
                        push(*base, s, Type::ptr(Type::Bottom));
                        push(*dst, s, Type::ptr(Type::Bottom));
                    }
                    InstKind::BinOp { op, dst, lhs, rhs } if op.is_numeric_only() => {
                        let w = func.value(*dst).width;
                        push(*dst, s, Type::Num(w));
                        push(*lhs, s, Type::Num(func.value(*lhs).width));
                        push(*rhs, s, Type::Num(func.value(*rhs).width));
                    }
                    InstKind::Call { dst, callee, args } => match callee {
                        Callee::Extern(e) => {
                            let decl = module.extern_decl(*e);
                            if let Some(sig) = &decl.sig {
                                for (i, &a) in args.iter().enumerate() {
                                    if let Some(t) = sig.params.get(i) {
                                        push(a, s, t.clone());
                                    }
                                }
                                if let (Some(d), false) = (dst, *sig.ret == Type::Bottom) {
                                    push(*d, s, (*sig.ret).clone());
                                }
                            } else if decl.effect == ExternEffect::Unknown {
                                // Unmodeled external: no hints (§6.4 recall
                                // loss source).
                            }
                        }
                        Callee::Indirect(fp) => push(*fp, s, Type::ptr(Type::Bottom)),
                        Callee::Direct(_) => {}
                    },
                    _ => {}
                }
            }
            for r in &out {
                map.by_var
                    .entry(VarRef::new(fid, r.value))
                    .or_default()
                    .push((r.site, r.ty.clone()));
            }
            map.per_func.insert(fid, out);
        }
        map
    }

    /// Reveals inside function `f`, in instruction order.
    pub fn in_func(&self, f: FuncId) -> &[Reveal] {
        self.per_func.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The reveals of a specific variable (`type_annotations(v)` in
    /// Algorithm 1).
    pub fn of_var(&self, v: VarRef) -> &[(InstId, Type)] {
        self.by_var.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The reveal of `v` at exactly site `s` (`type_annotation(v@s)` in
    /// Algorithm 2), if any.
    pub fn at_site(&self, v: VarRef, s: InstId) -> Option<&Type> {
        self.by_var
            .get(&v)?
            .iter()
            .find(|(site, _)| *site == s)
            .map(|(_, t)| t)
    }

    /// Total number of reveals.
    pub fn len(&self) -> usize {
        self.per_func.values().map(Vec::len).sum()
    }

    /// Whether no reveal exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_analysis::ModuleAnalysis;
    use manta_ir::{BinOp, ModuleBuilder};

    fn collect(m: manta_ir::Module) -> (ModuleAnalysis, RevealMap) {
        let a = ModuleAnalysis::build(m);
        let r = RevealMap::collect(&a);
        (a, r)
    }

    #[test]
    fn malloc_reveals_arg_and_ret() {
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let n = fb.param(0);
        let buf = fb.call_extern(malloc, &[n], Some(Width::W64)).unwrap();
        fb.ret(Some(buf));
        mb.finish_function(fb);
        let (_, r) = collect(mb.finish());
        let n_hints = r.of_var(VarRef::new(fid, n));
        assert!(n_hints.iter().any(|(_, t)| *t == Type::Int(Width::W64)));
        let b_hints = r.of_var(VarRef::new(fid, buf));
        assert!(b_hints.iter().any(|(_, t)| t.is_pointer()));
    }

    #[test]
    fn load_reveals_pointer_address() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let v = fb.load(p, Width::W64);
        fb.ret(Some(v));
        mb.finish_function(fb);
        let (_, r) = collect(mb.finish());
        let hints = r.of_var(VarRef::new(fid, p));
        assert_eq!(hints.len(), 1);
        assert!(hints[0].1.is_pointer());
        // The loaded value itself reveals nothing.
        assert!(r.of_var(VarRef::new(fid, v)).is_empty());
    }

    #[test]
    fn add_reveals_nothing_but_mul_reveals_numeric() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64, Width::W64], Some(Width::W64));
        let a = fb.param(0);
        let b = fb.param(1);
        let s = fb.binop(BinOp::Add, a, b, Width::W64);
        let m = fb.binop(BinOp::Mul, s, b, Width::W64);
        fb.ret(Some(m));
        mb.finish_function(fb);
        let (_, r) = collect(mb.finish());
        assert!(
            r.of_var(VarRef::new(fid, a)).is_empty(),
            "add must not reveal"
        );
        // `s` is revealed numeric by its use in mul, not by add itself.
        assert!(r
            .of_var(VarRef::new(fid, s))
            .iter()
            .any(|(_, t)| matches!(t, Type::Num(_))));
        assert!(r
            .of_var(VarRef::new(fid, b))
            .iter()
            .any(|(_, t)| matches!(t, Type::Num(_))));
    }

    #[test]
    fn zero_constants_reveal_nothing() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W1));
        let p = fb.param(0);
        let z = fb.const_int(0, Width::W64);
        let neg = fb.const_int(-1, Width::W64);
        let c1 = fb.cmp(manta_ir::CmpPred::Eq, p, z);
        let c2 = fb.cmp(manta_ir::CmpPred::Eq, p, neg);
        let _ = c1;
        fb.ret(Some(c2));
        mb.finish_function(fb);
        let (_, r) = collect(mb.finish());
        assert!(
            r.of_var(VarRef::new(fid, z)).is_empty(),
            "zero is ambiguous"
        );
        assert!(
            r.of_var(VarRef::new(fid, neg))
                .iter()
                .any(|(_, t)| *t == Type::Int(Width::W64)),
            "-1 reveals int64 (the error-code idiom)"
        );
    }

    #[test]
    fn at_site_distinguishes_sites() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let a = fb.load(p, Width::W64); // site i0: reveals p ptr
        let b = fb.load(p, Width::W64); // site i1: reveals p ptr
        let _ = (a, b);
        fb.ret(Some(p));
        mb.finish_function(fb);
        let (an, r) = collect(mb.finish());
        let f = an.module().function(fid);
        let sites: Vec<InstId> = f.insts().map(|i| i.id).collect();
        let v = VarRef::new(fid, p);
        assert!(r.at_site(v, sites[0]).is_some());
        assert!(r.at_site(v, sites[1]).is_some());
        assert_eq!(r.of_var(v).len(), 2);
    }
}
