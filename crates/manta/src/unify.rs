//! Union-find with per-class type intervals, the engine of the
//! flow-insensitive unification stage.

use crate::interval::TypeInterval;
use manta_ir::Type;

/// Disjoint sets over dense indices `0..n`, each class carrying a
/// [`TypeInterval`] merged on union.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    interval: Vec<TypeInterval>,
}

impl UnionFind {
    /// `n` singleton classes, all unknown.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            interval: vec![TypeInterval::unknown(); n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The class representative of `x`, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Unions the classes of `a` and `b`, merging their intervals
    /// (`UnifyVarType`). Returns `true` if the classes were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        static OPS: manta_telemetry::Counter = manta_telemetry::Counter::new("unify.ops");
        OPS.incr();
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (keep, drop) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[keep] == self.rank[drop] {
            self.rank[keep] += 1;
        }
        self.parent[drop] = keep as u32;
        let dropped = std::mem::take(&mut self.interval[drop]);
        self.interval[keep].merge(&dropped);
        true
    }

    /// Absorbs a type hint into `x`'s class (rule ④).
    pub fn absorb(&mut self, x: usize, t: &Type) {
        let r = self.find(x);
        self.interval[r].absorb(t);
    }

    /// The interval of `x`'s class.
    pub fn interval(&mut self, x: usize) -> &TypeInterval {
        let r = self.find(x);
        &self.interval[r]
    }

    /// Whether `a` and `b` are in the same class.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Resolution;
    use manta_ir::Width;

    #[test]
    fn union_merges_intervals() {
        let mut uf = UnionFind::new(4);
        uf.absorb(0, &Type::Int(Width::W64));
        uf.absorb(1, &Type::byte_ptr());
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.interval(0).resolution(), Resolution::Over);
        assert_eq!(uf.interval(1).resolution(), Resolution::Over);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
    }

    #[test]
    fn absorb_after_union_is_shared() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 2);
        uf.absorb(2, &Type::Float);
        assert_eq!(
            uf.interval(0).resolution(),
            Resolution::Precise(Type::Float)
        );
        assert_eq!(uf.interval(1).resolution(), Resolution::Unknown);
    }

    #[test]
    fn transitive_unions() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.same(0, 2));
        assert!(!uf.same(2, 3));
        uf.union(2, 3);
        assert!(uf.same(0, 4));
    }

    #[test]
    fn unknown_class_merge_keeps_information() {
        let mut uf = UnionFind::new(2);
        uf.absorb(0, &Type::Int(Width::W32));
        uf.union(0, 1); // 1 is unknown: must not widen 0
        assert_eq!(
            uf.interval(0).resolution(),
            Resolution::Precise(Type::Int(Width::W32))
        );
    }
}
