//! Stage 3: flow-sensitive type refinement (paper §4.2.2, Algorithm 2) and
//! the standalone Manta-FS ablation.
//!
//! For each still-over-approximated variable `v`, the def site and every
//! use site `s` is treated as a distinct variable `v@s`. A backward search
//! on the CFG collects type annotations on *aliases* of `v` that reach `s`
//! in control-flow order; the search stops at the first annotation along a
//! path (a strong update). The collected set becomes `F↑(v@s)`/`F↓(v@s)`.
//!
//! This is the paper's "more aggressive" stage: when **no** hint is
//! CFG-reachable for any site of `v`, the refinement loses the type
//! entirely (`v` becomes unknown) — the phenomenon that makes FI+FS weaker
//! than FI+CS+FS (§6.1, Ablation Analysis; §6.4, Type Refinement Order).

use std::collections::{BTreeSet, HashMap, HashSet};

use manta_analysis::cfl::{CtxOp, CtxStack};
use manta_analysis::{DepKind, ModuleAnalysis, NodeId, VarRef};
use manta_ir::cfg::Cfg;
use manta_ir::{BlockId, FuncId, InstId, Type, ValueKind};
use manta_resilience::{Budget, BudgetExceeded};

use crate::classify;
use crate::ctx_refine::{find_roots_traced, Footprint};
use crate::interval::TypeInterval;
use crate::reveal::RevealMap;
use crate::{InferenceResult, MantaConfig, Stage};

/// Runs Algorithm 2 over the current `V_O` set and appends a
/// [`Stage::FlowRefine`] classification.
pub fn refine(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
    result: &mut InferenceResult,
) {
    match refine_budgeted(analysis, reveals, config, result, &Budget::unlimited()) {
        Ok(()) => {}
        Err(_) => unreachable!("unlimited budget tripped"),
    }
}

/// [`refine`] under a cooperative budget: one fuel unit per candidate
/// variable and one per inspected def/use site.
///
/// # Errors
///
/// Returns the tripped limit *before* committing any interval update, so
/// `result` still reflects the previous tier exactly.
pub fn refine_budgeted(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
    result: &mut InferenceResult,
    budget: &Budget,
) -> Result<(), BudgetExceeded> {
    let cfgs = Cfgs::new(analysis);
    let over = classify::over_approximated(analysis, result);
    manta_telemetry::counter("fs.candidates", over.len() as u64);

    // As in the context-sensitive stage, candidates only read the
    // pre-refinement `result`; per-function partitions run on the pool and
    // merge back in candidate (= function) order. The roots memo and the
    // walker memos are pure caches, so making them partition-local cannot
    // change any answer.
    let chunks = crate::ctx_refine::partition_by_func(over);
    let shared: &InferenceResult = result;
    let per_chunk: Vec<Result<FsChunkOut, BudgetExceeded>> =
        manta_parallel::par_map(chunks, |chunk| {
            refine_chunk(
                analysis,
                reveals,
                config,
                shared,
                &cfgs,
                budget,
                chunk,
                &mut Footprint::off(),
            )
        });
    let mut var_updates: Vec<(VarRef, TypeInterval)> = Vec::new();
    let mut site_updates: Vec<((VarRef, InstId), TypeInterval)> = Vec::new();
    for chunk in per_chunk {
        let (vars, sites) = chunk?;
        var_updates.extend(vars);
        site_updates.extend(sites);
    }
    manta_telemetry::counter("fs.site_types", site_updates.len() as u64);
    for (v, i) in var_updates {
        result.var_types.insert(v, i);
    }
    for (k, i) in site_updates {
        result.site_types.insert(k, i);
    }
    let counts = classify::classify(analysis, result);
    result.stage_counts.push((Stage::FlowRefine, counts));
    Ok(())
}

/// Variable- and site-level interval updates produced by one partition.
pub(crate) type FsChunkOut = (
    Vec<(VarRef, TypeInterval)>,
    Vec<((VarRef, InstId), TypeInterval)>,
);

/// Runs Algorithm 2 over one per-function candidate partition. Fuel is
/// charged exactly as the historical serial loop: one unit per candidate
/// plus one per inspected def/use site. With an enabled `fp`, records
/// every function whose data the walks read.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_chunk(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
    result: &InferenceResult,
    cfgs: &Cfgs,
    budget: &Budget,
    chunk: Vec<VarRef>,
    fp: &mut Footprint,
) -> Result<FsChunkOut, BudgetExceeded> {
    let mut roots_cache: HashMap<VarRef, BTreeSet<NodeId>> = HashMap::new();
    let mut var_updates: Vec<(VarRef, TypeInterval)> = Vec::new();
    let mut site_updates: Vec<((VarRef, InstId), TypeInterval)> = Vec::new();
    for v in chunk {
        budget.tick()?;
        fp.touch(v.func);
        let roots = find_roots_traced(analysis, result, config, v, &mut roots_cache, fp);
        let func = analysis.module().function(v.func);
        // Def site plus each use site (Algorithm 2 line 7).
        let mut site_intervals: Vec<(Option<InstId>, TypeInterval)> = Vec::new();
        let def_site = func.def_inst(v.value);
        let mut sites: Vec<Option<InstId>> = vec![def_site.map(Some).unwrap_or(None)];
        for u in func.users(v.value) {
            sites.push(Some(u));
        }
        sites.dedup();
        for site in sites {
            budget.tick()?;
            let types = reachable_types(
                analysis,
                reveals,
                result,
                config,
                cfgs,
                v.func,
                site,
                &roots,
                &mut roots_cache,
                true,
                fp,
            );
            if types.is_empty() {
                continue;
            }
            let mut interval = TypeInterval::unknown();
            for t in &types {
                interval.absorb(t);
            }
            if let Some(s) = site {
                site_updates.push(((v, s), interval.clone()));
            }
            site_intervals.push((site, interval));
        }
        // Variable-level: prefer the def-site result; otherwise merge all
        // site results; with no reachable hint anywhere the type is lost.
        let def_result = site_intervals
            .iter()
            .find(|(s, _)| *s == def_site)
            .map(|(_, i)| i.clone());
        let var_interval = def_result.unwrap_or_else(|| {
            let mut merged = TypeInterval::unknown();
            for (_, i) in &site_intervals {
                merged.merge(i);
            }
            merged
        });
        // When no hint is CFG-reachable at any site the type is lost: the
        // variable drops back to the unknown sentinel (the aggressive
        // behavior §6.4 attributes to flow-sensitive refinement).
        var_updates.push((v, var_interval));
    }
    Ok((var_updates, site_updates))
}

/// The standalone Manta-FS ablation: flow-sensitive hint collection with
/// strong updates for *every* variable, no global unification, and —
/// matching classic flow-sensitive binary type recovery — no crossing of
/// function boundaries. Aliasing is the intraprocedural copy/memory
/// closure.
pub fn standalone_fs(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
) -> InferenceResult {
    match standalone_fs_budgeted(analysis, reveals, config, &Budget::unlimited()) {
        Ok(r) => r,
        Err(_) => unreachable!("unlimited budget tripped"),
    }
}

/// [`standalone_fs`] under a cooperative budget: one fuel unit per DDG
/// node during alias-class construction and one per inspected variable
/// site.
///
/// # Errors
///
/// Returns the tripped limit; no partial result is produced.
pub fn standalone_fs_budgeted(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
    budget: &Budget,
) -> Result<InferenceResult, BudgetExceeded> {
    let cfgs = Cfgs::new(analysis);
    let mut result = InferenceResult::empty(*config);
    // Intraprocedural alias classes: values connected by copy/phi or by
    // same-function memory dependencies.
    let mut alias_class: HashMap<VarRef, usize> = HashMap::new();
    {
        let ddg = &analysis.ddg;
        let n = ddg.node_count();
        let mut uf = crate::unify::UnionFind::new(n);
        for idx in 0..n {
            budget.tick()?;
            let node = NodeId(idx as u32);
            let from = ddg.var(node);
            for &(to, kind) in ddg.children(node) {
                let tv = ddg.var(to);
                if tv.func != from.func {
                    continue;
                }
                if matches!(kind, DepKind::Direct | DepKind::Memory(_)) {
                    uf.union(idx, to.index());
                }
            }
        }
        for idx in 0..n {
            let v = analysis.ddg.var(NodeId(idx as u32));
            alias_class.insert(v, uf.find(idx));
        }
    }

    // Each function's variables consult only the (frozen) alias classes and
    // the reveal map, so the per-function site walks fan out across the
    // pool; updates merge back in function order.
    let func_ids: Vec<FuncId> = analysis.module().functions().map(|f| f.id()).collect();
    let alias_ref = &alias_class;
    let cfgs_ref = &cfgs;
    let per_func: Vec<Result<FsChunkOut, BudgetExceeded>> =
        manta_parallel::par_map(func_ids, |fid| {
            let func = analysis.module().function(fid);
            let mut var_updates: Vec<(VarRef, TypeInterval)> = Vec::new();
            let mut site_updates: Vec<((VarRef, InstId), TypeInterval)> = Vec::new();
            for (value, data) in func.values() {
                if matches!(data.kind, ValueKind::Const(_)) {
                    continue;
                }
                let v = VarRef::new(fid, value);
                let class = alias_ref[&v];
                let def_site = func.def_inst(value);
                let mut sites: Vec<Option<InstId>> = vec![def_site.map(Some).unwrap_or(None)];
                for u in func.users(value) {
                    sites.push(Some(u));
                }
                sites.dedup();
                let mut var_interval: Option<TypeInterval> = None;
                for site in sites {
                    budget.tick()?;
                    let types = reachable_types_with_alias(
                        analysis,
                        reveals,
                        config,
                        cfgs_ref,
                        v.func,
                        site,
                        &|u| alias_ref.get(&u) == Some(&class),
                        false,
                    );
                    if types.is_empty() {
                        continue;
                    }
                    let mut interval = TypeInterval::unknown();
                    for t in &types {
                        interval.absorb(t);
                    }
                    if let Some(s) = site {
                        site_updates.push(((v, s), interval.clone()));
                    }
                    match (
                        &mut var_interval,
                        site == def_site.map(Some).unwrap_or(None),
                    ) {
                        (_, true) => var_interval = Some(interval),
                        (Some(existing), false) => existing.merge(&interval),
                        (None, false) => var_interval = Some(interval),
                    }
                }
                if let Some(i) = var_interval {
                    var_updates.push((v, i));
                }
            }
            Ok((var_updates, site_updates))
        });
    for chunk in per_func {
        let (vars, sites) = chunk?;
        for (v, i) in vars {
            result.var_types.insert(v, i);
        }
        for (k, i) in sites {
            result.site_types.insert(k, i);
        }
    }
    let counts = classify::classify(analysis, &mut result);
    result.stage_counts.push((Stage::StandaloneFs, counts));
    Ok(result)
}

/// Per-function CFGs plus block/instruction position indexes.
pub(crate) struct Cfgs {
    cfg: Vec<Cfg>,
    /// For each function: inst id → (block, index in block).
    positions: Vec<HashMap<InstId, (BlockId, usize)>>,
}

impl Cfgs {
    pub(crate) fn new(analysis: &ModuleAnalysis) -> Cfgs {
        let mut cfg = Vec::new();
        let mut positions = Vec::new();
        for f in analysis.module().functions() {
            cfg.push(Cfg::new(f));
            let mut pos = HashMap::new();
            for b in f.blocks() {
                for (i, &inst) in b.insts.iter().enumerate() {
                    pos.insert(inst, (b.id, i));
                }
            }
            positions.push(pos);
        }
        Cfgs { cfg, positions }
    }
}

/// `REACHABLE_TYPES(s, roots)` with DDG-root aliasing (Algorithm 2,
/// lines 12–23).
#[allow(clippy::too_many_arguments)]
fn reachable_types(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    result: &InferenceResult,
    config: &MantaConfig,
    cfgs: &Cfgs,
    func: FuncId,
    site: Option<InstId>,
    roots: &BTreeSet<NodeId>,
    roots_cache: &mut HashMap<VarRef, BTreeSet<NodeId>>,
    cross_callers: bool,
    fp: &mut Footprint,
) -> Vec<Type> {
    // The alias check of line 14: FIND_ROOTS(u) ∩ roots ≠ ∅. Pre-resolving
    // per queried variable via the shared memoized cache. The walker keeps
    // its own footprint accumulator (the alias closure already borrows
    // `fp` mutably) which is folded back in after the walk.
    let mut alias_memo: HashMap<VarRef, bool> = HashMap::new();
    let mut walker = Walker {
        analysis,
        reveals,
        config,
        cfgs,
        out: Vec::new(),
        memo: HashMap::new(),
        active: HashSet::new(),
        budget: config.max_visits,
        cross_callers,
        fp: Footprint::like(fp),
    };
    let mut is_alias = |u: VarRef, roots_cache: &mut HashMap<VarRef, BTreeSet<NodeId>>| -> bool {
        if let Some(&b) = alias_memo.get(&u) {
            return b;
        }
        let ur = find_roots_traced(analysis, result, config, u, roots_cache, fp);
        let b = ur.iter().any(|r| roots.contains(r));
        alias_memo.insert(u, b);
        b
    };
    // Bridge the two mutable borrows through a small closure enum.
    let mut alias_fn = |u: VarRef| is_alias(u, roots_cache);
    walker.start(func, site, &mut alias_fn);
    fp.absorb(walker.fp);
    walker.out
}

/// `REACHABLE_TYPES` with an arbitrary alias predicate (used by the
/// standalone FS mode).
#[allow(clippy::too_many_arguments)]
fn reachable_types_with_alias(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
    cfgs: &Cfgs,
    func: FuncId,
    site: Option<InstId>,
    alias: &dyn Fn(VarRef) -> bool,
    cross_callers: bool,
) -> Vec<Type> {
    let mut walker = Walker {
        analysis,
        reveals,
        config,
        cfgs,
        out: Vec::new(),
        memo: HashMap::new(),
        active: HashSet::new(),
        budget: config.max_visits,
        cross_callers,
        fp: Footprint::off(),
    };
    let mut alias_fn = |u: VarRef| alias(u);
    walker.start(func, site, &mut alias_fn);
    walker.out
}

struct Walker<'a> {
    analysis: &'a ModuleAnalysis,
    reveals: &'a RevealMap,
    config: &'a MantaConfig,
    cfgs: &'a Cfgs,
    out: Vec<Type>,
    /// Memoized whole-block results: the types collectible scanning
    /// backward from the end of a block (first reveal per path).
    memo: HashMap<(FuncId, BlockId), Vec<Type>>,
    /// Blocks currently on the recursion stack (cycle guard; CFGs are
    /// acyclic after preprocessing, but caller crossings could revisit).
    active: HashSet<(FuncId, BlockId)>,
    budget: usize,
    cross_callers: bool,
    /// Functions whose blocks or caller lists this walk consulted.
    fp: Footprint,
}

impl<'a> Walker<'a> {
    /// Starts the backward walk at `site` (or at the function entry when
    /// `site` is `None` — the def site of a parameter).
    fn start(&mut self, func: FuncId, site: Option<InstId>, alias: &mut dyn FnMut(VarRef) -> bool) {
        let types = match site {
            Some(s) => {
                let (block, idx) = self.cfgs.positions[func.index()][&s];
                let mut ctx = CtxStack::new(self.config.max_ctx_depth);
                self.scan_block(func, block, Some(idx), &mut ctx, alias)
            }
            None => {
                let mut ctx = CtxStack::new(self.config.max_ctx_depth);
                self.cross_to_callers(func, &mut ctx, alias)
            }
        };
        self.out = types;
    }

    /// Collects the set of first-reveals along every backward path from the
    /// given position. Whole-block scans are memoized per `(func, block)`.
    fn scan_block(
        &mut self,
        func: FuncId,
        block: BlockId,
        from_idx: Option<usize>,
        ctx: &mut CtxStack,
        alias: &mut dyn FnMut(VarRef) -> bool,
    ) -> Vec<Type> {
        if from_idx.is_none() {
            if let Some(cached) = self.memo.get(&(func, block)) {
                return cached.clone();
            }
            if !self.active.insert((func, block)) || self.budget == 0 {
                return Vec::new();
            }
        }
        if self.budget > 0 {
            self.budget -= 1;
        } else {
            if from_idx.is_none() {
                self.active.remove(&(func, block));
            }
            return Vec::new();
        }
        self.fp.touch(func);
        let f = self.analysis.module().function(func);
        let b = f.block(block);
        let mut result: Option<Vec<Type>> = None;
        let start = match from_idx {
            Some(i) => Some(i),
            None if b.insts.is_empty() => None,
            None => Some(b.insts.len() - 1),
        };
        if let Some(start) = start {
            for pos in (0..=start).rev() {
                let inst = f.inst(b.insts[pos]);
                // Line 13: operands of s plus s's own definition.
                let mut candidates = inst.kind.uses();
                if let Some(d) = inst.kind.def() {
                    candidates.push(d);
                }
                candidates.dedup();
                let mut here: Vec<Type> = Vec::new();
                for u in candidates {
                    let uv = VarRef::new(func, u);
                    if let Some(t) = self.reveals.at_site(uv, inst.id) {
                        if alias(uv) {
                            here.push(t.clone());
                        }
                    }
                }
                if !here.is_empty() {
                    result.get_or_insert_with(Vec::new).extend(here);
                    // Strong update at instruction granularity: annotations
                    // here kill older hints along this path (lines 15-16);
                    // all aliases annotated at the *same* instruction
                    // contribute.
                    if self.config.strong_updates {
                        break;
                    }
                }
            }
        }
        let types = match (result, self.config.strong_updates) {
            (Some(tys), true) => tys,
            (found, _) => {
                let mut tys = found.unwrap_or_default();
                tys.extend(self.continue_upward(func, block, ctx, alias));
                tys
            }
        };
        if from_idx.is_none() {
            self.active.remove(&(func, block));
            self.memo.insert((func, block), types.clone());
        }
        types
    }

    fn continue_upward(
        &mut self,
        func: FuncId,
        block: BlockId,
        ctx: &mut CtxStack,
        alias: &mut dyn FnMut(VarRef) -> bool,
    ) -> Vec<Type> {
        let cfg = &self.cfgs.cfg[func.index()];
        let preds = cfg.preds(block).to_vec();
        if preds.is_empty() {
            if block == cfg.entry() && self.cross_callers {
                return self.cross_to_callers(func, ctx, alias);
            }
            return Vec::new();
        }
        let mut out = Vec::new();
        for p in preds {
            out.extend(self.scan_block(func, p, None, ctx, alias));
        }
        out
    }

    /// Crossing a function entry backward lands just above each call site
    /// (line 18's `CFG.parents` at entry), popping the context.
    fn cross_to_callers(
        &mut self,
        func: FuncId,
        ctx: &mut CtxStack,
        alias: &mut dyn FnMut(VarRef) -> bool,
    ) -> Vec<Type> {
        // The caller list is part of `func`'s call-graph adjacency, which
        // its input fingerprint covers — so consulting it (even when
        // empty) makes `func` part of the footprint.
        self.fp.touch(func);
        let callers = self.analysis.callgraph.callers(func).to_vec();
        let mut out = Vec::new();
        for edge in callers {
            let cs = manta_analysis::CallSite {
                caller: edge.caller,
                site: edge.site,
            };
            let op = CtxOp::Pop(cs);
            if ctx.enter(op) {
                let (block, idx) = self.cfgs.positions[edge.caller.index()][&edge.site];
                out.extend(self.scan_block(edge.caller, block, Some(idx), ctx, alias));
                ctx.leave(op);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Resolution;
    use crate::{Manta, MantaConfig, Sensitivity, VarClass};
    use manta_ir::{ModuleBuilder, Width};

    /// The Figure 3 union scenario: one stack slot holds an int on one
    /// branch and a char* on the other; each branch reveals the type it
    /// instantiates.
    fn union_module() -> manta_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let pd = mb.extern_fn("printf_d", &[], None);
        let ps = mb.extern_fn("printf_s", &[], None);
        let malloc = mb.extern_fn("malloc", &[], None);
        let (_, mut fb) = mb.function("f", &[Width::W64, Width::W1], None);
        let x = fb.param(0);
        let c = fb.param(1);
        let slot = fb.alloca(8);
        let bb_i = fb.new_block();
        let bb_p = fb.new_block();
        let bb_j = fb.new_block();
        fb.cond_br(c, bb_i, bb_p);
        // Int branch: store x, reload, print as %ld.
        fb.switch_to(bb_i);
        fb.store(slot, x);
        let vi = fb.load(slot, Width::W64);
        let fmt1 = fb.alloca(8);
        fb.call_extern(pd, &[fmt1, vi], Some(Width::W32));
        fb.br(bb_j);
        // Ptr branch: store a heap pointer, reload, print as %s.
        fb.switch_to(bb_p);
        let k = fb.const_int(32, Width::W64);
        let buf = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        fb.store(slot, buf);
        let vp = fb.load(slot, Width::W64);
        let fmt2 = fb.alloca(8);
        fb.call_extern(ps, &[fmt2, vp], Some(Width::W32));
        fb.br(bb_j);
        fb.switch_to(bb_j);
        fb.ret(None);
        mb.finish_function(fb);
        mb.finish()
    }

    fn loaded_values(analysis: &manta_analysis::ModuleAnalysis) -> Vec<(VarRef, InstId)> {
        let f = analysis.module().function_by_name("f").unwrap();
        f.insts()
            .filter_map(|i| match i.kind {
                manta_ir::InstKind::Load { dst, .. } => Some((VarRef::new(f.id(), dst), i.id)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fi_merges_union_branches() {
        let analysis = manta_analysis::ModuleAnalysis::build(union_module());
        let r = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
        for (v, _) in loaded_values(&analysis) {
            assert_eq!(r.class_of(v), VarClass::Over, "{v} should merge int+ptr");
        }
    }

    #[test]
    fn flow_refinement_recovers_per_branch_types() {
        // The full cascade must type the int-branch load as numeric and the
        // ptr-branch load as a pointer (Example 4.2).
        let analysis = manta_analysis::ModuleAnalysis::build(union_module());
        let r = Manta::new(MantaConfig::with_sensitivity(Sensitivity::FiCsFs)).infer(&analysis);
        let loads = loaded_values(&analysis);
        assert_eq!(loads.len(), 2);
        let (vi, _si) = loads[0];
        let (vp, _sp) = loads[1];
        let ti = r.interval(vi).unwrap().resolution();
        let tp = r.interval(vp).unwrap().resolution();
        let Resolution::Precise(ti) = ti else {
            panic!("int-branch load not precise: {ti:?}")
        };
        let Resolution::Precise(tp) = tp else {
            panic!("ptr-branch load not precise: {tp:?}")
        };
        assert!(ti.is_numeric(), "int branch inferred {ti}");
        assert!(tp.is_pointer(), "ptr branch inferred {tp}");
    }

    #[test]
    fn standalone_fs_leaves_unhinted_vars_unknown() {
        // A parameter whose only hint lives in its caller is invisible to
        // the intraprocedural standalone FS.
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (callee, mut cb) = mb.function("sink2", &[Width::W64], None);
        let p = cb.param(0);
        let q = cb.copy(p); // uses exist, but reveal nothing
        let _ = q;
        cb.ret(None);
        mb.finish_function(cb);
        let (_caller, mut fb) = mb.function("caller", &[], None);
        let k = fb.const_int(8, Width::W64);
        let buf = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        fb.call(callee, &[buf], None);
        fb.ret(None);
        mb.finish_function(fb);
        let analysis = manta_analysis::ModuleAnalysis::build(mb.finish());
        let fs = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fs)).infer(&analysis);
        let callee = analysis.module().function_by_name("sink2").unwrap();
        let pv = VarRef::new(callee.id(), callee.params()[0]);
        assert_eq!(fs.class_of(pv), VarClass::Unknown);
        // FI sees the interprocedural unification and types it.
        let fi = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
        assert_eq!(fi.class_of(pv), VarClass::Precise);
    }

    #[test]
    fn standalone_fs_types_locally_revealed_vars() {
        let mut mb = ModuleBuilder::new("m");
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let v = fb.load(p, Width::W64); // p revealed ptr at its use
        fb.ret(Some(v));
        mb.finish_function(fb);
        let analysis = manta_analysis::ModuleAnalysis::build(mb.finish());
        let fs = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fs)).infer(&analysis);
        let pv = VarRef::new(fid, p);
        assert_eq!(fs.class_of(pv), VarClass::Precise);
        assert!(matches!(fs.precise_type(pv), Some(t) if t.is_pointer()));
    }

    #[test]
    fn site_types_differ_across_branches() {
        let analysis = manta_analysis::ModuleAnalysis::build(union_module());
        let r = Manta::new(MantaConfig::with_sensitivity(Sensitivity::FiCsFs)).infer(&analysis);
        // The two printf call sites see the same stack slot with different
        // per-site types via interval_at.
        let loads = loaded_values(&analysis);
        let (vi, si) = loads[0];
        let (vp, sp) = loads[1];
        let at_i = r.interval_at(vi, si).unwrap().clone();
        let at_p = r.interval_at(vp, sp).unwrap().clone();
        assert_ne!(at_i, at_p);
    }
}
