//! Stage 2: context-sensitive type refinement (paper §4.2.1, Algorithm 1).
//!
//! For each over-approximated variable `v`, a *backward* DDG traversal under
//! CFL-reachability finds the alias **roots** of `v` — the origins of the
//! value `v` carries in valid calling contexts. A *forward* CFL-valid
//! traversal from each root then collects only the type hints reachable in
//! matching contexts; the hint set replaces `v`'s interval (`F↑ = LUB`,
//! `F↓ = GLB`).
//!
//! Two ingredients give the precision gain over stage 1:
//!
//! * call edges act as parentheses, so hints flowing through a polymorphic
//!   function from *other* call sites are CFL-unreachable and ignored;
//! * only DDG-alias paths are searched, so hints of non-aliased variables
//!   that stage 1 unified through shared code are never collected.
//!
//! At `add`/`sub` instructions the traversal "turns to resolve the type of
//! operands first and performs feasibility checking to determine the
//! correct searching direction": an operand already precisely known to be
//! numeric cannot be the alias source of a pointer-valued result, and vice
//! versa.

use std::collections::{BTreeSet, HashMap, HashSet};

use manta_analysis::cfl::{ctx_op, CtxStack, Direction};
use manta_analysis::{DepKind, ModuleAnalysis, NodeId, VarRef};
use manta_ir::{FuncId, Type};
use manta_resilience::{Budget, BudgetExceeded};

use crate::classify;
use crate::interval::{FirstLayer, Resolution, TypeInterval};
use crate::reveal::RevealMap;
use crate::{InferenceResult, MantaConfig, Stage};

/// Runs Algorithm 1 over the current `V_O` set, narrowing intervals in
/// place and appending a [`Stage::ContextRefine`] classification.
pub fn refine(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
    result: &mut InferenceResult,
) {
    match refine_budgeted(analysis, reveals, config, result, &Budget::unlimited()) {
        Ok(()) => {}
        Err(_) => unreachable!("unlimited budget tripped"),
    }
}

/// [`refine`] under a cooperative budget: one fuel unit per candidate
/// variable plus one per DDG node visited by its forward walk.
///
/// # Errors
///
/// Returns the tripped limit *before* committing any interval update, so
/// `result` still reflects the previous tier exactly.
pub fn refine_budgeted(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
    result: &mut InferenceResult,
    budget: &Budget,
) -> Result<(), BudgetExceeded> {
    let over = classify::over_approximated(analysis, result);
    manta_telemetry::counter("cs.candidates", over.len() as u64);

    // Candidates only read the pre-refinement `result` (updates are applied
    // after the loop), so each per-function partition refines independently
    // on the pool; partitions are merged back in candidate order, which is
    // function order. The roots memo becomes partition-local — it is a pure
    // cache, so recomputation across partitions cannot change any answer.
    let chunks = partition_by_func(over);
    let shared: &InferenceResult = result;
    let per_chunk: Vec<Result<Vec<(VarRef, TypeInterval)>, BudgetExceeded>> =
        manta_parallel::par_map(chunks, |chunk| {
            refine_chunk(
                analysis,
                reveals,
                config,
                shared,
                budget,
                chunk,
                &mut Footprint::off(),
            )
        });
    let mut updates: Vec<(VarRef, TypeInterval)> = Vec::new();
    for chunk in per_chunk {
        updates.extend(chunk?);
    }
    manta_telemetry::counter("cs.refined", updates.len() as u64);
    for (v, interval) in updates {
        result.var_types.insert(v, interval);
    }
    let counts = classify::classify(analysis, result);
    result.stage_counts.push((Stage::ContextRefine, counts));
    Ok(())
}

/// Records which functions' data a refinement walk read. The summary
/// cache replays a cached chunk only when every function in its recorded
/// footprint has an unchanged input fingerprint, so the footprint must
/// cover *everything* the walk's outcome depends on: every DDG node
/// visited (its owner's edges and reveals), every variable whose interval
/// fed an arithmetic feasibility check, and every function whose CFG
/// blocks or caller list the flow-sensitive walker consulted. Recording
/// is off (`None`, a branch per touch) on the ordinary full-solve path.
/// The recorder is a dense bitset over function indices: a touch per
/// visited node is on every walk's hot path, so it has to be a couple
/// of instructions, not a tree insert.
#[derive(Default, Debug)]
pub(crate) struct Footprint {
    bits: Option<Vec<u64>>,
}

impl Footprint {
    /// A disabled recorder: `touch` is a no-op.
    pub(crate) fn off() -> Footprint {
        Footprint { bits: None }
    }

    /// An enabled recorder over a module with `n_funcs` functions.
    pub(crate) fn on(n_funcs: usize) -> Footprint {
        Footprint {
            bits: Some(vec![0; n_funcs.div_ceil(64)]),
        }
    }

    /// A recorder in the same state (on/off) as `other`, for walks whose
    /// borrows force a separate accumulator merged back via [`absorb`].
    ///
    /// [`absorb`]: Footprint::absorb
    pub(crate) fn like(other: &Footprint) -> Footprint {
        Footprint {
            bits: other.bits.as_ref().map(|b| vec![0; b.len()]),
        }
    }

    /// Records that the walk read function `f`'s data.
    #[inline]
    pub(crate) fn touch(&mut self, f: FuncId) {
        if let Some(bits) = &mut self.bits {
            bits[f.index() >> 6] |= 1 << (f.index() & 63);
        }
    }

    /// Folds another recorder's touches into this one.
    pub(crate) fn absorb(&mut self, other: Footprint) {
        if let (Some(dst), Some(src)) = (&mut self.bits, other.bits) {
            for (d, s) in dst.iter_mut().zip(src) {
                *d |= s;
            }
        }
    }

    /// The recorded function set in index order (empty when recording
    /// was off).
    pub(crate) fn into_funcs(self) -> Vec<FuncId> {
        let Some(bits) = self.bits else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (w, word) in bits.into_iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                out.push(FuncId((w << 6 | b) as u32));
                word &= word - 1;
            }
        }
        out
    }
}

/// Splits an already function-ordered candidate list into runs sharing a
/// function — the unit of work the refinement stages hand to the pool.
pub(crate) fn partition_by_func(over: Vec<VarRef>) -> Vec<Vec<VarRef>> {
    let mut chunks: Vec<Vec<VarRef>> = Vec::new();
    for v in over {
        match chunks.last_mut() {
            Some(chunk) if chunk[0].func == v.func => chunk.push(v),
            _ => chunks.push(vec![v]),
        }
    }
    chunks
}

/// Refines one per-function candidate partition. Fuel is charged exactly
/// as the historical serial loop: one unit per candidate plus the size of
/// its forward walk. With an enabled `fp`, records every function whose
/// data the walks read (the summary cache's reuse precondition).
pub(crate) fn refine_chunk(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    config: &MantaConfig,
    result: &InferenceResult,
    budget: &Budget,
    chunk: Vec<VarRef>,
    fp: &mut Footprint,
) -> Result<Vec<(VarRef, TypeInterval)>, BudgetExceeded> {
    let mut roots_cache: HashMap<VarRef, BTreeSet<NodeId>> = HashMap::new();
    let mut updates: Vec<(VarRef, TypeInterval)> = Vec::new();
    for v in chunk {
        budget.tick()?;
        fp.touch(v.func);
        let roots = find_roots_traced(analysis, result, config, v, &mut roots_cache, fp);
        let mut types: Vec<Type> = Vec::new();
        let mut visited: HashSet<NodeId> = HashSet::new();
        for &root in &roots {
            collect_types(
                analysis,
                reveals,
                result,
                config,
                root,
                &mut CtxStack::new(config.max_ctx_depth),
                &mut visited,
                &mut types,
                fp,
            );
        }
        // Charge the actual walk size so fuel reflects work done, not
        // just candidate count.
        budget.consume(visited.len() as u64)?;
        if !types.is_empty() {
            let mut interval = TypeInterval::unknown();
            for t in &types {
                interval.absorb(t);
            }
            updates.push((v, interval));
        }
    }
    Ok(updates)
}

/// `FIND_ROOTS(v)`: backward CFL-valid traversal to the origins of `v`
/// (Algorithm 1, lines 11–20). Results are memoized in `cache`.
#[cfg(test)]
pub(crate) fn find_roots(
    analysis: &ModuleAnalysis,
    result: &InferenceResult,
    config: &MantaConfig,
    v: VarRef,
    cache: &mut HashMap<VarRef, BTreeSet<NodeId>>,
) -> BTreeSet<NodeId> {
    find_roots_traced(analysis, result, config, v, cache, &mut Footprint::off())
}

/// [`find_roots`] with footprint recording. The memo is only ever shared
/// within one chunk, whose footprint already covers any walk that seeded
/// a memoized entry — so a cache hit needs no additional touches.
pub(crate) fn find_roots_traced(
    analysis: &ModuleAnalysis,
    result: &InferenceResult,
    config: &MantaConfig,
    v: VarRef,
    cache: &mut HashMap<VarRef, BTreeSet<NodeId>>,
    fp: &mut Footprint,
) -> BTreeSet<NodeId> {
    if let Some(r) = cache.get(&v) {
        return r.clone();
    }
    let start = analysis.ddg.node(v);
    let mut roots = BTreeSet::new();
    let mut visited = HashSet::new();
    let mut budget = config.max_visits;
    walk_roots(
        analysis,
        result,
        start,
        &mut CtxStack::new(config.max_ctx_depth),
        &mut visited,
        &mut roots,
        &mut budget,
        fp,
    );
    if roots.is_empty() {
        roots.insert(start);
    }
    cache.insert(v, roots.clone());
    roots
}

#[allow(clippy::too_many_arguments)]
fn walk_roots(
    analysis: &ModuleAnalysis,
    result: &InferenceResult,
    node: NodeId,
    ctx: &mut CtxStack,
    visited: &mut HashSet<NodeId>,
    roots: &mut BTreeSet<NodeId>,
    budget: &mut usize,
    fp: &mut Footprint,
) {
    if !visited.insert(node) || *budget == 0 {
        return;
    }
    *budget -= 1;
    fp.touch(analysis.ddg.var(node).func);
    let mut advanced = false;
    for &(parent, kind) in analysis.ddg.parents(node) {
        if !edge_carries_type(kind) {
            continue;
        }
        if let DepKind::Arith { .. } = kind {
            // The feasibility decision consumed the parent's interval even
            // when it rejects the edge, so the parent's owner is part of
            // the footprint either way.
            fp.touch(analysis.ddg.var(parent).func);
            if !arith_feasible(result, analysis.ddg.var(parent), analysis.ddg.var(node)) {
                continue;
            }
        }
        let op = ctx_op(kind, Direction::Backward);
        if ctx.enter(op) {
            advanced = true;
            walk_roots(analysis, result, parent, ctx, visited, roots, budget, fp);
            ctx.leave(op);
        }
    }
    if !advanced {
        roots.insert(node);
    }
}

/// `COLLECT_TYPES(root)`: forward CFL-valid traversal gathering type
/// annotations (Algorithm 1, lines 21–28).
#[allow(clippy::too_many_arguments)]
fn collect_types(
    analysis: &ModuleAnalysis,
    reveals: &RevealMap,
    result: &InferenceResult,
    config: &MantaConfig,
    node: NodeId,
    ctx: &mut CtxStack,
    visited: &mut HashSet<NodeId>,
    types: &mut Vec<Type>,
    fp: &mut Footprint,
) {
    if !visited.insert(node) || visited.len() > config.max_visits {
        return;
    }
    let v = analysis.ddg.var(node);
    fp.touch(v.func);
    for (_, t) in reveals.of_var(v) {
        types.push(t.clone());
    }
    for &(child, kind) in analysis.ddg.children(node) {
        if !edge_carries_type(kind) {
            continue;
        }
        if let DepKind::Arith { .. } = kind {
            fp.touch(analysis.ddg.var(child).func);
            if !arith_feasible(result, v, analysis.ddg.var(child)) {
                continue;
            }
        }
        let op = ctx_op(kind, Direction::Forward);
        if ctx.enter(op) {
            collect_types(
                analysis, reveals, result, config, child, ctx, visited, types, fp,
            );
            ctx.leave(op);
        }
    }
}

/// Whether an edge transports the *same* value (and hence the same type).
/// `Field` derives an interior pointer, `ExternFlow` may change the type
/// (`atoi`), `Cmp` produces a boolean — none carry the type across.
fn edge_carries_type(kind: DepKind) -> bool {
    matches!(
        kind,
        DepKind::Direct
            | DepKind::Memory(_)
            | DepKind::CallParam(_)
            | DepKind::CallReturn(_)
            | DepKind::Arith { .. }
    )
}

/// Feasibility check at `add`/`sub` edges: the operand and the result can
/// only alias when their currently-known types are compatible.
fn arith_feasible(result: &InferenceResult, operand: VarRef, res: VarRef) -> bool {
    let layer_of = |v: VarRef| -> Option<FirstLayer> {
        match result.var_types.get(&v)?.resolution() {
            Resolution::Precise(t) => Some(FirstLayer::of(&t)),
            _ => None,
        }
    };
    let may_be_ptr = |v: VarRef| match result.var_types.get(&v) {
        None => true,
        Some(i) => {
            i.is_any()
                || i.is_unknown()
                || matches!(
                    FirstLayer::of(&i.upper),
                    FirstLayer::Ptr | FirstLayer::Reg(manta_ir::Width::W64) | FirstLayer::Top
                )
        }
    };
    match (layer_of(operand), layer_of(res)) {
        // Both precisely known: they alias only if the first layers agree.
        (Some(a), Some(b)) => a == b,
        // A precisely numeric operand cannot be the alias source of a
        // possibly-pointer result (it is the offset, not the base).
        (Some(a), None) if a != FirstLayer::Ptr && a.is_concrete() => !may_be_ptr(res),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manta, MantaConfig, Sensitivity, VarClass};
    use manta_ir::{BinOp, ModuleBuilder, Width};

    /// The polymorphic-identity scenario: FI over-approximates the result
    /// of `id` in each caller; CS refinement must split the contexts.
    fn polymorphic_module() -> manta_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let pd = mb.extern_fn("printf_d", &[], None);
        let ps = mb.extern_fn("printf_s", &[], None);
        let (id_f, mut ib) = mb.function("id", &[Width::W64], Some(Width::W64));
        let x = ib.param(0);
        ib.ret(Some(x));
        mb.finish_function(ib);

        // Caller 1: passes a numeric value, prints the result as %ld.
        let (_c1, mut cb1) = mb.function("use_int", &[Width::W64], None);
        let n = cb1.param(0);
        let n2 = cb1.binop(BinOp::Mul, n, n, Width::W64);
        let r1 = cb1.call(id_f, &[n2], Some(Width::W64)).unwrap();
        let fmt = cb1.alloca(8);
        cb1.call_extern(pd, &[fmt, r1], Some(Width::W32));
        cb1.ret(None);
        mb.finish_function(cb1);

        // Caller 2: passes a heap pointer, prints the result as %s.
        let (_c2, mut cb2) = mb.function("use_ptr", &[], None);
        let k = cb2.const_int(16, Width::W64);
        let buf = cb2.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let r2 = cb2.call(id_f, &[buf], Some(Width::W64)).unwrap();
        let fmt = cb2.alloca(8);
        cb2.call_extern(ps, &[fmt, r2], Some(Width::W32));
        cb2.ret(None);
        mb.finish_function(cb2);
        mb.finish()
    }

    #[test]
    fn fi_over_approximates_polymorphic_results() {
        let analysis = manta_analysis::ModuleAnalysis::build(polymorphic_module());
        let r = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&analysis);
        let m = analysis.module();
        let c1 = m.function_by_name("use_int").unwrap();
        // r1 = id(n2) — the direct call result (first call inst in c1).
        let r1 = c1
            .insts()
            .find_map(|i| match &i.kind {
                manta_ir::InstKind::Call {
                    dst,
                    callee: manta_ir::Callee::Direct(_),
                    ..
                } => *dst,
                _ => None,
            })
            .unwrap();
        assert_eq!(r.class_of(VarRef::new(c1.id(), r1)), VarClass::Over);
    }

    #[test]
    fn cs_refinement_splits_contexts() {
        let analysis = manta_analysis::ModuleAnalysis::build(polymorphic_module());
        let reveals = RevealMap::collect(&analysis);
        let config = MantaConfig::with_sensitivity(Sensitivity::FiCsFs);
        let mut result = crate::flow_insensitive::run(&analysis, &reveals, config);
        refine(&analysis, &reveals, &config, &mut result);

        let m = analysis.module();
        let c1 = m.function_by_name("use_int").unwrap();
        let c2 = m.function_by_name("use_ptr").unwrap();
        let call_dst = |f: &manta_ir::Function| {
            f.insts()
                .find_map(|i| match &i.kind {
                    manta_ir::InstKind::Call {
                        dst,
                        callee: manta_ir::Callee::Direct(_),
                        ..
                    } => *dst,
                    _ => None,
                })
                .unwrap()
        };
        let r1 = VarRef::new(c1.id(), call_dst(c1));
        let r2 = VarRef::new(c2.id(), call_dst(c2));
        // After context-sensitive refinement, the two call results are
        // precisely typed per their own contexts.
        let t1 = result.var_types[&r1].resolution();
        let t2 = result.var_types[&r2].resolution();
        assert!(
            t1.is_precise(),
            "use_int result should be precise, got {t1:?}"
        );
        assert!(
            t2.is_precise(),
            "use_ptr result should be precise, got {t2:?}"
        );
        let Resolution::Precise(t1) = t1 else {
            unreachable!()
        };
        let Resolution::Precise(t2) = t2 else {
            unreachable!()
        };
        assert!(t1.is_numeric(), "int context inferred {t1}");
        assert!(t2.is_pointer(), "ptr context inferred {t2}");
    }

    #[test]
    fn numeric_operand_of_pointer_add_is_not_a_root_path() {
        // r = base + off where off is precisely numeric: backward traversal
        // from r must not cross into off.
        let mut mb = ModuleBuilder::new("m");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let n = fb.param(0);
        let off = fb.binop(BinOp::Mul, n, n, Width::W64); // precise numeric
        let k = fb.const_int(64, Width::W64);
        let base = fb.call_extern(malloc, &[k], Some(Width::W64)).unwrap();
        let r = fb.binop(BinOp::Add, base, off, Width::W64);
        let x = fb.load(r, Width::W64); // r revealed ptr
        let _ = x;
        fb.ret(Some(r));
        mb.finish_function(fb);
        let analysis = manta_analysis::ModuleAnalysis::build(mb.finish());
        let reveals = RevealMap::collect(&analysis);
        let config = MantaConfig::full();
        let result = crate::flow_insensitive::run(&analysis, &reveals, config);
        let mut cache = HashMap::new();
        let roots = find_roots(&analysis, &result, &config, VarRef::new(fid, r), &mut cache);
        let off_node = analysis.ddg.node(VarRef::new(fid, off));
        assert!(
            !roots.contains(&off_node),
            "numeric offset must not be an alias root"
        );
        let base_roots = find_roots(
            &analysis,
            &result,
            &config,
            VarRef::new(fid, base),
            &mut cache,
        );
        assert!(
            roots.iter().any(|r| base_roots.contains(r)),
            "pointer base must stay on the root path"
        );
    }
}
