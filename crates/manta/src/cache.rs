//! Cache-aware inference: content fingerprints, result (de)serialization
//! and the [`AnalysisCache`] wrapper over [`manta_store::Store`].
//!
//! ## Keying
//!
//! Cached inference results are keyed `(stage, content, config)`:
//!
//! * **content** — [`module_fingerprint`], a deterministic hash of the
//!   module's *canonical printed text* (`print(parse(print(m))) ==
//!   print(m)`, so two behaviorally identical modules always share a
//!   fingerprint regardless of how they were built).
//! * **config** — [`config_hash`], covering every [`MantaConfig`] field,
//!   the fuel limit when one applies, and [`CODEC_VERSION`]. Thread
//!   count is deliberately *excluded*: inference results are
//!   bit-identical at any pool size, so a warm cache populated at one
//!   thread count serves every other. Wall-clock deadlines are handled
//!   by *bypassing* the cache entirely (deadline-degraded results are
//!   nondeterministic and must never be persisted).
//!
//! Stale data is impossible by construction — changed inputs hash to
//! different keys — and the per-function index maintained by
//! [`AnalysisCache::sync_module`] adds *physical* invalidation on top:
//! when a function's canonical text changes, the entries of every
//! function in its bidirectional call-graph closure (the sound dirty set
//! under global unification) are deleted, along with the stale
//! module-level entries.
//!
//! ## Degradation, not failure
//!
//! Corrupt or version-mismatched store state never fails an inference:
//! the entry (or the whole store, on a manifest mismatch) is discarded,
//! a [`Degradation`] with [`DegradationKind::StoreCorruption`] is
//! recorded, and the result is recomputed. Results computed while a
//! fault-injection plan is active are neither served from nor written to
//! the cache.

use std::collections::HashMap;
use std::sync::Mutex;

use manta_analysis::{ModuleAnalysis, ObjectId, VarRef};
use manta_ir::{printer, FuncId, InstId, Type, ValueId, Width};
use manta_resilience::{BudgetSpec, Degradation, DegradationKind};
use manta_store::{
    hash_str, ByteReader, ByteWriter, DecodeError, DepGraph, Fingerprint, Key, OpenOutcome, Store,
    StoreError,
};

use crate::interval::TypeInterval;
use crate::{ClassCounts, InferenceResult, Manta, MantaConfig, Sensitivity, Stage, VarClass};

/// Version of the payload encoding in this module. Folded into every
/// config hash, so bumping it orphans (rather than misreads) entries
/// written by older codecs.
pub const CODEC_VERSION: u32 = 1;

/// Maximum [`Type`] nesting depth accepted by the decoder — a corrupt
/// payload must not be able to recurse the stack away. Generous: the
/// type lattice itself widens beyond `manta_ir::types::MAX_TYPE_DEPTH`.
const MAX_DECODE_DEPTH: usize = 64;

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

/// Deterministic content hash of a module: the hash of its canonical
/// printed text.
#[must_use]
pub fn module_fingerprint(module: &manta_ir::Module) -> u64 {
    hash_str(&printer::print_module(module))
}

/// Per-function content hashes `(name, fingerprint)`, in id order. Two
/// functions with identical canonical text hash identically — the input
/// to dependency-aware invalidation.
#[must_use]
pub fn function_fingerprints(module: &manta_ir::Module) -> Vec<(String, u64)> {
    module
        .functions()
        .map(|f| {
            (
                f.name().to_string(),
                hash_str(&printer::print_function_canonical(module, f)),
            )
        })
        .collect()
}

/// Hash of every configuration bit that can change an inference result:
/// the [`MantaConfig`] fields, the fuel limit (when budgeted), and
/// [`CODEC_VERSION`]. Thread count is excluded by design (results are
/// thread-invariant); deadline budgets bypass the cache instead of
/// being hashed (wall-clock cutoffs are nondeterministic).
#[must_use]
pub fn config_hash(config: &MantaConfig, fuel: Option<u64>) -> u64 {
    let mut h = Fingerprint::new();
    h.write_u64(u64::from(CODEC_VERSION));
    h.write_u64(u64::from(sensitivity_tag(config.sensitivity)));
    h.write_usize(config.max_ctx_depth);
    h.write_usize(config.max_visits);
    h.write_u64(u64::from(config.strong_updates));
    match fuel {
        Some(f) => h.write_u64(1).write_u64(f),
        None => h.write_u64(0),
    };
    h.finish()
}

fn sensitivity_tag(s: Sensitivity) -> u8 {
    match s {
        Sensitivity::Fi => 0,
        Sensitivity::Fs => 1,
        Sensitivity::FiFs => 2,
        Sensitivity::FiCsFs => 3,
        Sensitivity::FiFsCs => 4,
    }
}

fn sensitivity_from_tag(tag: u8) -> Option<Sensitivity> {
    Some(match tag {
        0 => Sensitivity::Fi,
        1 => Sensitivity::Fs,
        2 => Sensitivity::FiFs,
        3 => Sensitivity::FiCsFs,
        4 => Sensitivity::FiFsCs,
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------

fn enc_width(w: &mut ByteWriter, width: Width) {
    w.u8(width.bits() as u8);
}

fn dec_width(r: &mut ByteReader<'_>) -> Result<Width, DecodeError> {
    let bits = r.u8("width")?;
    Width::from_bits(u32::from(bits)).ok_or(DecodeError {
        context: "width",
        offset: 0,
    })
}

pub(crate) fn enc_type(w: &mut ByteWriter, t: &Type) {
    match t {
        Type::Top => {
            w.u8(0);
        }
        Type::Bottom => {
            w.u8(1);
        }
        Type::Reg(width) => {
            w.u8(2);
            enc_width(w, *width);
        }
        Type::Num(width) => {
            w.u8(3);
            enc_width(w, *width);
        }
        Type::Int(width) => {
            w.u8(4);
            enc_width(w, *width);
        }
        Type::Float => {
            w.u8(5);
        }
        Type::Double => {
            w.u8(6);
        }
        Type::Ptr(inner) => {
            w.u8(7);
            enc_type(w, inner);
        }
        Type::Array(elem, len) => {
            w.u8(8);
            enc_type(w, elem);
            w.u64(*len);
        }
        Type::Object(fields) => {
            w.u8(9);
            w.usize(fields.len());
            for (off, ft) in fields {
                w.u64(*off);
                enc_type(w, ft);
            }
        }
        Type::Func(sig) => {
            w.u8(10);
            w.usize(sig.params.len());
            for p in &sig.params {
                enc_type(w, p);
            }
            enc_type(w, &sig.ret);
        }
    }
}

pub(crate) fn dec_type(r: &mut ByteReader<'_>, depth: usize) -> Result<Type, DecodeError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(DecodeError {
            context: "type depth",
            offset: 0,
        });
    }
    Ok(match r.u8("type tag")? {
        0 => Type::Top,
        1 => Type::Bottom,
        2 => Type::Reg(dec_width(r)?),
        3 => Type::Num(dec_width(r)?),
        4 => Type::Int(dec_width(r)?),
        5 => Type::Float,
        6 => Type::Double,
        7 => Type::ptr(dec_type(r, depth + 1)?),
        8 => {
            let elem = dec_type(r, depth + 1)?;
            let len = r.u64("array len")?;
            Type::Array(std::sync::Arc::new(elem), len)
        }
        9 => {
            let n = r.len("object fields")?;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let off = r.u64("field offset")?;
                fields.push((off, dec_type(r, depth + 1)?));
            }
            Type::Object(fields)
        }
        10 => {
            let n = r.len("func params")?;
            let mut params = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                params.push(dec_type(r, depth + 1)?);
            }
            let ret = dec_type(r, depth + 1)?;
            Type::Func(manta_ir::FuncSig::new(params, ret))
        }
        _ => {
            return Err(DecodeError {
                context: "type tag",
                offset: 0,
            })
        }
    })
}

pub(crate) fn enc_interval(w: &mut ByteWriter, i: &TypeInterval) {
    enc_type(w, &i.upper);
    enc_type(w, &i.lower);
}

pub(crate) fn dec_interval(r: &mut ByteReader<'_>) -> Result<TypeInterval, DecodeError> {
    Ok(TypeInterval {
        upper: dec_type(r, 0)?,
        lower: dec_type(r, 0)?,
    })
}

pub(crate) fn enc_varref(w: &mut ByteWriter, v: VarRef) {
    w.u32(v.func.0).u32(v.value.0);
}

pub(crate) fn dec_varref(r: &mut ByteReader<'_>) -> Result<VarRef, DecodeError> {
    Ok(VarRef {
        func: FuncId(r.u32("varref func")?),
        value: ValueId(r.u32("varref value")?),
    })
}

fn class_tag(c: VarClass) -> u8 {
    match c {
        VarClass::Precise => 0,
        VarClass::Over => 1,
        VarClass::Unknown => 2,
    }
}

fn class_from_tag(tag: u8) -> Option<VarClass> {
    Some(match tag {
        0 => VarClass::Precise,
        1 => VarClass::Over,
        2 => VarClass::Unknown,
        _ => return None,
    })
}

fn stage_tag(s: Stage) -> u8 {
    match s {
        Stage::FlowInsensitive => 0,
        Stage::ContextRefine => 1,
        Stage::FlowRefine => 2,
        Stage::StandaloneFs => 3,
    }
}

fn stage_from_tag(tag: u8) -> Option<Stage> {
    Some(match tag {
        0 => Stage::FlowInsensitive,
        1 => Stage::ContextRefine,
        2 => Stage::FlowRefine,
        3 => Stage::StandaloneFs,
        _ => return None,
    })
}

fn kind_tag(k: DegradationKind) -> u8 {
    match k {
        DegradationKind::BudgetFuel => 0,
        DegradationKind::BudgetDeadline => 1,
        DegradationKind::Panic => 2,
        DegradationKind::InjectedFault => 3,
        DegradationKind::StoreCorruption => 4,
    }
}

fn kind_from_tag(tag: u8) -> Option<DegradationKind> {
    Some(match tag {
        0 => DegradationKind::BudgetFuel,
        1 => DegradationKind::BudgetDeadline,
        2 => DegradationKind::Panic,
        3 => DegradationKind::InjectedFault,
        4 => DegradationKind::StoreCorruption,
        _ => return None,
    })
}

pub(crate) fn bad(context: &'static str) -> DecodeError {
    DecodeError { context, offset: 0 }
}

/// Reads a `usize` that is a plain count, not a buffer-bounded length
/// prefix (`ByteReader::len` rejects values exceeding the buffer, which
/// is wrong for e.g. `max_visits`).
pub(crate) fn dec_usize(
    r: &mut ByteReader<'_>,
    context: &'static str,
) -> Result<usize, DecodeError> {
    usize::try_from(r.u64(context)?).map_err(|_| bad(context))
}

/// Serializes a full [`InferenceResult`] to bytes. Deterministic: map
/// entries are emitted in sorted key order, so the same result always
/// produces the same bytes (the differential tests compare payloads
/// byte for byte across thread counts).
#[must_use]
pub fn encode_result(result: &InferenceResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(CODEC_VERSION);

    let mut vars: Vec<(&VarRef, &TypeInterval)> = result.var_types.iter().collect();
    vars.sort_by_key(|(v, _)| **v);
    w.usize(vars.len());
    for (v, i) in vars {
        enc_varref(&mut w, *v);
        enc_interval(&mut w, i);
    }

    let mut objs: Vec<(&ObjectId, &TypeInterval)> = result.obj_types.iter().collect();
    objs.sort_by_key(|(o, _)| **o);
    w.usize(objs.len());
    for (o, i) in objs {
        w.u32(o.0);
        enc_interval(&mut w, i);
    }

    let mut sites: Vec<(&(VarRef, InstId), &TypeInterval)> = result.site_types.iter().collect();
    sites.sort_by_key(|(k, _)| **k);
    w.usize(sites.len());
    for ((v, s), i) in sites {
        enc_varref(&mut w, *v);
        w.u32(s.0);
        enc_interval(&mut w, i);
    }

    let mut classes: Vec<(&VarRef, &VarClass)> = result.class.iter().collect();
    classes.sort_by_key(|(v, _)| **v);
    w.usize(classes.len());
    for (v, c) in classes {
        enc_varref(&mut w, *v);
        w.u8(class_tag(*c));
    }

    w.usize(result.stage_counts.len());
    for (stage, counts) in &result.stage_counts {
        w.u8(stage_tag(*stage));
        w.usize(counts.precise)
            .usize(counts.over)
            .usize(counts.unknown);
    }

    w.u8(sensitivity_tag(result.config.sensitivity));
    w.usize(result.config.max_ctx_depth);
    w.usize(result.config.max_visits);
    w.bool(result.config.strong_updates);

    w.usize(result.degradations.len());
    for d in &result.degradations {
        w.str(&d.stage).str(&d.completed);
        w.u8(kind_tag(d.kind));
        w.str(&d.detail);
    }
    w.finish()
}

/// Decodes a payload written by [`encode_result`].
///
/// # Errors
///
/// Any malformed byte yields a [`DecodeError`]; the function never
/// panics (payloads come from disk).
pub fn decode_result(payload: &[u8]) -> Result<InferenceResult, DecodeError> {
    let mut r = ByteReader::new(payload);
    if r.u32("codec version")? != CODEC_VERSION {
        return Err(bad("codec version"));
    }

    let n = r.len("var count")?;
    let mut var_types = HashMap::with_capacity(n.min(4096));
    for _ in 0..n {
        let v = dec_varref(&mut r)?;
        var_types.insert(v, dec_interval(&mut r)?);
    }

    let n = r.len("obj count")?;
    let mut obj_types = HashMap::with_capacity(n.min(4096));
    for _ in 0..n {
        let o = ObjectId(r.u32("object id")?);
        obj_types.insert(o, dec_interval(&mut r)?);
    }

    let n = r.len("site count")?;
    let mut site_types = HashMap::with_capacity(n.min(4096));
    for _ in 0..n {
        let v = dec_varref(&mut r)?;
        let s = InstId(r.u32("site inst")?);
        site_types.insert((v, s), dec_interval(&mut r)?);
    }

    let n = r.len("class count")?;
    let mut class = HashMap::with_capacity(n.min(4096));
    for _ in 0..n {
        let v = dec_varref(&mut r)?;
        let c = class_from_tag(r.u8("class tag")?).ok_or(bad("class tag"))?;
        class.insert(v, c);
    }

    let n = r.len("stage count")?;
    let mut stage_counts = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        let stage = stage_from_tag(r.u8("stage tag")?).ok_or(bad("stage tag"))?;
        let counts = ClassCounts {
            precise: dec_usize(&mut r, "precise")?,
            over: dec_usize(&mut r, "over")?,
            unknown: dec_usize(&mut r, "unknown")?,
        };
        stage_counts.push((stage, counts));
    }

    let config = MantaConfig {
        sensitivity: sensitivity_from_tag(r.u8("sensitivity")?).ok_or(bad("sensitivity"))?,
        max_ctx_depth: dec_usize(&mut r, "max_ctx_depth")?,
        max_visits: dec_usize(&mut r, "max_visits")?,
        strong_updates: r.bool("strong_updates")?,
    };

    let n = r.len("degradation count")?;
    let mut degradations = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        // Constructed literally, NOT via `Degradation::record`: decoding
        // a historical record must not bump the live degradation
        // counter.
        degradations.push(Degradation {
            stage: r.str("degradation stage")?.to_string(),
            completed: r.str("degradation completed")?.to_string(),
            kind: kind_from_tag(r.u8("degradation kind")?).ok_or(bad("degradation kind"))?,
            detail: r.str("degradation detail")?.to_string(),
        });
    }
    r.expect_end("inference result")?;

    Ok(InferenceResult {
        var_types,
        obj_types,
        site_types,
        class,
        stage_counts,
        config,
        degradations,
    })
}

// ---------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------

/// What [`AnalysisCache::sync_module`] found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModuleSync {
    /// Functions whose canonical text changed (or are new) since the
    /// last sync, by name.
    pub changed: Vec<String>,
    /// The bidirectional call-graph closure of `changed` — every
    /// function whose cached per-function results may be stale under
    /// global unification.
    pub affected: Vec<String>,
    /// Entry files physically removed.
    pub invalidated: usize,
}

/// A persistent analysis cache: a [`Store`] plus the Manta-side
/// policies (keying, codec, fault-injection bypass, degradation
/// logging, per-function dependency index).
#[derive(Debug)]
pub struct AnalysisCache {
    store: Store,
    degradations: Mutex<Vec<Degradation>>,
}

impl AnalysisCache {
    /// Opens (or initializes) the cache in `dir`. A corrupt or
    /// version-mismatched store is wiped and reinitialized, recording a
    /// [`DegradationKind::StoreCorruption`] degradation instead of
    /// failing.
    ///
    /// # Errors
    ///
    /// Only on unrecoverable filesystem failures.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<AnalysisCache, StoreError> {
        let store = Store::open(dir)?;
        let mut degradations = Vec::new();
        if store.open_outcome() == OpenOutcome::Recovered {
            degradations.push(Degradation::record(
                "store.open",
                "recomputing",
                DegradationKind::StoreCorruption,
                format!(
                    "store at {} recovered (unclean shutdown swept, or a \
                     corrupt/other-version store discarded)",
                    store.dir().display()
                ),
            ));
        }
        Ok(AnalysisCache {
            store,
            degradations: Mutex::new(degradations),
        })
    }

    /// The underlying store (stats, direct entry access).
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Drains the degradations recorded against this cache so far
    /// (recovered-on-open, corrupt entries discarded mid-run).
    pub fn take_degradations(&self) -> Vec<Degradation> {
        match self.degradations.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(_) => Vec::new(),
        }
    }

    fn note_degradation(&self, d: Degradation) {
        if let Ok(mut g) = self.degradations.lock() {
            g.push(d);
        }
    }

    /// Copies this store's traffic counters into the telemetry registry
    /// (under `store.*`) so `manta stats` and telemetry reports can
    /// render them.
    pub fn publish_telemetry(&self) {
        let s = self.store.stats().snapshot();
        manta_telemetry::counter_set("store.hits", s.hits);
        manta_telemetry::counter_set("store.misses", s.misses);
        manta_telemetry::counter_set("store.invalidations", s.invalidations);
        manta_telemetry::counter_set("store.corrupt", s.corrupt);
        manta_telemetry::counter_set("store.bytes_read", s.bytes_read);
        manta_telemetry::counter_set("store.bytes_written", s.bytes_written);
    }

    /// Fetches and decodes a cached inference result. Checksum-valid but
    /// undecodable payloads (hash collision, codec bug) are discarded
    /// with a degradation record — never served, never panicked on.
    pub(crate) fn get_result(&self, key: &Key) -> Option<InferenceResult> {
        let payload = self.store.get(key)?;
        match decode_result(&payload) {
            Ok(r) => Some(r),
            Err(e) => {
                self.store.invalidate(key);
                self.note_degradation(Degradation::record(
                    "store.decode",
                    "recomputing",
                    DegradationKind::StoreCorruption,
                    format!("entry {key}: {e}"),
                ));
                None
            }
        }
    }

    /// Syncs the per-function fingerprint index against `analysis` and
    /// performs dependency-aware invalidation: the entries of every
    /// function in the bidirectional call-graph closure of the changed
    /// set are removed, and module-level entries for the superseded
    /// module fingerprint are dropped.
    pub fn sync_module(&self, analysis: &ModuleAnalysis) -> ModuleSync {
        let module = analysis.module();
        let fingerprints = function_fingerprints(module);
        let module_fp = module_fingerprint(module);
        self.sync_module_with(analysis, &fingerprints, module_fp)
    }

    /// [`sync_module`] with the fingerprints precomputed by the caller:
    /// canonical-text hashing is the dominant fixed cost of a cached
    /// solve, so a driver that needs the fingerprints anyway (the
    /// summary path does) must not hash the module twice.
    ///
    /// [`sync_module`]: AnalysisCache::sync_module
    pub(crate) fn sync_module_with(
        &self,
        analysis: &ModuleAnalysis,
        fingerprints: &[(String, u64)],
        module_fp: u64,
    ) -> ModuleSync {
        let module = analysis.module();
        let index_key = Key::new("modidx", hash_str(module.name()), 0);
        let previous = self
            .store
            .get(&index_key)
            .and_then(|p| decode_index(&p).ok());

        let mut sync = ModuleSync::default();
        if let Some(prev) = &previous {
            let prev_map: HashMap<&str, u64> = prev
                .functions
                .iter()
                .map(|(n, f)| (n.as_str(), *f))
                .collect();
            let cur_map: HashMap<&str, u64> =
                fingerprints.iter().map(|(n, f)| (n.as_str(), *f)).collect();

            for (name, fp) in fingerprints {
                if prev_map.get(name.as_str()) != Some(fp) {
                    sync.changed.push(name.clone());
                }
            }
            // Removed functions count as changes too: their callers'
            // summaries are stale.
            let mut removed: Vec<&String> = prev
                .functions
                .iter()
                .map(|(n, _)| n)
                .filter(|n| !cur_map.contains_key(n.as_str()))
                .collect();
            removed.sort();

            if !sync.changed.is_empty() || !removed.is_empty() {
                // Bidirectional closure over the *current* call graph.
                let ids: HashMap<&str, u32> = fingerprints
                    .iter()
                    .enumerate()
                    .map(|(i, (n, _))| (n.as_str(), i as u32))
                    .collect();
                let mut graph = DepGraph::new(fingerprints.len());
                for e in analysis.callgraph.edges() {
                    let caller = module.function(e.caller).name();
                    let callee = module.function(e.callee).name();
                    if let (Some(&a), Some(&b)) = (ids.get(caller), ids.get(callee)) {
                        graph.add_dep(a, b);
                    }
                }
                let mut seeds: Vec<u32> = sync
                    .changed
                    .iter()
                    .filter_map(|n| ids.get(n.as_str()).copied())
                    .collect();
                // Callers of removed functions seed through the previous
                // index: they are current functions whose callee set
                // shrank, so their own text changed too in any
                // well-formed edit; seeding `changed` already covers
                // them, but keep removed names visible in the report.
                seeds.sort_unstable();
                for idx in graph.affected(&seeds) {
                    sync.affected.push(fingerprints[idx as usize].0.clone());
                }

                // Physical invalidation: per-function entries of every
                // affected function (old and new fingerprints), plus
                // superseded module-level entries.
                for name in &sync.affected {
                    for fp in [
                        prev_map.get(name.as_str()).copied(),
                        cur_map.get(name.as_str()).copied(),
                    ]
                    .into_iter()
                    .flatten()
                    {
                        sync.invalidated += self.store.invalidate_content("func", fp);
                    }
                }
                for (_, fp) in removed
                    .iter()
                    .filter_map(|n| prev.functions.iter().find(|(pn, _)| pn == n.as_str()))
                {
                    sync.invalidated += self.store.invalidate_content("func", *fp);
                }
                if prev.module != module_fp {
                    sync.invalidated += self.store.invalidate_content("infer", prev.module);
                    sync.invalidated += self.store.invalidate_content("row", prev.module);
                }
            }
        } else {
            sync.changed = fingerprints.iter().map(|(n, _)| n.clone()).collect();
            sync.affected.clone_from(&sync.changed);
        }

        let _ = self.store.put(
            &index_key,
            &encode_index(&FunctionIndex {
                module: module_fp,
                functions: fingerprints.to_vec(),
            }),
        );
        sync
    }
}

/// Whether two inference results are bit-identical under the canonical
/// codec — the equality notion the cache (and the engine parity tests)
/// are held to.
#[must_use]
pub fn results_identical(a: &InferenceResult, b: &InferenceResult) -> bool {
    encode_result(a) == encode_result(b)
}

/// The persisted per-module function index.
struct FunctionIndex {
    module: u64,
    functions: Vec<(String, u64)>,
}

fn encode_index(index: &FunctionIndex) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(CODEC_VERSION);
    w.u64(index.module);
    w.usize(index.functions.len());
    for (name, fp) in &index.functions {
        w.str(name).u64(*fp);
    }
    w.finish()
}

fn decode_index(payload: &[u8]) -> Result<FunctionIndex, DecodeError> {
    let mut r = ByteReader::new(payload);
    if r.u32("index version")? != CODEC_VERSION {
        return Err(bad("index version"));
    }
    let module = r.u64("module fp")?;
    let n = r.len("function count")?;
    let mut functions = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = r.str("function name")?.to_string();
        functions.push((name, r.u64("function fp")?));
    }
    r.expect_end("function index")?;
    Ok(FunctionIndex { module, functions })
}

impl Manta {
    /// Cache-aware [`Manta::infer`]: serves a stored result when the
    /// `(module fingerprint, config hash)` key hits, computes and
    /// persists otherwise. Bypasses the cache entirely while a
    /// fault-injection plan is active.
    #[deprecated(
        note = "build an `Engine` with a cache (`EngineBuilder::cache_dir` or \
                `EngineBuilder::cache`) and call `Engine::analyze`"
    )]
    pub fn infer_cached(
        &self,
        analysis: &ModuleAnalysis,
        cache: &AnalysisCache,
    ) -> InferenceResult {
        match crate::Engine::new(*self.config()).analyze_with_cache(analysis, cache) {
            Ok(r) => r,
            Err(_) => unreachable!("non-strict engines convert failures to degradations"),
        }
    }

    /// Cache-aware [`Manta::infer_resilient`]. The fuel limit is part of
    /// the key (fuel-degraded results are deterministic); deadline
    /// budgets bypass the cache (wall-clock cutoffs are not), as do
    /// active fault-injection plans. Degraded results are recomputed
    /// rather than persisted, so a later run with the same key but a
    /// healthier environment is never served a stale degradation.
    #[deprecated(
        note = "build an `Engine` with a budget and a cache (`EngineBuilder::budget` + \
                `EngineBuilder::cache_dir`/`cache`) and call `Engine::analyze`"
    )]
    pub fn infer_resilient_cached(
        &self,
        analysis: &ModuleAnalysis,
        spec: &BudgetSpec,
        cache: &AnalysisCache,
    ) -> InferenceResult {
        let engine = crate::Engine {
            config: *self.config(),
            budget: *spec,
            strict: false,
            provenance: false,
            summaries: false,
            partitioned_pointsto: false,
            cache: None,
        };
        match engine.analyze_with_cache(analysis, cache) {
            Ok(r) => r,
            Err(_) => unreachable!("non-strict engines convert failures to degradations"),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use manta_ir::{BinOp, ModuleBuilder, Width};

    fn sample_module(mul: bool) -> manta_ir::Module {
        let mut mb = ModuleBuilder::new("cached");
        let malloc = mb.extern_fn("malloc", &[], None);
        let (_f, mut fb) = mb.function("grab", &[Width::W64], Some(Width::W64));
        let n = fb.param(0);
        let n2 = if mul {
            fb.binop(BinOp::Mul, n, n, Width::W64)
        } else {
            fb.binop(BinOp::Add, n, n, Width::W64)
        };
        let buf = fb.call_extern(malloc, &[n2], Some(Width::W64)).unwrap();
        fb.ret(Some(buf));
        mb.finish_function(fb);
        let (_g, mut gb) = mb.function("leaf", &[Width::W64], None);
        let _ = gb.param(0);
        gb.ret(None);
        mb.finish_function(gb);
        mb.finish()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("manta-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn result_codec_roundtrips_bit_identically() {
        let analysis = ModuleAnalysis::build(sample_module(true));
        for s in Sensitivity::WITH_REVERSED {
            let r = Manta::new(MantaConfig::with_sensitivity(s)).infer(&analysis);
            let bytes = encode_result(&r);
            let back = decode_result(&bytes).unwrap();
            assert!(results_identical(&r, &back), "{s:?}");
            assert_eq!(bytes, encode_result(&back), "{s:?} re-encode");
        }
    }

    #[test]
    fn warm_hit_matches_cold_computation() {
        let dir = temp_dir("warmhit");
        let cache = AnalysisCache::open(&dir).unwrap();
        let analysis = ModuleAnalysis::build(sample_module(true));
        let m = Manta::new(MantaConfig::full());
        let cold = m.infer_cached(&analysis, &cache);
        let warm = m.infer_cached(&analysis, &cache);
        assert!(results_identical(&cold, &warm));
        // Two gets per analyze: the per-module function index (synced by
        // the engine driver) and the inference entry itself.
        let s = cache.store().stats().snapshot();
        assert_eq!((s.hits, s.misses), (2, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_changes_key_separately() {
        let a = config_hash(&MantaConfig::full(), None);
        let b = config_hash(&MantaConfig::with_sensitivity(Sensitivity::Fi), None);
        let c = config_hash(&MantaConfig::full(), Some(1000));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Same inputs, same hash: keys are stable across processes.
        assert_eq!(a, config_hash(&MantaConfig::full(), None));
    }

    #[test]
    fn sync_module_reports_dependency_closure() {
        let dir = temp_dir("sync");
        let cache = AnalysisCache::open(&dir).unwrap();
        let before = ModuleAnalysis::build(sample_module(true));
        let first = cache.sync_module(&before);
        assert_eq!(first.changed.len(), 2, "everything new on first sync");

        // No edit: nothing changes.
        let clean = cache.sync_module(&before);
        assert!(clean.changed.is_empty(), "{clean:?}");
        assert!(clean.affected.is_empty());

        // Edit `grab` only: `leaf` has no call edge to it, so the
        // affected set is exactly `grab`.
        let after = ModuleAnalysis::build(sample_module(false));
        let edit = cache.sync_module(&after);
        assert_eq!(edit.changed, vec!["grab".to_string()]);
        assert_eq!(edit.affected, vec!["grab".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn module_edit_invalidates_stale_infer_entries() {
        let dir = temp_dir("inval");
        let cache = AnalysisCache::open(&dir).unwrap();
        let before = ModuleAnalysis::build(sample_module(true));
        let m = Manta::new(MantaConfig::full());
        cache.sync_module(&before);
        let _ = m.infer_cached(&before, &cache);
        assert_eq!(cache.store().len(), 2, "index + infer entry");

        let after = ModuleAnalysis::build(sample_module(false));
        let sync = cache.sync_module(&after);
        assert!(sync.invalidated >= 1, "{sync:?}");
        // The old infer entry is gone; a fresh one lands under a new key.
        let warm = m.infer_cached(&after, &cache);
        let direct = m.infer(&after);
        assert!(results_identical(&warm, &direct));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_degrades_and_recomputes() {
        let dir = temp_dir("corrupt");
        let cache = AnalysisCache::open(&dir).unwrap();
        let analysis = ModuleAnalysis::build(sample_module(true));
        let m = Manta::new(MantaConfig::full());
        let cold = m.infer_cached(&analysis, &cache);

        // Rewrite the entry with a checksum-valid but undecodable
        // payload: the store serves it, the codec must reject it.
        let key = Key::new(
            "infer",
            module_fingerprint(analysis.module()),
            config_hash(m.config(), None),
        );
        cache.store().put(&key, b"not an inference result").unwrap();
        let warm = m.infer_cached(&analysis, &cache);
        assert!(results_identical(&cold, &warm), "recomputed, not stale");
        let degs = cache.take_degradations();
        assert_eq!(degs.len(), 1);
        assert_eq!(degs[0].kind, DegradationKind::StoreCorruption);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
