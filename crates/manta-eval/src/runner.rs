//! Suite loading: generate workloads and build their module analyses,
//! in parallel across projects, with a per-stage telemetry breakdown.
//!
//! Every project build runs behind a panic-isolation boundary
//! (`eval.project`): a crash or blown budget in one project is converted
//! into a [`ProjectFailure`] and the remaining projects still load. The
//! `*_checked` loaders expose both halves as a [`SuiteLoad`]; the plain
//! loaders keep their historical all-or-nothing contract.

use std::time::Instant;

use manta_analysis::{ModuleAnalysis, PreprocessConfig};
use manta_resilience::{
    fault_point_keyed, isolate, BudgetSpec, Degradation, DegradationKind, MantaError,
};
use manta_telemetry::Counter;
use manta_workloads::{
    coreutils_suite, firmware_suite, generate_firmware, project_suite, FirmwareSpec, GroundTruth,
    ProjectSpec,
};

/// Worker threads chosen by the most recent [`build_many`]-based load.
static PARALLELISM: Counter = Counter::new("eval.parallelism");

/// A generated, analyzed project ready for experiments.
#[derive(Debug)]
pub struct ProjectData {
    /// The project name.
    pub name: String,
    /// Nominal KLoC label.
    pub kloc: f64,
    /// The prepared analysis (preprocessing, points-to, DDG).
    pub analysis: ModuleAnalysis,
    /// The scoring oracle.
    pub truth: GroundTruth,
    /// Wall time to generate + analyze, in milliseconds.
    pub build_ms: f64,
    /// Per-stage build breakdown `(stage, wall ms)` captured by the
    /// telemetry spans inside [`ModuleAnalysis::build`]: `preprocess`,
    /// `callgraph`, `pointsto`, `ddg`.
    pub stage_ms: Vec<(String, f64)>,
}

impl ProjectData {
    /// Wall milliseconds of one named build stage (0 if absent).
    pub fn stage(&self, name: &str) -> f64 {
        self.stage_ms
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ms)| ms)
            .unwrap_or(0.0)
    }
}

/// One project that could not be built: the isolation boundary caught a
/// panic, or the per-project budget tripped.
#[derive(Debug)]
pub struct ProjectFailure {
    /// The failed project's name.
    pub name: String,
    /// What went wrong.
    pub error: MantaError,
    /// The degradation record emitted for the failure (also bumps the
    /// `resilience.degradations` counter).
    pub degradation: Degradation,
}

/// The outcome of a fault-tolerant suite load: the projects that built
/// plus a record per project that did not.
#[derive(Debug, Default)]
pub struct SuiteLoad {
    /// Successfully built projects, in suite order.
    pub projects: Vec<ProjectData>,
    /// Projects that failed, in suite order.
    pub failures: Vec<ProjectFailure>,
    /// Projects whose generation and parsing was skipped entirely
    /// because an analysis cache already held their result (see
    /// `crate::cached::run_suite_cached`). Always 0 for the plain
    /// uncached loaders.
    pub skipped_parses: usize,
}

impl SuiteLoad {
    /// Whether every project built.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The three generated workload suites of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// The 14-project suite (paper Table 3).
    Projects,
    /// The 104-binary coreutils-like suite.
    Coreutils,
    /// The nine firmware images (paper Table 5).
    Firmware,
}

impl Suite {
    fn units(self) -> Vec<SuiteUnit> {
        match self {
            Suite::Projects => project_suite()
                .into_iter()
                .map(SuiteUnit::Project)
                .collect(),
            Suite::Coreutils => coreutils_suite()
                .into_iter()
                .map(SuiteUnit::Project)
                .collect(),
            Suite::Firmware => firmware_suite()
                .into_iter()
                .map(SuiteUnit::Firmware)
                .collect(),
        }
    }
}

/// One buildable unit of any suite, erasing the spec type behind a
/// uniform name / KLoC / generate surface so a single loader serves
/// every suite.
enum SuiteUnit {
    Project(ProjectSpec),
    Firmware(FirmwareSpec),
}

impl SuiteUnit {
    fn name(&self) -> &str {
        match self {
            SuiteUnit::Project(s) => &s.name,
            SuiteUnit::Firmware(s) => &s.name,
        }
    }

    /// Firmware images carry no KLoC label (Table 5 reports image sizes
    /// instead); they keep the historical 0.0 placeholder.
    fn kloc(&self) -> f64 {
        match self {
            SuiteUnit::Project(s) => s.kloc,
            SuiteUnit::Firmware(_) => 0.0,
        }
    }

    fn generate(&self) -> manta_workloads::GeneratedProgram {
        match self {
            SuiteUnit::Project(s) => s.generate(),
            SuiteUnit::Firmware(s) => generate_firmware(s),
        }
    }
}

/// How a generated project's module reaches the substrate build: taken
/// directly from the generator, or round-tripped through a machine
/// encoding and lifted back by the matching registered frontend — the
/// path a real stripped binary takes into the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Encoding {
    /// Use the generator's IR module as-is (the historical path).
    Direct,
    /// Encode to an SB-ISA image and lift through `manta-isa`.
    Sb,
    /// Encode to an x86-64 image and lift through `manta-x86`.
    X86,
}

/// Encodes `module` per `encoding` and lifts the bytes back through the
/// matching frontend. [`Encoding::Direct`] returns the module untouched.
fn reencode(module: manta_ir::Module, encoding: Encoding) -> Result<manta_ir::Module, MantaError> {
    use manta_ir::Frontend;
    if encoding == Encoding::Direct {
        return Ok(module);
    }
    let dual = manta_workloads::emit_dual(&module).map_err(|e| MantaError::Verify {
        message: format!("dual encoding failed: {e}"),
    })?;
    let (frontend, bytes): (&dyn Frontend, Vec<u8>) = match encoding {
        Encoding::Direct => unreachable!(),
        Encoding::Sb => (&manta_isa::lift::SbFrontend, dual.sb_bytes()),
        Encoding::X86 => (&manta_x86::X86Frontend, dual.x86_bytes()),
    };
    frontend.lift_bytes(&bytes).map_err(|e| MantaError::Verify {
        message: format!("{} lift failed: {e}", frontend.name()),
    })
}

/// Generates and analyzes one unit behind the `eval.project` isolation
/// boundary, under a fresh budget minted from `budget`.
fn build_unit_checked(
    unit: &SuiteUnit,
    budget: BudgetSpec,
    encoding: Encoding,
) -> Result<ProjectData, MantaError> {
    let name = unit.name().to_string();
    let kloc = unit.kloc();
    let start = Instant::now();
    let budget = budget.start();
    let (outcome, spans) = manta_telemetry::scoped(|| {
        isolate("eval.project", || {
            fault_point_keyed("eval.project", &name);
            let generated = unit.generate();
            let module = reencode(generated.module, encoding)?;
            ModuleAnalysis::build_budgeted(module, PreprocessConfig::default(), &budget)
                .map(|analysis| (analysis, generated.truth))
        })
    });
    let (analysis, truth) = outcome.and_then(|r| r)?;
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    // `scoped` yields the span forest recorded on this thread; the build
    // wraps itself in one `analysis.build` root with a child per stage.
    let stage_ms = spans
        .iter()
        .flat_map(|root| &root.children)
        .map(|s| (s.name.clone(), s.total_ms()))
        .collect();
    Ok(ProjectData {
        name,
        kloc,
        analysis,
        truth,
        build_ms,
        stage_ms,
    })
}

/// Builds `units` in parallel, isolating each one: a single unit's panic
/// or blown budget becomes a [`ProjectFailure`] while the rest of the
/// suite still loads.
fn load_units_checked(units: Vec<SuiteUnit>, budget: BudgetSpec) -> SuiteLoad {
    load_units_encoded(units, budget, Encoding::Direct)
}

/// [`load_units_checked`] with a frontend round-trip per project.
fn load_units_encoded(units: Vec<SuiteUnit>, budget: BudgetSpec, encoding: Encoding) -> SuiteLoad {
    PARALLELISM.set(manta_parallel::threads() as u64);
    let slots = manta_parallel::par_map(units, |unit| {
        build_unit_checked(&unit, budget, encoding).map_err(|error| {
            let name = unit.name().to_string();
            let degradation = Degradation::record(
                "eval.project",
                "remaining projects",
                DegradationKind::from_error(&error),
                format!("{name}: {error}"),
            );
            // Boxed so the worker closure's Err variant stays small.
            Box::new(ProjectFailure {
                name,
                error,
                degradation,
            })
        })
    });
    let mut load = SuiteLoad::default();
    for slot in slots {
        match slot {
            Ok(p) => load.projects.push(p),
            Err(f) => load.failures.push(*f),
        }
    }
    load
}

/// Builds `specs` in parallel, isolating each project: one project's
/// panic or blown budget becomes a [`ProjectFailure`] while the rest of
/// the suite still loads.
pub fn load_specs_checked(specs: Vec<ProjectSpec>, budget: BudgetSpec) -> SuiteLoad {
    load_units_checked(specs.into_iter().map(SuiteUnit::Project).collect(), budget)
}

/// [`load_specs_checked`], but every project's module is round-tripped
/// through a machine `encoding` and its registered frontend before the
/// substrates are built — the evaluation then measures what inference
/// sees from an actual binary rather than from generator IR. Because the
/// dual emitter and both lifters are deterministic and parity-tested,
/// results are bit-identical across all three encodings.
pub fn load_specs_encoded(
    specs: Vec<ProjectSpec>,
    budget: BudgetSpec,
    encoding: Encoding,
) -> SuiteLoad {
    load_units_encoded(
        specs.into_iter().map(SuiteUnit::Project).collect(),
        budget,
        encoding,
    )
}

fn build_many(units: Vec<SuiteUnit>) -> Vec<ProjectData> {
    let load = load_units_checked(units, BudgetSpec::default());
    if let Some(f) = load.failures.first() {
        panic!("project {} failed to build: {}", f.name, f.error);
    }
    load.projects
}

/// Generates and analyzes a whole suite, panicking on the first build
/// failure (the historical all-or-nothing contract).
pub fn load_suite(suite: Suite) -> Vec<ProjectData> {
    build_many(suite.units())
}

/// Fault-tolerant variant of [`load_suite`].
pub fn load_suite_checked(suite: Suite, budget: BudgetSpec) -> SuiteLoad {
    load_units_checked(suite.units(), budget)
}

/// Generates and analyzes the 14-project suite.
pub fn load_projects() -> Vec<ProjectData> {
    load_suite(Suite::Projects)
}

/// Fault-tolerant variant of [`load_projects`].
pub fn load_projects_checked(budget: BudgetSpec) -> SuiteLoad {
    load_suite_checked(Suite::Projects, budget)
}

/// Generates and analyzes the 104-binary coreutils-like suite.
pub fn load_coreutils() -> Vec<ProjectData> {
    load_suite(Suite::Coreutils)
}

/// Fault-tolerant variant of [`load_coreutils`].
pub fn load_coreutils_checked(budget: BudgetSpec) -> SuiteLoad {
    load_suite_checked(Suite::Coreutils, budget)
}

/// Generates and analyzes the nine firmware images.
pub fn load_firmware() -> Vec<ProjectData> {
    load_suite(Suite::Firmware)
}

/// Fault-tolerant variant of [`load_firmware`].
pub fn load_firmware_checked(budget: BudgetSpec) -> SuiteLoad {
    load_suite_checked(Suite::Firmware, budget)
}

/// Renders the per-project, per-stage substrate cost table that replaces
/// the old single `build_ms` column.
pub fn stage_breakdown_table(projects: &[ProjectData]) -> String {
    let mut table = crate::table::TextTable::new(&[
        "project",
        "preprocess ms",
        "callgraph ms",
        "pointsto ms",
        "ddg ms",
        "total ms",
    ]);
    for p in projects {
        table.row(vec![
            p.name.clone(),
            format!("{:.2}", p.stage("preprocess")),
            format!("{:.2}", p.stage("callgraph")),
            format!("{:.2}", p.stage("pointsto")),
            format!("{:.2}", p.stage("ddg")),
            format!("{:.2}", p.build_ms),
        ]);
    }
    table.render()
}

/// Renders the per-project solver-shape table: the constraint-graph and
/// worklist introspection the delta points-to solver records, plus a
/// suite-wide total row. Complements [`stage_breakdown_table`] (wall
/// time) with *why* — graph size, SCC collapses, iteration counts and
/// the largest points-to set each solve reached.
pub fn solver_shape_table(projects: &[ProjectData]) -> String {
    let mut table = crate::table::TextTable::new(&[
        "project",
        "pts nodes",
        "pts edges",
        "scc merges",
        "worklist iters",
        "peak |pts|",
    ]);
    let mut total = [0usize; 5];
    for p in projects {
        let pt = &p.analysis.pointsto;
        let cells = [
            pt.constraint_nodes,
            pt.constraint_edges,
            pt.scc_merges,
            pt.iterations,
            pt.peak_pts,
        ];
        for (t, c) in total.iter_mut().zip(cells) {
            *t += c;
        }
        let mut row = vec![p.name.clone()];
        row.extend(cells.iter().map(|c| c.to_string()));
        table.row(row);
    }
    let mut row = vec!["TOTAL".to_string()];
    // Peak cardinality aggregates as a max, not a sum.
    total[4] = projects
        .iter()
        .map(|p| p.analysis.pointsto.peak_pts)
        .max()
        .unwrap_or(0);
    row.extend(total.iter().map(|t| t.to_string()));
    table.row(row);
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_workloads::PhenomenonMix;
    use std::sync::Mutex;

    /// Serializes the tests sharing the process-global fault plan (and
    /// the "beta" project name one of them arms a fault on).
    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tiny_specs() -> Vec<ProjectSpec> {
        ["alpha", "beta", "gamma"]
            .iter()
            .enumerate()
            .map(|(i, name)| ProjectSpec {
                name: (*name).to_string(),
                kloc: 1.0,
                functions: 4,
                mix: PhenomenonMix::balanced(),
                seed: 11 + i as u64,
            })
            .collect()
    }

    #[test]
    fn checked_load_builds_everything_unconstrained() {
        let _l = fault_lock();
        let load = load_specs_checked(tiny_specs(), BudgetSpec::default());
        assert!(load.is_clean(), "{:?}", load.failures);
        assert_eq!(load.projects.len(), 3);
        assert_eq!(load.projects[0].name, "alpha");
    }

    #[test]
    fn injected_panic_in_one_project_spares_the_rest() {
        let _l = fault_lock();
        use manta_resilience::{Fault, FaultArming, FaultPlan};
        let _guard = FaultPlan::new()
            .arm("eval.project:beta", Fault::Panic, FaultArming::Always)
            .install();
        let load = load_specs_checked(tiny_specs(), BudgetSpec::default());
        assert_eq!(load.projects.len(), 2, "alpha and gamma must survive");
        assert_eq!(load.failures.len(), 1);
        let f = &load.failures[0];
        assert_eq!(f.name, "beta");
        assert_eq!(f.degradation.kind, DegradationKind::InjectedFault);
        assert!(matches!(f.error, MantaError::Panic { .. }), "{:?}", f.error);
    }

    #[test]
    fn zero_fuel_budget_fails_every_project_gracefully() {
        let _l = fault_lock();
        let budget = BudgetSpec {
            fuel: Some(0),
            deadline_ms: None,
        };
        let load = load_specs_checked(tiny_specs(), budget);
        assert!(load.projects.is_empty());
        assert_eq!(load.failures.len(), 3);
        for f in &load.failures {
            assert!(
                matches!(f.error, MantaError::Budget { .. }),
                "{:?}",
                f.error
            );
            assert_eq!(f.degradation.kind, DegradationKind::BudgetFuel);
        }
    }

    #[test]
    fn loads_firmware_suite() {
        let fw = load_firmware();
        assert_eq!(fw.len(), 9);
        assert!(fw.iter().all(|p| !p.truth.bugs.is_empty()));
    }

    #[test]
    fn builds_capture_stage_breakdown() {
        let fw = load_firmware();
        for p in &fw {
            let stages: Vec<&str> = p.stage_ms.iter().map(|(n, _)| n.as_str()).collect();
            for expect in ["preprocess", "callgraph", "pointsto", "ddg"] {
                assert!(
                    stages.contains(&expect),
                    "{} missing {expect}: {stages:?}",
                    p.name
                );
            }
        }
        let table = stage_breakdown_table(&fw);
        assert!(table.contains("pointsto ms"), "{table}");
    }

    #[test]
    fn solver_shape_table_reports_nonzero_graphs() {
        let _l = fault_lock();
        let load = load_specs_checked(tiny_specs(), BudgetSpec::default());
        assert!(load.is_clean(), "{:?}", load.failures);
        let table = solver_shape_table(&load.projects);
        for col in ["pts nodes", "scc merges", "worklist iters", "peak |pts|"] {
            assert!(table.contains(col), "missing `{col}`:\n{table}");
        }
        assert!(table.contains("TOTAL"), "{table}");
        // Every generated project exercises the solver: the total node
        // and iteration counts must be nonzero.
        let total_line = table.lines().last().unwrap();
        let cells: Vec<&str> = total_line.split_whitespace().collect();
        assert_eq!(cells.len(), 6, "{total_line}");
        assert!(cells[1].parse::<usize>().unwrap() > 0, "{total_line}");
        assert!(cells[4].parse::<usize>().unwrap() > 0, "{total_line}");
    }
}
