//! Suite loading: generate workloads and build their module analyses,
//! in parallel across projects.

use std::time::Instant;

use manta_analysis::ModuleAnalysis;
use manta_workloads::{
    coreutils_suite, firmware_suite, generate_firmware, project_suite, GroundTruth, ProjectSpec,
};

/// A generated, analyzed project ready for experiments.
#[derive(Debug)]
pub struct ProjectData {
    /// The project name.
    pub name: String,
    /// Nominal KLoC label.
    pub kloc: f64,
    /// The prepared analysis (preprocessing, points-to, DDG).
    pub analysis: ModuleAnalysis,
    /// The scoring oracle.
    pub truth: GroundTruth,
    /// Wall time to generate + analyze, in milliseconds.
    pub build_ms: f64,
}

fn build_one(name: String, kloc: f64, module: manta_ir::Module, truth: GroundTruth) -> ProjectData {
    let start = Instant::now();
    let analysis = ModuleAnalysis::build(module);
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    ProjectData { name, kloc, analysis, truth, build_ms }
}

fn build_many(specs: Vec<ProjectSpec>) -> Vec<ProjectData> {
    let mut out: Vec<Option<ProjectData>> = Vec::with_capacity(specs.len());
    out.resize_with(specs.len(), || None);
    let slots = parking_lot::Mutex::new(&mut out);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let work = parking_lot::Mutex::new(specs.into_iter().enumerate().collect::<Vec<_>>());
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(8) {
            scope.spawn(|_| loop {
                let job = work.lock().pop();
                let Some((idx, spec)) = job else { break };
                let generated = spec.generate();
                let data = build_one(spec.name.clone(), spec.kloc, generated.module, generated.truth);
                slots.lock()[idx] = Some(data);
            });
        }
    })
    .expect("suite build threads");
    out.into_iter().map(|d| d.expect("all projects built")).collect()
}

/// Generates and analyzes the 14-project suite.
pub fn load_projects() -> Vec<ProjectData> {
    build_many(project_suite())
}

/// Generates and analyzes the 104-binary coreutils-like suite.
pub fn load_coreutils() -> Vec<ProjectData> {
    build_many(coreutils_suite())
}

/// Generates and analyzes the nine firmware images.
pub fn load_firmware() -> Vec<ProjectData> {
    firmware_suite()
        .into_iter()
        .map(|spec| {
            let g = generate_firmware(&spec);
            build_one(spec.name.clone(), 0.0, g.module, g.truth)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_firmware_suite() {
        let fw = load_firmware();
        assert_eq!(fw.len(), 9);
        assert!(fw.iter().all(|p| !p.truth.bugs.is_empty()));
    }
}
