//! Suite loading: generate workloads and build their module analyses,
//! in parallel across projects, with a per-stage telemetry breakdown.

use std::sync::Mutex;
use std::time::Instant;

use manta_analysis::ModuleAnalysis;
use manta_telemetry::Counter;
use manta_workloads::{
    coreutils_suite, firmware_suite, generate_firmware, project_suite, GroundTruth, ProjectSpec,
};

/// Worker threads chosen by the most recent [`build_many`]-based load.
static PARALLELISM: Counter = Counter::new("eval.parallelism");

/// A generated, analyzed project ready for experiments.
#[derive(Debug)]
pub struct ProjectData {
    /// The project name.
    pub name: String,
    /// Nominal KLoC label.
    pub kloc: f64,
    /// The prepared analysis (preprocessing, points-to, DDG).
    pub analysis: ModuleAnalysis,
    /// The scoring oracle.
    pub truth: GroundTruth,
    /// Wall time to generate + analyze, in milliseconds.
    pub build_ms: f64,
    /// Per-stage build breakdown `(stage, wall ms)` captured by the
    /// telemetry spans inside [`ModuleAnalysis::build`]: `preprocess`,
    /// `callgraph`, `pointsto`, `ddg`.
    pub stage_ms: Vec<(String, f64)>,
}

impl ProjectData {
    /// Wall milliseconds of one named build stage (0 if absent).
    pub fn stage(&self, name: &str) -> f64 {
        self.stage_ms
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ms)| ms)
            .unwrap_or(0.0)
    }
}

fn build_one(name: String, kloc: f64, module: manta_ir::Module, truth: GroundTruth) -> ProjectData {
    let start = Instant::now();
    let (analysis, spans) = manta_telemetry::scoped(|| ModuleAnalysis::build(module));
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    // `scoped` yields the span forest recorded on this thread; the build
    // wraps itself in one `analysis.build` root with a child per stage.
    let stage_ms = spans
        .iter()
        .flat_map(|root| &root.children)
        .map(|s| (s.name.clone(), s.total_ms()))
        .collect();
    ProjectData {
        name,
        kloc,
        analysis,
        truth,
        build_ms,
        stage_ms,
    }
}

fn build_many(specs: Vec<ProjectSpec>) -> Vec<ProjectData> {
    let mut out: Vec<Option<ProjectData>> = Vec::with_capacity(specs.len());
    out.resize_with(specs.len(), || None);
    let slots = Mutex::new(&mut out);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    PARALLELISM.set(threads as u64);
    let work = Mutex::new(specs.into_iter().enumerate().collect::<Vec<_>>());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = work.lock().expect("work queue").pop();
                let Some((idx, spec)) = job else { break };
                let generated = spec.generate();
                let data = build_one(
                    spec.name.clone(),
                    spec.kloc,
                    generated.module,
                    generated.truth,
                );
                slots.lock().expect("result slots")[idx] = Some(data);
            });
        }
    });
    out.into_iter()
        .map(|d| d.expect("all projects built"))
        .collect()
}

/// Generates and analyzes the 14-project suite.
pub fn load_projects() -> Vec<ProjectData> {
    build_many(project_suite())
}

/// Generates and analyzes the 104-binary coreutils-like suite.
pub fn load_coreutils() -> Vec<ProjectData> {
    build_many(coreutils_suite())
}

/// Generates and analyzes the nine firmware images.
pub fn load_firmware() -> Vec<ProjectData> {
    firmware_suite()
        .into_iter()
        .map(|spec| {
            let g = generate_firmware(&spec);
            build_one(spec.name.clone(), 0.0, g.module, g.truth)
        })
        .collect()
}

/// Renders the per-project, per-stage substrate cost table that replaces
/// the old single `build_ms` column.
pub fn stage_breakdown_table(projects: &[ProjectData]) -> String {
    let mut table = crate::table::TextTable::new(&[
        "project",
        "preprocess ms",
        "callgraph ms",
        "pointsto ms",
        "ddg ms",
        "total ms",
    ]);
    for p in projects {
        table.row(vec![
            p.name.clone(),
            format!("{:.2}", p.stage("preprocess")),
            format!("{:.2}", p.stage("callgraph")),
            format!("{:.2}", p.stage("pointsto")),
            format!("{:.2}", p.stage("ddg")),
            format!("{:.2}", p.build_ms),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_firmware_suite() {
        let fw = load_firmware();
        assert_eq!(fw.len(), 9);
        assert!(fw.iter().all(|p| !p.truth.bugs.is_empty()));
    }

    #[test]
    fn builds_capture_stage_breakdown() {
        let fw = load_firmware();
        for p in &fw {
            let stages: Vec<&str> = p.stage_ms.iter().map(|(n, _)| n.as_str()).collect();
            for expect in ["preprocess", "callgraph", "pointsto", "ddg"] {
                assert!(
                    stages.contains(&expect),
                    "{} missing {expect}: {stages:?}",
                    p.name
                );
            }
        }
        let table = stage_breakdown_table(&fw);
        assert!(table.contains("pointsto ms"), "{table}");
    }
}
