//! Cache-aware suite evaluation.
//!
//! A warm evaluation run should not regenerate, re-analyze, or re-infer
//! a project whose spec has not changed. This module persists one
//! [`EvalRow`] per project in the [`AnalysisCache`] under the `"row"`
//! stage, keyed by the *spec fingerprint* (the content hash of every
//! field that feeds the deterministic generator) and the inference
//! config hash. On a hit the entire per-project pipeline is skipped; on
//! a miss the project runs through the normal fault-isolated loader and
//! the freshly computed row is written back.
//!
//! [`run_suite`] is the one entrypoint: it takes an [`Engine`] and uses
//! its config, budget, strictness, and attached cache (an engine
//! without a cache evaluates everything fresh).
//!
//! Rows contain only deterministic quantities (scored counts, class
//! counts, fingerprints) — never wall times — so a warm run is
//! bit-identical to the cold run that populated it, at any thread
//! count. Degraded results are recomputed rather than persisted, and
//! any corrupt row entry is discarded with a
//! [`DegradationKind::StoreCorruption`] record and recomputed.

use manta::{AnalysisCache, ClassCounts, Engine, MantaConfig};
use manta_resilience::{BudgetSpec, Degradation, DegradationKind};
use manta_store::{ByteReader, ByteWriter, DecodeError, Fingerprint, Key};
use manta_workloads::ProjectSpec;

use crate::metrics::{score_params, PrScore};
use crate::runner::{load_specs_checked, ProjectData, ProjectFailure};

/// Bump when [`EvalRow`]'s byte layout changes; stale rows then miss
/// instead of decoding garbage.
const ROW_CODEC_VERSION: u32 = 1;

/// Content hash of a [`ProjectSpec`]: every field that influences the
/// deterministic generator, with floats hashed by bit pattern. Two
/// specs with equal fingerprints generate byte-identical modules and
/// ground truth.
#[must_use]
pub fn spec_fingerprint(spec: &ProjectSpec) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_str("manta-eval.spec");
    fp.write_str(&spec.name);
    fp.write_u64(spec.kloc.to_bits());
    fp.write_usize(spec.functions);
    fp.write_u64(spec.seed);
    for x in [
        spec.mix.local_reveal,
        spec.mix.interproc_reveal,
        spec.mix.poly_shared,
        spec.mix.branch_cast,
        spec.mix.unmodeled,
        spec.mix.wrong_int,
        spec.mix.callsite_cast,
        spec.mix.numeric_abstract,
        spec.mix.union_rate,
        spec.mix.stack_recycle_rate,
        spec.mix.icall_rate,
        spec.mix.loop_rate,
        spec.mix.struct_ptr_rate,
    ] {
        fp.write_u64(x.to_bits());
    }
    fp.finish()
}

/// The deterministic per-project evaluation outcome persisted by
/// [`run_suite_cached`]. Contains no wall times: a row served warm is
/// bit-identical to the row computed cold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalRow {
    /// The project name.
    pub name: String,
    /// Fingerprint of the generated module's canonical text (ties the
    /// row back to the exact program it scored).
    pub module_fp: u64,
    /// Function count of the generated module.
    pub functions: usize,
    /// Parameter-type precision/recall counts against ground truth.
    pub params: PrScore,
    /// Final `|V_P|/|V_O|/|V_U|` classification counts.
    pub counts: ClassCounts,
}

fn encode_row(row: &EvalRow) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(ROW_CODEC_VERSION)
        .str(&row.name)
        .u64(row.module_fp)
        .usize(row.functions)
        .usize(row.params.correct)
        .usize(row.params.included)
        .usize(row.params.total)
        .usize(row.counts.precise)
        .usize(row.counts.over)
        .usize(row.counts.unknown);
    w.finish()
}

fn bad(context: &'static str) -> DecodeError {
    DecodeError { context, offset: 0 }
}

fn dec_count(r: &mut ByteReader<'_>, context: &'static str) -> Result<usize, DecodeError> {
    usize::try_from(r.u64(context)?).map_err(|_| bad(context))
}

fn decode_row(payload: &[u8]) -> Result<EvalRow, DecodeError> {
    let mut r = ByteReader::new(payload);
    let version = r.u32("row.version")?;
    if version != ROW_CODEC_VERSION {
        return Err(bad("row.version"));
    }
    let name = r.str("row.name")?.to_string();
    let module_fp = r.u64("row.module_fp")?;
    let functions = dec_count(&mut r, "row.functions")?;
    let params = PrScore {
        correct: dec_count(&mut r, "row.params.correct")?,
        included: dec_count(&mut r, "row.params.included")?,
        total: dec_count(&mut r, "row.params.total")?,
    };
    let counts = ClassCounts {
        precise: dec_count(&mut r, "row.counts.precise")?,
        over: dec_count(&mut r, "row.counts.over")?,
        unknown: dec_count(&mut r, "row.counts.unknown")?,
    };
    r.expect_end("row.end")?;
    Ok(EvalRow {
        name,
        module_fp,
        functions,
        params,
        counts,
    })
}

/// Scores one freshly built project into its deterministic row.
#[must_use]
pub fn row_for(project: &ProjectData, result: &manta::InferenceResult) -> EvalRow {
    let params = score_params(&project.analysis, &project.truth, |func, index| {
        let p = *project
            .analysis
            .module()
            .function(func)
            .params()
            .get(index)?;
        result
            .interval(manta_analysis::VarRef::new(func, p))
            .cloned()
    });
    EvalRow {
        name: project.name.clone(),
        module_fp: manta::cache::module_fingerprint(project.analysis.module()),
        functions: project.analysis.module().functions().count(),
        params,
        counts: result.final_counts(),
    }
}

/// The outcome of a cache-aware suite evaluation.
#[derive(Debug, Default)]
pub struct CachedSuite {
    /// One row per project that produced a result, in suite order —
    /// served from cache or computed fresh.
    pub rows: Vec<EvalRow>,
    /// Projects that failed to build (never cached).
    pub failures: Vec<ProjectFailure>,
    /// Projects whose generation/analysis/inference was skipped because
    /// their row was served from the cache.
    pub skipped_builds: usize,
    /// Degradations recorded against the cache during this run
    /// (corrupt entries discarded, store recovered on open).
    pub degradations: Vec<Degradation>,
}

impl CachedSuite {
    /// Suite-total parameter score across all rows.
    #[must_use]
    pub fn total_params(&self) -> PrScore {
        let mut total = PrScore::default();
        for row in &self.rows {
            total.merge(row.params);
        }
        total
    }

    /// Renders the rows as a deterministic multi-line summary, suitable
    /// for byte-for-byte cold-vs-warm comparison.
    #[must_use]
    pub fn render_rows(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{} fp={:016x} funcs={} correct={} included={} total={} P={} O={} U={}\n",
                r.name,
                r.module_fp,
                r.functions,
                r.params.correct,
                r.params.included,
                r.params.total,
                r.counts.precise,
                r.counts.over,
                r.counts.unknown,
            ));
        }
        out
    }
}

fn row_key(spec: &ProjectSpec, config: &MantaConfig, budget: BudgetSpec) -> Key {
    Key::new(
        "row",
        spec_fingerprint(spec),
        manta::cache::config_hash(config, budget.fuel),
    )
}

/// Evaluates `specs` through `engine`: unchanged projects are served
/// from the engine's cache (when one is attached) and only the misses
/// are generated, analyzed, and inferred.
///
/// Cache policy is the engine's: an active fault-injection plan, a
/// wall-clock deadline, or a strict engine bypasses the cache entirely
/// (results would not be deterministic), and degraded results are
/// recomputed rather than persisted. A strict engine's inference
/// failures land in [`CachedSuite::failures`] instead of aborting the
/// suite.
pub fn run_suite(specs: Vec<ProjectSpec>, engine: &Engine) -> CachedSuite {
    run_suite_impl(specs, engine, engine.cache())
}

/// Evaluates `specs` under `config`, serving unchanged projects from
/// `cache` and building only the misses.
#[deprecated(
    note = "build an `Engine` with `EngineBuilder::budget` + `EngineBuilder::cache`/`cache_dir` \
            and call `run_suite`"
)]
pub fn run_suite_cached(
    specs: Vec<ProjectSpec>,
    config: MantaConfig,
    budget: BudgetSpec,
    cache: &AnalysisCache,
) -> CachedSuite {
    let engine = Engine::builder()
        .config(config)
        .budget(budget)
        .build()
        .expect("cacheless engine build is infallible");
    run_suite_impl(specs, &engine, Some(cache))
}

fn run_suite_impl(
    specs: Vec<ProjectSpec>,
    engine: &Engine,
    cache: Option<&AnalysisCache>,
) -> CachedSuite {
    let config = *engine.config();
    let budget = *engine.budget();
    let (load, hits) = load_specs_cached(specs, budget, cache, &config, engine.strict());
    let mut suite = CachedSuite {
        skipped_builds: load.skipped_parses,
        degradations: load.degradations,
        ..CachedSuite::default()
    };
    suite.failures = load.failures;

    // Score the projects that actually built, persisting their rows.
    // Module sync (dependency-aware invalidation) happens inside the
    // engine's cached path.
    let bypass = manta_resilience::plan_active() || budget.deadline_ms.is_some() || engine.strict();
    let mut fresh: Vec<(usize, EvalRow)> = Vec::new();
    for (order, project) in &load.projects {
        let outcome = match cache {
            Some(c) => engine.analyze_with_cache(&project.analysis, c),
            None => engine.analyze(&project.analysis),
        };
        let result = match outcome {
            Ok(r) => r,
            Err(error) => {
                // Only strict engines error; record the project and move on.
                let degradation = Degradation::record(
                    "eval.project",
                    "remaining projects",
                    DegradationKind::from_error(&error),
                    format!("{}: {error}", project.name),
                );
                suite.failures.push(ProjectFailure {
                    name: project.name.clone(),
                    error,
                    degradation,
                });
                continue;
            }
        };
        let row = row_for(project, &result);
        if !bypass && !result.is_degraded() {
            if let (Some(c), Some((_, key))) =
                (cache, load.spec_keys.iter().find(|(i, _)| i == order))
            {
                let _ = c.store().put(key, &encode_row(&row));
            }
        }
        fresh.push((*order, row));
    }

    // Interleave cached and fresh rows back into suite order.
    let mut all: Vec<(usize, EvalRow)> = hits;
    all.extend(fresh);
    all.sort_by_key(|(i, _)| *i);
    suite.rows = all.into_iter().map(|(_, r)| r).collect();
    if let Some(c) = cache {
        suite.degradations.extend(c.take_degradations());
        c.publish_telemetry();
    }
    suite
}

/// A [`SuiteLoad`] whose projects carry their original suite index, plus
/// the row keys of the specs that missed (so fresh rows can be written
/// back under the right key).
#[derive(Debug, Default)]
struct IndexedLoad {
    projects: Vec<(usize, ProjectData)>,
    failures: Vec<ProjectFailure>,
    spec_keys: Vec<(usize, Key)>,
    skipped_parses: usize,
    degradations: Vec<Degradation>,
}

/// Splits `specs` into cache hits (decoded rows) and misses (built via
/// [`load_specs_checked`]), recording the number of skipped parses.
fn load_specs_cached(
    specs: Vec<ProjectSpec>,
    budget: BudgetSpec,
    cache: Option<&AnalysisCache>,
    config: &MantaConfig,
    strict: bool,
) -> (IndexedLoad, Vec<(usize, EvalRow)>) {
    let bypass = manta_resilience::plan_active() || budget.deadline_ms.is_some() || strict;
    let mut hits: Vec<(usize, EvalRow)> = Vec::new();
    let mut misses: Vec<(usize, ProjectSpec)> = Vec::new();
    let mut spec_keys: Vec<(usize, Key)> = Vec::new();
    let mut degradations: Vec<Degradation> = Vec::new();
    for (i, spec) in specs.into_iter().enumerate() {
        let cache = match cache {
            Some(c) if !bypass => c,
            _ => {
                misses.push((i, spec));
                continue;
            }
        };
        let key = row_key(&spec, config, budget);
        match cache.store().get(&key).map(|p| decode_row(&p)) {
            Some(Ok(row)) => hits.push((i, row)),
            Some(Err(e)) => {
                cache.store().invalidate(&key);
                degradations.push(Degradation::record(
                    "store.row",
                    "recomputing",
                    DegradationKind::StoreCorruption,
                    format!("row entry {key}: {e}"),
                ));
                spec_keys.push((i, key));
                misses.push((i, spec));
            }
            None => {
                spec_keys.push((i, key));
                misses.push((i, spec));
            }
        }
    }

    let skipped = hits.len();
    // Suite names are unique; remember each miss's original index so
    // built projects (whose relative order can shift when some specs
    // fail) can be slotted back into suite order.
    let index_of: std::collections::HashMap<String, usize> = misses
        .iter()
        .map(|(i, spec)| (spec.name.clone(), *i))
        .collect();
    let to_build: Vec<ProjectSpec> = misses.into_iter().map(|(_, spec)| spec).collect();
    let mut built = load_specs_checked(to_build, budget);
    built.skipped_parses = skipped;

    let projects = built
        .projects
        .into_iter()
        .map(|p| {
            let i = index_of.get(&p.name).copied().unwrap_or(usize::MAX);
            (i, p)
        })
        .collect();
    let load = IndexedLoad {
        projects,
        failures: built.failures,
        spec_keys,
        skipped_parses: skipped,
        degradations,
    };
    (load, hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_workloads::PhenomenonMix;
    use std::sync::Arc;

    fn engine_for(cache: &Arc<AnalysisCache>) -> Engine {
        Engine::builder()
            .config(MantaConfig::full())
            .cache(cache.clone())
            .build()
            .expect("prebuilt cache: build cannot fail")
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("manta-evalcache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tiny_specs() -> Vec<ProjectSpec> {
        ["alpha", "beta", "gamma"]
            .iter()
            .enumerate()
            .map(|(i, name)| ProjectSpec {
                name: (*name).to_string(),
                kloc: 1.0,
                functions: 4,
                mix: PhenomenonMix::balanced(),
                seed: 101 + i as u64,
            })
            .collect()
    }

    #[test]
    fn warm_run_skips_builds_and_matches_cold_bit_for_bit() {
        let dir = temp_dir("warm");
        let cache = Arc::new(AnalysisCache::open(&dir).unwrap());
        let engine = engine_for(&cache);
        let cold = run_suite(tiny_specs(), &engine);
        assert_eq!(cold.skipped_builds, 0);
        assert_eq!(cold.rows.len(), 3);

        let warm = run_suite(tiny_specs(), &engine);
        assert_eq!(warm.skipped_builds, 3, "all projects must be served warm");
        assert_eq!(warm.rows, cold.rows);
        assert_eq!(warm.render_rows(), cold.render_rows());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_edit_rebuilds_only_the_edited_project() {
        let dir = temp_dir("edit");
        let cache = Arc::new(AnalysisCache::open(&dir).unwrap());
        let engine = engine_for(&cache);
        let cold = run_suite(tiny_specs(), &engine);

        let mut edited = tiny_specs();
        edited[1].seed ^= 0xffff;
        let warm = run_suite(edited, &engine);
        assert_eq!(warm.skipped_builds, 2, "only the edited spec rebuilds");
        assert_eq!(warm.rows.len(), 3);
        assert_eq!(warm.rows[0], cold.rows[0]);
        assert_eq!(warm.rows[2], cold.rows[2]);
        assert_ne!(warm.rows[1].module_fp, cold.rows[1].module_fp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_row_entry_degrades_and_recomputes() {
        let dir = temp_dir("corrupt");
        let cache = Arc::new(AnalysisCache::open(&dir).unwrap());
        let engine = engine_for(&cache);
        let cold = run_suite(tiny_specs(), &engine);

        // Replace one row entry with a checksum-valid but undecodable
        // payload (wrong codec bytes).
        let key = row_key(
            &tiny_specs()[0],
            &MantaConfig::full(),
            BudgetSpec::default(),
        );
        cache.store().put(&key, b"not a row").unwrap();

        let warm = run_suite(tiny_specs(), &engine);
        assert_eq!(warm.rows, cold.rows, "recomputed row matches");
        assert!(
            warm.degradations
                .iter()
                .any(|d| d.kind == DegradationKind::StoreCorruption),
            "corrupt row must surface a StoreCorruption degradation"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_fingerprint_tracks_every_generator_input() {
        let base = tiny_specs().remove(0);
        let fp = spec_fingerprint(&base);
        let mut seed = base.clone();
        seed.seed += 1;
        assert_ne!(spec_fingerprint(&seed), fp);
        let mut funcs = base.clone();
        funcs.functions += 1;
        assert_ne!(spec_fingerprint(&funcs), fp);
        let mut mix = base.clone();
        mix.mix.icall_rate += 0.001;
        assert_ne!(spec_fingerprint(&mix), fp);
        assert_eq!(spec_fingerprint(&base.clone()), fp);
    }

    #[test]
    fn row_codec_roundtrips() {
        let row = EvalRow {
            name: "p".to_string(),
            module_fp: 0xdead_beef,
            functions: 7,
            params: PrScore {
                correct: 3,
                included: 5,
                total: 9,
            },
            counts: ClassCounts {
                precise: 10,
                over: 2,
                unknown: 1,
            },
        };
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
        assert!(decode_row(&encode_row(&row)[..4]).is_err());
    }
}
