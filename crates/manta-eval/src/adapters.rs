//! Adapters presenting Manta's ablations through the common
//! [`TypeTool`] interface.

use manta::{Manta, MantaConfig, Sensitivity, TypeQuery};
use manta_analysis::{ModuleAnalysis, VarRef};
use manta_baselines::{ToolResult, TypeTool};
use manta_ir::ValueKind;

/// One Manta sensitivity configuration as a [`TypeTool`].
#[derive(Clone, Copy, Debug)]
pub struct MantaTool {
    /// The ablation to run.
    pub sensitivity: Sensitivity,
}

impl MantaTool {
    /// All four ablation columns in the paper's order.
    pub fn ablations() -> [MantaTool; 4] {
        [
            MantaTool {
                sensitivity: Sensitivity::Fi,
            },
            MantaTool {
                sensitivity: Sensitivity::Fs,
            },
            MantaTool {
                sensitivity: Sensitivity::FiFs,
            },
            MantaTool {
                sensitivity: Sensitivity::FiCsFs,
            },
        ]
    }
}

impl TypeTool for MantaTool {
    fn name(&self) -> &str {
        self.sensitivity.label()
    }

    fn infer(&self, analysis: &ModuleAnalysis) -> ToolResult {
        let result = Manta::new(MantaConfig::with_sensitivity(self.sensitivity)).infer(analysis);
        let mut out = ToolResult::default();
        for func in analysis.module().functions() {
            for (i, &p) in func.params().iter().enumerate() {
                let v = VarRef::new(func.id(), p);
                if let Some(interval) = result.var_interval(v) {
                    out.params.insert((func.id(), i), interval.clone());
                }
            }
            for (v, data) in func.values() {
                if matches!(data.kind, ValueKind::Const(_)) {
                    continue;
                }
                let vr = VarRef::new(func.id(), v);
                if let Some(interval) = result.var_interval(vr) {
                    out.vars.insert(vr, interval.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::{ModuleBuilder, Width};

    #[test]
    fn adapter_exposes_param_intervals() {
        let mut mb = ModuleBuilder::new("m");
        let strlen = mb.extern_fn("strlen", &[], None);
        let (fid, mut fb) = mb.function("f", &[Width::W64], Some(Width::W64));
        let p = fb.param(0);
        let n = fb.call_extern(strlen, &[p], Some(Width::W64)).unwrap();
        fb.ret(Some(n));
        mb.finish_function(fb);
        let analysis = ModuleAnalysis::build(mb.finish());
        for tool in MantaTool::ablations() {
            let r = tool.infer(&analysis);
            assert!(r.usable());
            if tool.sensitivity != Sensitivity::Fs {
                assert!(
                    r.params
                        .get(&(fid, 0))
                        .map(|i| i.upper.is_pointer())
                        .unwrap_or(false),
                    "{} should type the strlen argument",
                    tool.name()
                );
            }
        }
    }
}
