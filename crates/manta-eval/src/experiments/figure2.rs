//! Figure 2: profiling data motivating the hybrid design.
//!
//! Over the 118-binary corpus (14 projects + 104 coreutils):
//!
//! * (a) what fraction of the variables a flow-/context-insensitive
//!   analysis over-approximates can a high-precision cascade refine to a
//!   precise singleton;
//! * (b) what fraction of the variables a flow-sensitive analysis leaves
//!   unknown does the low-precision analysis type precisely.

use manta::{Manta, MantaConfig, Sensitivity, VarClass};
use manta_analysis::VarRef;
use manta_ir::ValueKind;

use crate::runner::ProjectData;
use crate::table::{pct, TextTable};

/// Per-binary fractions.
#[derive(Clone, Debug)]
pub struct Figure2Row {
    /// Binary name.
    pub name: String,
    /// `V_O` size under FI.
    pub over_fi: usize,
    /// Of those, precisely refined by the full cascade.
    pub over_refined: usize,
    /// `V_U` size under standalone FS.
    pub unknown_fs: usize,
    /// Of those, precisely typed by FI.
    pub unknown_recovered: usize,
}

/// The reproduced Figure 2.
#[derive(Clone, Debug)]
pub struct Figure2Result {
    /// Per-binary rows.
    pub rows: Vec<Figure2Row>,
}

/// Runs the profiling over a corpus.
pub fn run(corpus: &[ProjectData]) -> Figure2Result {
    let mut rows = Vec::new();
    for p in corpus {
        let fi = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fi)).infer(&p.analysis);
        let fs = Manta::new(MantaConfig::with_sensitivity(Sensitivity::Fs)).infer(&p.analysis);
        let full =
            Manta::new(MantaConfig::with_sensitivity(Sensitivity::FiCsFs)).infer(&p.analysis);
        let mut row = Figure2Row {
            name: p.name.clone(),
            over_fi: 0,
            over_refined: 0,
            unknown_fs: 0,
            unknown_recovered: 0,
        };
        for func in p.analysis.module().functions() {
            for (value, data) in func.values() {
                if matches!(data.kind, ValueKind::Const(_)) {
                    continue;
                }
                let v = VarRef::new(func.id(), value);
                if fi.class_of(v) == VarClass::Over {
                    row.over_fi += 1;
                    if full.class_of(v) == VarClass::Precise {
                        row.over_refined += 1;
                    }
                }
                if fs.class_of(v) == VarClass::Unknown {
                    row.unknown_fs += 1;
                    if fi.class_of(v) == VarClass::Precise {
                        row.unknown_recovered += 1;
                    }
                }
            }
        }
        rows.push(row);
    }
    Figure2Result { rows }
}

impl Figure2Result {
    /// Mean fraction of FI-over-approximated variables refined by the
    /// high-precision cascade (the brown region of Figure 2a), percent.
    pub fn refined_fraction(&self) -> f64 {
        let (num, den): (usize, usize) = self
            .rows
            .iter()
            .fold((0, 0), |(n, d), r| (n + r.over_refined, d + r.over_fi));
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    }

    /// Mean fraction of FS-unknown variables precisely typed by the
    /// low-precision analysis (the brown region of Figure 2b), percent.
    pub fn recovered_fraction(&self) -> f64 {
        let (num, den): (usize, usize) = self.rows.iter().fold((0, 0), |(n, d), r| {
            (n + r.unknown_recovered, d + r.unknown_fs)
        });
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    }

    /// Renders the figure data.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "binary",
            "FI-over",
            "refined-by-high-prec",
            "FS-unknown",
            "recovered-by-low-prec",
        ]);
        for r in self.rows.iter().take(20) {
            t.row(vec![
                r.name.clone(),
                r.over_fi.to_string(),
                r.over_refined.to_string(),
                r.unknown_fs.to_string(),
                r.unknown_recovered.to_string(),
            ]);
        }
        format!(
            "Figure 2: profiling on {} binaries (first 20 rows shown)\n{}\n\
             (a) over-approximated vars refined by high precision: {}%\n\
             (b) unknown vars precisely typed by low precision:  {}%\n",
            self.rows.len(),
            t.render(),
            pct(self.refined_fraction()),
            pct(self.recovered_fraction()),
        )
    }
}
