//! Table 4: type-based indirect-call analysis — average indirect-call
//! targets (#AICT) and pruning precision per tool; Figure 11 (recall) is
//! derived from the same data.

use std::collections::BTreeMap;

use manta::{Manta, MantaConfig, Sensitivity, TypeQuery};
use manta_baselines::{DirtyLike, GhidraLike, RetdecLike, RetypdLike, TypeTool};
use manta_clients::{
    indirect_call_sites, resolve_targets_manta, resolve_targets_taucfi, resolve_targets_typearmor,
};
use manta_ir::FuncId;

use crate::metrics::{geomean, IcallScore};
use crate::runner::ProjectData;
use crate::table::{pct, TextTable};

/// One tool's cell for one project.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Cell {
    /// The score.
    Score(IcallScore),
    /// The feeding type inference did not finish / crashed.
    Unavailable,
}

/// The reproduced Table 4 (and the data for Figure 11).
#[derive(Clone, Debug)]
pub struct Table4Result {
    /// Tool column names (after the Source column).
    pub tools: Vec<String>,
    /// `(project, #AT, source AICT, cells)`.
    pub rows: Vec<(String, usize, f64, Vec<Cell>)>,
}

/// Runs the indirect-call experiment over the suite.
pub fn run(projects: &[ProjectData]) -> Table4Result {
    let tool_names: Vec<String> = vec![
        "Dirty".into(),
        "Ghidra".into(),
        "RetDec".into(),
        "Retypd".into(),
        "TypeArmor".into(),
        "tau-CFI".into(),
        "FI".into(),
        "FS".into(),
        "FI+FS".into(),
        "FI+CS+FS".into(),
    ];
    let mut rows = Vec::new();
    for p in projects {
        let analysis = &p.analysis;
        let module = analysis.module();
        let name_of = |f: FuncId| module.function(f).name().to_string();
        let at_count = module.address_taken_functions().len();

        // Match sites to ground-truth ordinals per host function. Loop
        // unrolling may duplicate sites; only the first `truth-count`
        // ordinals per host are scored (copy 0 preserves original order).
        let sites = indirect_call_sites(analysis);
        let mut ordinal: BTreeMap<FuncId, usize> = BTreeMap::new();
        let mut scored_sites = Vec::new();
        for site in &sites {
            let ord = {
                let e = ordinal.entry(site.func).or_insert(0);
                let v = *e;
                *e += 1;
                v
            };
            let host = name_of(site.func);
            if let Some(gt) = p.truth.icall_targets.get(&(host, ord)) {
                scored_sites.push((site.clone(), gt.clone()));
            }
        }
        if scored_sites.is_empty() {
            continue;
        }

        // Pre-compute each tool's resolver output.
        let mut cells: Vec<Cell> = Vec::with_capacity(tool_names.len());
        let baselines: Vec<Box<dyn TypeTool>> = vec![
            Box::new(DirtyLike::default()),
            Box::new(GhidraLike),
            Box::new(RetdecLike),
            Box::new(RetypdLike::default()),
        ];
        for tool in &baselines {
            let r = tool.infer(analysis);
            if !r.usable() {
                cells.push(Cell::Unavailable);
                continue;
            }
            let types = r.as_types();
            let mut score = IcallScore::default();
            for (site, gt) in &scored_sites {
                let targets: Vec<String> = resolve_targets_manta(analysis, &types, site)
                    .into_iter()
                    .map(name_of)
                    .collect();
                score.add_site(&targets, gt, at_count);
            }
            cells.push(Cell::Score(score));
        }
        // TypeArmor / τ-CFI.
        for arity_only in [true, false] {
            let mut score = IcallScore::default();
            for (site, gt) in &scored_sites {
                let targets: Vec<String> = if arity_only {
                    resolve_targets_typearmor(analysis, site)
                } else {
                    resolve_targets_taucfi(analysis, site)
                }
                .into_iter()
                .map(name_of)
                .collect();
                score.add_site(&targets, gt, at_count);
            }
            cells.push(Cell::Score(score));
        }
        // Manta ablations with full site sensitivity.
        for s in Sensitivity::ALL {
            let inference = Manta::new(MantaConfig::with_sensitivity(s)).infer(analysis);
            let q: &dyn TypeQuery = &inference;
            let mut score = IcallScore::default();
            for (site, gt) in &scored_sites {
                let targets: Vec<String> = resolve_targets_manta(analysis, q, site)
                    .into_iter()
                    .map(name_of)
                    .collect();
                score.add_site(&targets, gt, at_count);
            }
            cells.push(Cell::Score(score));
        }

        let source_aict = match cells.iter().find_map(|c| match c {
            Cell::Score(s) => Some(s.source_aict()),
            _ => None,
        }) {
            Some(v) => v,
            None => continue,
        };
        rows.push((p.name.clone(), at_count, source_aict, cells));
    }
    Table4Result {
        tools: tool_names,
        rows,
    }
}

impl Table4Result {
    /// Geometric-mean AICT across projects for a tool.
    pub fn geomean_aict(&self, tool: &str) -> Option<f64> {
        let idx = self.tools.iter().position(|t| t == tool)?;
        Some(geomean(self.rows.iter().filter_map(
            |(_, _, _, cells)| match cells[idx] {
                Cell::Score(s) => Some(s.aict()),
                _ => None,
            },
        )))
    }

    /// Geometric-mean pruning precision for a tool, percent.
    pub fn geomean_precision(&self, tool: &str) -> Option<f64> {
        let idx = self.tools.iter().position(|t| t == tool)?;
        Some(geomean(self.rows.iter().filter_map(
            |(_, _, _, cells)| match cells[idx] {
                Cell::Score(s) => Some(s.precision().max(0.1)),
                _ => None,
            },
        )))
    }

    /// Geometric-mean recall for a tool, percent (Figure 11's bars).
    pub fn geomean_recall(&self, tool: &str) -> Option<f64> {
        let idx = self.tools.iter().position(|t| t == tool)?;
        Some(geomean(self.rows.iter().filter_map(
            |(_, _, _, cells)| match cells[idx] {
                Cell::Score(s) => Some(s.recall().max(0.1)),
                _ => None,
            },
        )))
    }

    /// Geometric-mean source AICT.
    pub fn geomean_source_aict(&self) -> f64 {
        geomean(self.rows.iter().map(|(_, _, s, _)| *s))
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut header: Vec<&str> = vec!["Project", "#AT", "Source"];
        let owned: Vec<String> = self.tools.iter().map(|t| format!("{t} #AICT(P)")).collect();
        header.extend(owned.iter().map(String::as_str));
        let mut t = TextTable::new(&header);
        for (name, at, source, cells) in &self.rows {
            let mut row = vec![name.clone(), at.to_string(), format!("{source:.1}")];
            for c in cells {
                row.push(match c {
                    Cell::Score(s) => format!("{:.1} ({}%)", s.aict(), pct(s.precision())),
                    Cell::Unavailable => "Δ/‡".into(),
                });
            }
            t.row(row);
        }
        let mut row = vec![
            "Geomean".to_string(),
            String::new(),
            format!("{:.1}", self.geomean_source_aict()),
        ];
        for tool in &self.tools {
            row.push(format!(
                "{:.1} ({}%)",
                self.geomean_aict(tool).unwrap_or(0.0),
                pct(self.geomean_precision(tool).unwrap_or(0.0))
            ));
        }
        t.row(row);
        format!(
            "Table 4: type-based indirect-call analysis (#AICT, pruning precision)\n{}",
            t.render()
        )
    }
}
