//! Figure 11: geometric-mean recall of type-based indirect-call analysis
//! per tool (derived from the Table 4 data).

use crate::experiments::table4::Table4Result;
use crate::table::{pct, TextTable};

/// The reproduced Figure 11.
#[derive(Clone, Debug)]
pub struct Figure11Result {
    /// `(tool, geomean recall %)`.
    pub bars: Vec<(String, f64)>,
}

/// Derives recall bars from a Table 4 run.
pub fn run(table4: &Table4Result) -> Figure11Result {
    let bars = table4
        .tools
        .iter()
        .map(|t| (t.clone(), table4.geomean_recall(t).unwrap_or(0.0)))
        .collect();
    Figure11Result { bars }
}

impl Figure11Result {
    /// The recall of one tool.
    pub fn recall_of(&self, tool: &str) -> Option<f64> {
        self.bars.iter().find(|(t, _)| t == tool).map(|(_, r)| *r)
    }

    /// Renders the figure data.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["tool", "recall %"]);
        for (tool, r) in &self.bars {
            t.row(vec![tool.clone(), pct(*r)]);
        }
        format!(
            "Figure 11: recall of type-based indirect-call analysis\n{}",
            t.render()
        )
    }
}
