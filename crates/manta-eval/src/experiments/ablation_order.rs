//! §6.4 "Type Refinement Order" ablation: the paper argues that placing
//! the aggressive flow-sensitive stage *before* the context-sensitive one
//! loses types — "flow-sensitive refinement may result in the total loss of
//! its type if all the type hints happen to be unreachable on CFG". This
//! experiment measures precision/recall for FI+CS+FS (the paper's order)
//! against FI+FS+CS (reversed) and FI+FS.

use manta::{Manta, MantaConfig, Sensitivity};

use crate::metrics::{score_params, PrScore};
use crate::runner::ProjectData;
use crate::table::{pct, TextTable};

/// The ablation result.
#[derive(Clone, Debug)]
pub struct AblationOrderResult {
    /// `(order label, aggregate parameter score)`.
    pub scores: Vec<(String, PrScore)>,
}

/// Runs the three refinement orders over the suite.
pub fn run(projects: &[ProjectData]) -> AblationOrderResult {
    let orders = [Sensitivity::FiFs, Sensitivity::FiFsCs, Sensitivity::FiCsFs];
    let mut scores = Vec::new();
    for s in orders {
        let mut agg = PrScore::default();
        for p in projects {
            let result = Manta::new(MantaConfig::with_sensitivity(s)).infer(&p.analysis);
            agg.merge(score_params(&p.analysis, &p.truth, |f, i| {
                let func = p.analysis.module().function(f);
                func.params()
                    .get(i)
                    .and_then(|&v| result.interval(manta_analysis::VarRef::new(f, v)).cloned())
            }));
        }
        scores.push((s.label().to_string(), agg));
    }
    AblationOrderResult { scores }
}

impl AblationOrderResult {
    /// The score of one order.
    pub fn score_of(&self, label: &str) -> Option<PrScore> {
        self.scores
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }

    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["refinement order", "%Prec", "%Recl"]);
        for (label, s) in &self.scores {
            t.row(vec![label.clone(), pct(s.precision()), pct(s.recall())]);
        }
        format!(
            "Ablation (§6.4): refinement order — CS-before-FS vs reversed\n{}",
            t.render()
        )
    }
}
