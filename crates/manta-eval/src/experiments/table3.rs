//! Table 3: type-inference precision and recall on the project suite.

use manta_baselines::{DirtyLike, GhidraLike, RetdecLike, RetypdLike, ToolResult, TypeTool};

use crate::adapters::MantaTool;
use crate::metrics::{score_params, PrScore};
use crate::runner::ProjectData;
use crate::table::{pct, TextTable};

/// One table cell.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Cell {
    /// Precision/recall score.
    Pr(PrScore),
    /// Did not finish within budget (Δ).
    Timeout,
    /// Crashed (‡).
    Crash,
}

impl Cell {
    fn render(&self) -> (String, String) {
        match self {
            Cell::Pr(s) => (pct(s.precision()), pct(s.recall())),
            Cell::Timeout => ("Δ".into(), "Δ".into()),
            Cell::Crash => ("‡".into(), "‡".into()),
        }
    }
}

/// The reproduced Table 3.
#[derive(Clone, Debug)]
pub struct Table3Result {
    /// Tool column names.
    pub tools: Vec<String>,
    /// `(project, kloc, #params, one cell per tool)`.
    pub rows: Vec<(String, f64, usize, Vec<Cell>)>,
    /// Aggregate score per tool over projects where it finished.
    pub totals: Vec<Cell>,
}

/// The standard tool lineup: four baselines then the four Manta ablations.
pub fn standard_tools() -> Vec<Box<dyn TypeTool>> {
    let mut tools: Vec<Box<dyn TypeTool>> = vec![
        Box::new(DirtyLike::default()),
        Box::new(GhidraLike),
        Box::new(RetdecLike),
        Box::new(RetypdLike::default()),
    ];
    for t in MantaTool::ablations() {
        tools.push(Box::new(t));
    }
    tools
}

fn score_tool(project: &ProjectData, result: &ToolResult) -> Cell {
    if result.timed_out {
        return Cell::Timeout;
    }
    if result.crashed {
        return Cell::Crash;
    }
    Cell::Pr(score_params(&project.analysis, &project.truth, |f, i| {
        result.params.get(&(f, i)).cloned()
    }))
}

/// Runs Table 3 over the 14 projects plus the aggregated coreutils row.
pub fn run(projects: &[ProjectData], coreutils: &[ProjectData]) -> Table3Result {
    let tools = standard_tools();
    let tool_names: Vec<String> = tools.iter().map(|t| t.name().to_string()).collect();
    let mut rows = Vec::new();
    let mut totals: Vec<PrScore> = vec![PrScore::default(); tools.len()];

    let add_row = |name: String,
                   kloc: f64,
                   members: &[&ProjectData],
                   rows: &mut Vec<_>,
                   totals: &mut Vec<PrScore>| {
        let mut cells = Vec::with_capacity(tools.len());
        let params: usize = members.iter().map(|p| p.truth.param_count()).sum();
        for (ti, tool) in tools.iter().enumerate() {
            let mut agg = PrScore::default();
            let mut bad: Option<Cell> = None;
            for m in members {
                let r = tool.infer(&m.analysis);
                match score_tool(m, &r) {
                    Cell::Pr(s) => agg.merge(s),
                    other => bad = Some(other),
                }
            }
            let cell = bad.unwrap_or(Cell::Pr(agg));
            if let Cell::Pr(s) = cell {
                // Δ/‡ rows are excluded from a tool's total, as in the
                // paper.
                totals[ti].merge(s);
            }
            cells.push(cell);
        }
        rows.push((name, kloc, params, cells));
    };

    for p in projects {
        add_row(p.name.clone(), p.kloc, &[p], &mut rows, &mut totals);
    }
    if !coreutils.is_empty() {
        let members: Vec<&ProjectData> = coreutils.iter().collect();
        let kloc: f64 = coreutils.iter().map(|p| p.kloc).sum();
        add_row("coreutils".into(), kloc, &members, &mut rows, &mut totals);
    }

    Table3Result {
        tools: tool_names,
        rows,
        totals: totals.into_iter().map(Cell::Pr).collect(),
    }
}

impl Table3Result {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut header: Vec<&str> = vec!["Project", "KLoC", "#Params"];
        let owned: Vec<String> = self
            .tools
            .iter()
            .flat_map(|t| [format!("{t} %Prec"), format!("{t} %Recl")])
            .collect();
        header.extend(owned.iter().map(String::as_str));
        let mut t = TextTable::new(&header);
        for (name, kloc, params, cells) in &self.rows {
            let mut row = vec![name.clone(), format!("{kloc:.0}"), params.to_string()];
            for c in cells {
                let (p, r) = c.render();
                row.push(p);
                row.push(r);
            }
            t.row(row);
        }
        let mut row = vec!["Total".to_string(), String::new(), String::new()];
        for c in &self.totals {
            let (p, r) = c.render();
            row.push(p);
            row.push(r);
        }
        t.row(row);
        format!(
            "Table 3: type inference precision and recall\n{}",
            t.render()
        )
    }

    /// The total-row score for a tool by name.
    pub fn total_of(&self, tool: &str) -> Option<PrScore> {
        let idx = self.tools.iter().position(|t| t == tool)?;
        match self.totals[idx] {
            Cell::Pr(s) => Some(s),
            _ => None,
        }
    }
}
