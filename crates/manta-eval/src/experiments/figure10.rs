//! Figure 10: inference time and memory versus program size, with a
//! linear fit (the paper reports near-linear scaling).

use std::time::Instant;

use manta::{Manta, MantaConfig};
use manta_analysis::ModuleAnalysis;

use crate::runner::ProjectData;
use crate::table::TextTable;

/// One measured point.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Project name.
    pub name: String,
    /// Size proxy: total lifted instructions (the KLoC axis).
    pub insts: usize,
    /// Full-cascade inference wall time in milliseconds.
    pub infer_ms: f64,
    /// Estimated live analysis memory in MiB.
    pub mem_mib: f64,
}

/// The reproduced Figure 10.
#[derive(Clone, Debug)]
pub struct Figure10Result {
    /// Measured points, sorted by size.
    pub points: Vec<ScalePoint>,
}

/// Rough live-heap estimate of an analysis (values, instructions, DDG
/// edges, points-to sets).
pub fn memory_estimate_mib(analysis: &ModuleAnalysis) -> f64 {
    let module = analysis.module();
    let values: usize = module.functions().map(|f| f.value_count()).sum();
    let insts: usize = module.total_insts();
    let edges = analysis.ddg.edge_count();
    let objects = analysis.pointsto.object_count();
    let pts_entries: usize = analysis
        .pointsto
        .objects()
        .map(|(o, _)| analysis.pointsto.pts_obj(o).len())
        .sum();
    let bytes = values * 48 + insts * 96 + edges * 24 + objects * 64 + pts_entries * 16;
    bytes as f64 / (1024.0 * 1024.0)
}

/// Measures the suite.
pub fn run(projects: &[ProjectData]) -> Figure10Result {
    let mut points = Vec::new();
    for p in projects {
        let start = Instant::now();
        let _ = Manta::new(MantaConfig::full()).infer(&p.analysis);
        let infer_ms = start.elapsed().as_secs_f64() * 1e3;
        points.push(ScalePoint {
            name: p.name.clone(),
            insts: p.analysis.module().total_insts(),
            infer_ms,
            mem_mib: memory_estimate_mib(&p.analysis),
        });
    }
    points.sort_by_key(|p| p.insts);
    Figure10Result { points }
}

impl Figure10Result {
    /// Least-squares linear fit `y = a·x + b` of time (ms) against size.
    pub fn time_fit(&self) -> (f64, f64) {
        fit(self.points.iter().map(|p| (p.insts as f64, p.infer_ms)))
    }

    /// Least-squares fit of memory (MiB) against size.
    pub fn mem_fit(&self) -> (f64, f64) {
        fit(self.points.iter().map(|p| (p.insts as f64, p.mem_mib)))
    }

    /// Renders the figure data.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["project", "insts", "time_ms", "mem_MiB"]);
        for p in &self.points {
            t.row(vec![
                p.name.clone(),
                p.insts.to_string(),
                format!("{:.1}", p.infer_ms),
                format!("{:.2}", p.mem_mib),
            ]);
        }
        let (ta, tb) = self.time_fit();
        let (ma, mb) = self.mem_fit();
        format!(
            "Figure 10: scaling of inference time and memory\n{}\n\
             linear fit: time_ms ≈ {:.4}·insts + {:.1};  mem_MiB ≈ {:.5}·insts + {:.2}\n",
            t.render(),
            ta,
            tb,
            ma,
            mb
        )
    }
}

fn fit(points: impl Iterator<Item = (f64, f64)>) -> (f64, f64) {
    let pts: Vec<(f64, f64)> = points.collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return (0.0, 0.0);
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return (0.0, sy / n);
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::fit;

    #[test]
    fn fit_recovers_line() {
        let (a, b) = fit([(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)].into_iter());
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
    }
}
