//! Figure 9: the proportion of precise / over-approximated / unknown
//! inference results per sensitivity combination.

use manta::{ClassCounts, Manta, MantaConfig, Sensitivity};

use crate::runner::ProjectData;
use crate::table::{pct, TextTable};

/// The reproduced Figure 9.
#[derive(Clone, Debug)]
pub struct Figure9Result {
    /// `(ablation label, aggregate final counts)`.
    pub per_ablation: Vec<(String, ClassCounts)>,
}

/// Aggregates classification proportions over the suite.
pub fn run(projects: &[ProjectData]) -> Figure9Result {
    let mut per_ablation = Vec::new();
    for s in Sensitivity::ALL {
        let mut agg = ClassCounts::default();
        for p in projects {
            let r = Manta::new(MantaConfig::with_sensitivity(s)).infer(&p.analysis);
            let c = r.final_counts();
            agg.precise += c.precise;
            agg.over += c.over;
            agg.unknown += c.unknown;
        }
        per_ablation.push((s.label().to_string(), agg));
    }
    Figure9Result { per_ablation }
}

impl Figure9Result {
    /// `(precise%, over%, unknown%)` for an ablation label.
    pub fn proportions(&self, label: &str) -> Option<(f64, f64, f64)> {
        let (_, c) = self.per_ablation.iter().find(|(l, _)| l == label)?;
        let total = c.total().max(1) as f64;
        Some((
            100.0 * c.precise as f64 / total,
            100.0 * c.over as f64 / total,
            100.0 * c.unknown as f64 / total,
        ))
    }

    /// Renders the figure data.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["ablation", "%precise", "%over-approx", "%unknown"]);
        for (label, _) in &self.per_ablation {
            let (p, o, u) = self.proportions(label).expect("label exists");
            t.row(vec![label.clone(), pct(p), pct(o), pct(u)]);
        }
        format!(
            "Figure 9: inference result proportions by sensitivity\n{}",
            t.render()
        )
    }
}
