//! One module per reproduced table/figure. Each `run` function returns a
//! structured result with a `render()` method printing the paper-shaped
//! table; the `exp_*` binaries in `manta-bench` are thin wrappers.

pub mod ablation_order;
pub mod figure10;
pub mod figure11;
pub mod figure12;
pub mod figure2;
pub mod figure9;
pub mod table3;
pub mod table4;
pub mod table5;
