//! Figure 12: F1 score of source–sink program slicing when the DDG is
//! refined with each tool's inferred types.
//!
//! The oracle is the injected source–sink ground truth of the bug-seeded
//! corpus (the reproduction's stand-in for Pinpoint-on-source, which *is*
//! exact here because the generator is the source).

use manta::{Manta, MantaConfig, Sensitivity, TypeQuery};
use manta_baselines::{DirtyLike, GhidraLike, RetdecLike, RetypdLike, TypeTool};
use manta_clients::{detect_bugs, BugKind, CheckerConfig};

use crate::metrics::{score_bug_reports, BugScore};
use crate::runner::ProjectData;
use crate::table::{pct, TextTable};

/// The reproduced Figure 12.
#[derive(Clone, Debug)]
pub struct Figure12Result {
    /// `(tool, pooled bug score)`.
    pub scores: Vec<(String, BugScore)>,
}

fn reports_with(p: &ProjectData, types: &dyn TypeQuery) -> Vec<(BugKind, String)> {
    let (reports, _) = detect_bugs(
        &p.analysis,
        Some(types),
        &BugKind::ALL,
        CheckerConfig::default(),
    );
    reports
        .into_iter()
        .map(|r| {
            (
                r.kind,
                p.analysis.module().function(r.func).name().to_string(),
            )
        })
        .collect()
}

/// Runs slicing with every tool's types over the bug-seeded corpus.
pub fn run(corpus: &[ProjectData]) -> Figure12Result {
    let mut scores: Vec<(String, BugScore)> = Vec::new();
    // Baselines: variable-level types.
    let baselines: Vec<Box<dyn TypeTool>> = vec![
        Box::new(DirtyLike::default()),
        Box::new(GhidraLike),
        Box::new(RetdecLike),
        Box::new(RetypdLike {
            budget_insts: usize::MAX,
        }),
    ];
    for tool in &baselines {
        let mut agg = BugScore::default();
        for p in corpus {
            let r = tool.infer(&p.analysis);
            if !r.usable() {
                continue;
            }
            let types = r.as_types();
            let reports = reports_with(p, &types);
            agg.merge(score_bug_reports(&reports, &p.truth));
        }
        scores.push((tool.name().to_string(), agg));
    }
    // Manta ablations: full site sensitivity.
    for s in Sensitivity::ALL {
        let mut agg = BugScore::default();
        for p in corpus {
            let inference = Manta::new(MantaConfig::with_sensitivity(s)).infer(&p.analysis);
            let reports = reports_with(p, &inference);
            agg.merge(score_bug_reports(&reports, &p.truth));
        }
        scores.push((s.label().to_string(), agg));
    }
    Figure12Result { scores }
}

impl Figure12Result {
    /// F1 of one tool, percent.
    pub fn f1_of(&self, tool: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|(t, _)| t == tool)
            .map(|(_, s)| s.f1())
    }

    /// Renders the figure data.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["tool", "TP", "FP", "missed", "F1 %"]);
        for (tool, s) in &self.scores {
            t.row(vec![
                tool.clone(),
                s.tp.to_string(),
                s.fp.to_string(),
                s.missed.to_string(),
                pct(s.f1()),
            ]);
        }
        format!(
            "Figure 12: F1 of source-sink slicing with each tool's types\n{}",
            t.render()
        )
    }
}
