//! Table 5: real-world (firmware) bug detection — false positives, total
//! reports and analysis time per tool, plus the aggregate FPR row.

use std::time::Instant;

use manta::{Manta, MantaConfig, TypeQuery};
use manta_baselines::{ArbiterLike, BugTool, CweCheckerLike, SatcLike};
use manta_clients::{detect_bugs, BugKind, CheckerConfig};

use crate::metrics::{score_bug_reports, BugScore};
use crate::runner::ProjectData;
use crate::table::{pct, TextTable};

/// One tool's cell for one image.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Cell {
    /// `(score, milliseconds)`.
    Ran(BugScore, f64),
    /// The analyzer crashed on this image (NA).
    Crashed,
}

/// The reproduced Table 5.
#[derive(Clone, Debug)]
pub struct Table5Result {
    /// Tool column names.
    pub tools: Vec<String>,
    /// `(image, cells)`.
    pub rows: Vec<(String, Vec<Cell>)>,
}

/// Runs every bug-finding tool over the firmware suite.
pub fn run(images: &[ProjectData]) -> Table5Result {
    let tools = [
        "Arbiter".to_string(),
        "cwe_checker".into(),
        "SaTC".into(),
        "Manta".into(),
        "Manta-NoType".into(),
    ];
    let mut rows = Vec::new();
    for p in images {
        let mut cells = Vec::new();
        // Baseline tools.
        let baselines: Vec<Box<dyn BugTool>> = vec![
            Box::new(ArbiterLike::default()),
            Box::new(CweCheckerLike),
            Box::new(SatcLike),
        ];
        for tool in &baselines {
            let start = Instant::now();
            match tool.detect(&p.analysis) {
                None => cells.push(Cell::Crashed),
                Some(reports) => {
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    let pairs: Vec<(BugKind, String)> =
                        reports.into_iter().map(|r| (r.class, r.func)).collect();
                    cells.push(Cell::Ran(score_bug_reports(&pairs, &p.truth), ms));
                }
            }
        }
        // Manta (type-assisted) and Manta-NoType.
        for typed in [true, false] {
            let start = Instant::now();
            let inference = typed.then(|| Manta::new(MantaConfig::full()).infer(&p.analysis));
            let q: Option<&dyn TypeQuery> = inference.as_ref().map(|i| i as &dyn TypeQuery);
            let (reports, _visits) =
                detect_bugs(&p.analysis, q, &BugKind::ALL, CheckerConfig::default());
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let pairs: Vec<(BugKind, String)> = reports
                .into_iter()
                .map(|r| {
                    (
                        r.kind,
                        p.analysis.module().function(r.func).name().to_string(),
                    )
                })
                .collect();
            cells.push(Cell::Ran(score_bug_reports(&pairs, &p.truth), ms));
        }
        rows.push((p.name.clone(), cells));
    }
    Table5Result {
        tools: tools.into_iter().collect(),
        rows,
    }
}

impl Table5Result {
    /// Aggregate false-positive rate of a tool over images it ran on,
    /// percent.
    pub fn fpr_of(&self, tool: &str) -> Option<f64> {
        let idx = self.tools.iter().position(|t| t == tool)?;
        let mut agg = BugScore::default();
        let mut ran = false;
        for (_, cells) in &self.rows {
            if let Cell::Ran(s, _) = cells[idx] {
                agg.merge(s);
                ran = true;
            }
        }
        if !ran || agg.reports() == 0 {
            return None;
        }
        Some(agg.fpr())
    }

    /// Total reports of a tool.
    pub fn reports_of(&self, tool: &str) -> usize {
        let Some(idx) = self.tools.iter().position(|t| t == tool) else {
            return 0;
        };
        self.rows
            .iter()
            .map(|(_, cells)| match cells[idx] {
                Cell::Ran(s, _) => s.reports(),
                Cell::Crashed => 0,
            })
            .sum()
    }

    /// Total detection time of a tool in milliseconds.
    pub fn time_of(&self, tool: &str) -> f64 {
        let Some(idx) = self.tools.iter().position(|t| t == tool) else {
            return 0.0;
        };
        self.rows
            .iter()
            .map(|(_, cells)| match cells[idx] {
                Cell::Ran(_, ms) => ms,
                Cell::Crashed => 0.0,
            })
            .sum()
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut header: Vec<&str> = vec!["Model"];
        let owned: Vec<String> = self
            .tools
            .iter()
            .flat_map(|t| [format!("{t} #FP"), format!("{t} #R"), format!("{t} ms")])
            .collect();
        header.extend(owned.iter().map(String::as_str));
        let mut t = TextTable::new(&header);
        for (name, cells) in &self.rows {
            let mut row = vec![name.clone()];
            for c in cells {
                match c {
                    Cell::Ran(s, ms) => {
                        row.push(s.fp.to_string());
                        row.push(s.reports().to_string());
                        row.push(format!("{ms:.0}"));
                    }
                    Cell::Crashed => {
                        row.extend(["NA".to_string(), "NA".into(), "NA".into()]);
                    }
                }
            }
            t.row(row);
        }
        let mut fpr_row = vec!["FPR %".to_string()];
        for tool in &self.tools {
            let cell = self.fpr_of(tool).map(pct).unwrap_or_else(|| "NA".into());
            fpr_row.extend([cell, String::new(), String::new()]);
        }
        t.row(fpr_row);
        format!(
            "Table 5: firmware bug detection (#FP, #R, time)\n{}",
            t.render()
        )
    }
}
