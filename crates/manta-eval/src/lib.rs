//! # manta-eval
//!
//! The evaluation harness: regenerates every table and figure of the
//! paper's §6 on the synthetic suites (see `DESIGN.md` for the
//! substitution map and `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! * [`experiments::table3`] — type-inference precision/recall.
//! * [`experiments::figure2`] — over-approximated/unknown profiling.
//! * [`experiments::figure9`] — classification proportions per ablation.
//! * [`experiments::figure10`] — time/memory scaling.
//! * [`experiments::table4`] / [`experiments::figure11`] — indirect-call
//!   AICT, precision and recall.
//! * [`experiments::figure12`] — source–sink slicing F1.
//! * [`experiments::table5`] — firmware bug detection.

#![warn(missing_docs)]

pub mod adapters;
pub mod cached;
pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod table;

pub use adapters::MantaTool;
pub use cached::{run_suite, spec_fingerprint, CachedSuite, EvalRow};
pub use runner::{
    load_coreutils, load_coreutils_checked, load_firmware, load_firmware_checked, load_projects,
    load_projects_checked, load_specs_checked, load_specs_encoded, load_suite, load_suite_checked,
    solver_shape_table, stage_breakdown_table, Encoding, ProjectData, ProjectFailure, Suite,
    SuiteLoad,
};
