//! Scoring functions shared by the experiments.
//!
//! The type-inference metric follows §6.1 exactly: *precision* is the
//! proportion of parameters whose first-layer type is correctly and
//! precisely inferred; *recall* is the proportion whose inferred result
//! **includes** the actual type — an unknown (any-type) result or a range
//! containing the truth both count toward recall, while a wrong concrete
//! guess counts toward neither.

use std::collections::BTreeMap;

use manta::{FirstLayer, Resolution, TypeInterval};
use manta_analysis::ModuleAnalysis;
use manta_ir::{FuncId, Type, Width};
use manta_workloads::{GroundTruth, ParamKey};

/// Accumulated precision/recall counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PrScore {
    /// Correctly and precisely inferred.
    pub correct: usize,
    /// Result includes the actual type (correct ⊆ included).
    pub included: usize,
    /// Scored parameters.
    pub total: usize,
}

impl PrScore {
    /// Precision in percent.
    pub fn precision(&self) -> f64 {
        percent(self.correct, self.total)
    }

    /// Recall in percent.
    pub fn recall(&self) -> f64 {
        percent(self.included, self.total)
    }

    /// Merges another score into this one.
    pub fn merge(&mut self, other: PrScore) {
        self.correct += other.correct;
        self.included += other.included;
        self.total += other.total;
    }
}

fn percent(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// First-layer equality for "correctly inferred" (concrete layers only).
pub fn first_layer_match(inferred: &Type, gt: &Type) -> bool {
    let (a, b) = (FirstLayer::of(inferred), FirstLayer::of(gt));
    a == b && a.is_concrete()
}

/// Whether `fl` is covered by `upper_fl` in the first-layer order
/// (`fl <: upper_fl`).
fn covered_above(upper: FirstLayer, fl: FirstLayer) -> bool {
    match (upper, fl) {
        (FirstLayer::Top, _) => true,
        (a, b) if a == b => true,
        (FirstLayer::Reg(w), FirstLayer::Int(w2)) => w == w2,
        (FirstLayer::Reg(Width::W32), FirstLayer::Float) => true,
        (FirstLayer::Reg(Width::W64), FirstLayer::Double | FirstLayer::Ptr) => true,
        (FirstLayer::Num(w), FirstLayer::Int(w2)) => w == w2,
        (FirstLayer::Num(Width::W32), FirstLayer::Float) => true,
        (FirstLayer::Num(Width::W64), FirstLayer::Double) => true,
        _ => false,
    }
}

/// Whether `lower_fl` lies below `fl` (`lower_fl <: fl`).
fn covered_below(lower: FirstLayer, fl: FirstLayer) -> bool {
    lower == FirstLayer::Bottom || covered_above(fl, lower) || lower == fl
}

/// Whether the interval's first-layer range includes the ground truth.
pub fn interval_includes(interval: &TypeInterval, gt: &Type) -> bool {
    if interval.is_unknown() || interval.is_any() {
        return true;
    }
    let fl = FirstLayer::of(gt);
    let (up, low) = (
        FirstLayer::of(&interval.upper),
        FirstLayer::of(&interval.lower),
    );
    // The lower bound may itself be an *abstract* class above the truth
    // (e.g. a `num64` singleton includes `int64` as a member).
    covered_above(up, fl) && (covered_below(low, fl) || covered_above(low, fl))
}

/// Scores one parameter result against its ground truth.
pub fn score_param(result: Option<&TypeInterval>, gt: &Type) -> (bool, bool) {
    match result {
        None => (false, true), // unknown: any-type, includes the truth
        Some(interval) => match interval.resolution() {
            Resolution::Unknown => (false, true),
            Resolution::Precise(t) => {
                let correct = first_layer_match(&t, gt);
                (correct, correct || interval_includes(interval, gt))
            }
            Resolution::Over => (false, interval_includes(interval, gt)),
        },
    }
}

/// Scores a full parameter map (tool output) against the ground truth,
/// resolving truth keys (function names) to ids through `analysis`.
pub fn score_params(
    analysis: &ModuleAnalysis,
    truth: &GroundTruth,
    lookup: impl Fn(FuncId, usize) -> Option<TypeInterval>,
) -> PrScore {
    let by_name: BTreeMap<&str, FuncId> = analysis
        .module()
        .functions()
        .map(|f| (f.name(), f.id()))
        .collect();
    let mut score = PrScore::default();
    for (ParamKey { func, index }, gt) in &truth.param_types {
        let Some(&fid) = by_name.get(func.as_str()) else {
            continue;
        };
        let interval = lookup(fid, *index);
        let (correct, included) = score_param(interval.as_ref(), gt);
        score.total += 1;
        score.correct += correct as usize;
        score.included += included as usize;
    }
    score
}

/// Accumulated indirect-call metrics for one tool on one project.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct IcallScore {
    /// Scored indirect call sites.
    pub sites: usize,
    /// Sum of tool target-set sizes.
    pub targets_sum: usize,
    /// Sum of ground-truth target-set sizes.
    pub gt_sum: usize,
    /// Address-taken candidate count.
    pub at_count: usize,
    /// Sum over sites of pruned-infeasible fractions.
    pub precision_sum: f64,
    /// Sum over sites of retained-feasible fractions.
    pub recall_sum: f64,
}

impl IcallScore {
    /// Average indirect-call targets (#AICT).
    pub fn aict(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            self.targets_sum as f64 / self.sites as f64
        }
    }

    /// Source-level AICT.
    pub fn source_aict(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            self.gt_sum as f64 / self.sites as f64
        }
    }

    /// Pruning precision in percent: pruned infeasible / all infeasible.
    pub fn precision(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            100.0 * self.precision_sum / self.sites as f64
        }
    }

    /// Recall in percent: retained feasible / all feasible.
    pub fn recall(&self) -> f64 {
        if self.sites == 0 {
            100.0
        } else {
            100.0 * self.recall_sum / self.sites as f64
        }
    }

    /// Adds one site's outcome.
    pub fn add_site(
        &mut self,
        tool_targets: &[String],
        gt: &std::collections::BTreeSet<String>,
        at_count: usize,
    ) {
        self.sites += 1;
        self.at_count = at_count;
        self.targets_sum += tool_targets.len();
        self.gt_sum += gt.len();
        let infeasible = at_count.saturating_sub(gt.len());
        let pruned = at_count.saturating_sub(tool_targets.len());
        self.precision_sum += if infeasible == 0 {
            1.0
        } else {
            (pruned.min(infeasible)) as f64 / infeasible as f64
        };
        let kept = tool_targets
            .iter()
            .filter(|t| gt.contains(t.as_str()))
            .count();
        self.recall_sum += if gt.is_empty() {
            1.0
        } else {
            kept as f64 / gt.len() as f64
        };
    }
}

/// Bug-detection outcome counts for Table 5 / Figure 12.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BugScore {
    /// Reports matching injected real bugs.
    pub tp: usize,
    /// Reports not matching any real bug.
    pub fp: usize,
    /// Real bugs with no report.
    pub missed: usize,
}

impl BugScore {
    /// Total reports.
    pub fn reports(&self) -> usize {
        self.tp + self.fp
    }

    /// False-positive rate in percent.
    pub fn fpr(&self) -> f64 {
        percent(self.fp, self.reports())
    }

    /// Precision fraction.
    pub fn precision(&self) -> f64 {
        if self.reports() == 0 {
            0.0
        } else {
            self.tp as f64 / self.reports() as f64
        }
    }

    /// Recall fraction.
    pub fn recall(&self) -> f64 {
        let real = self.tp + self.missed;
        if real == 0 {
            0.0
        } else {
            self.tp as f64 / real as f64
        }
    }

    /// F1 in percent.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            100.0 * 2.0 * p * r / (p + r)
        }
    }

    /// Merges counts.
    pub fn merge(&mut self, other: BugScore) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.missed += other.missed;
    }
}

/// Scores deduplicated `(class, function)` reports against injected truth.
pub fn score_bug_reports(
    reports: &[(manta_clients::BugKind, String)],
    truth: &GroundTruth,
) -> BugScore {
    use manta_clients::BugKind;
    use manta_workloads::truth::BugClass;
    let to_class = |k: BugKind| match k {
        BugKind::Npd => BugClass::Npd,
        BugKind::Rsa => BugClass::Rsa,
        BugKind::Uaf => BugClass::Uaf,
        BugKind::Cmi => BugClass::Cmi,
        BugKind::Bof => BugClass::Bof,
    };
    let mut reports: Vec<_> = reports.to_vec();
    reports.sort();
    reports.dedup();
    let mut score = BugScore::default();
    let mut hit: std::collections::BTreeSet<(BugClass, &str)> = Default::default();
    for (kind, func) in &reports {
        let class = to_class(*kind);
        let is_real = truth
            .bugs
            .iter()
            .any(|b| b.real && b.class == class && &b.func == func);
        if is_real {
            score.tp += 1;
            hit.insert((class, func.as_str()));
        } else {
            score.fp += 1;
        }
    }
    score.missed = truth
        .bugs
        .iter()
        .filter(|b| b.real && !hit.contains(&(b.class, b.func.as_str())))
        .count();
    score
}

/// Geometric mean of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manta_ir::Type;

    #[test]
    fn score_param_cases() {
        let gt = Type::byte_ptr();
        // Unknown counts recall only.
        assert_eq!(score_param(None, &gt), (false, true));
        // Correct precise counts both.
        let exact = TypeInterval::exact(Type::ptr(Type::Bottom));
        assert_eq!(score_param(Some(&exact), &gt), (true, true));
        // Wrong precise counts neither.
        let wrong = TypeInterval::exact(Type::Int(Width::W64));
        assert_eq!(score_param(Some(&wrong), &gt), (false, false));
        // Over-approximated range including the truth: recall only.
        let mut range = TypeInterval::unknown();
        range.absorb(&Type::Int(Width::W64));
        range.absorb(&Type::byte_ptr());
        assert_eq!(score_param(Some(&range), &gt), (false, true));
        // Range NOT including the truth (32-bit numerics): neither.
        let mut narrow = TypeInterval::unknown();
        narrow.absorb(&Type::Int(Width::W32));
        narrow.absorb(&Type::Float);
        assert_eq!(score_param(Some(&narrow), &gt), (false, false));
    }

    #[test]
    fn abstract_num_is_recall_not_precision() {
        let gt = Type::Int(Width::W64);
        let num = TypeInterval::exact(Type::Num(Width::W64));
        let (c, i) = score_param(Some(&num), &gt);
        assert!(!c);
        assert!(i);
    }

    #[test]
    fn icall_score_math() {
        let mut s = IcallScore::default();
        let gt: std::collections::BTreeSet<String> =
            ["a", "b"].iter().map(|s| s.to_string()).collect();
        // 10 candidates, tool kept 4 (both feasible among them).
        s.add_site(&["a".into(), "b".into(), "x".into(), "y".into()], &gt, 10);
        assert_eq!(s.aict(), 4.0);
        assert_eq!(s.source_aict(), 2.0);
        // pruned 6 of 8 infeasible = 75%
        assert!((s.precision() - 75.0).abs() < 1e-9);
        assert!((s.recall() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bug_score_math() {
        use manta_clients::BugKind;
        use manta_workloads::truth::{BugClass, InjectedBug};
        let mut truth = GroundTruth::default();
        truth.bugs.push(InjectedBug {
            class: BugClass::Cmi,
            func: "real1".into(),
            real: true,
        });
        truth.bugs.push(InjectedBug {
            class: BugClass::Cmi,
            func: "real2".into(),
            real: true,
        });
        truth.bugs.push(InjectedBug {
            class: BugClass::Cmi,
            func: "decoy".into(),
            real: false,
        });
        let reports = vec![
            (BugKind::Cmi, "real1".to_string()),
            (BugKind::Cmi, "decoy".to_string()),
            (BugKind::Cmi, "noise".to_string()),
        ];
        let s = score_bug_reports(&reports, &truth);
        assert_eq!((s.tp, s.fp, s.missed), (1, 2, 1));
        assert!((s.fpr() - 66.666).abs() < 0.01);
        assert!(s.f1() > 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean([4.0, 16.0]) - 8.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }
}
