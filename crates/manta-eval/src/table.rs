//! Minimal fixed-width text table rendering for experiment output.

/// A text table under construction.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut width = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, w) in width.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>w$}"));
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1.0".into()]);
        t.row(vec!["b".into(), "123.4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("123.4"));
    }
}
