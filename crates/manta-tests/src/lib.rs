pub(crate) fn _anchor() {}
