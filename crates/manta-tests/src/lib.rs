//! Workspace-level integration tests for the Manta reproduction.
//!
//! The crate itself is empty: every suite lives in the repository-level
//! `tests/` directory and is wired in through the `[[test]]` entries in
//! this crate's `Cargo.toml` (`pipeline`, `motivating_examples`,
//! `experiment_shapes`, `clients_behavior`, `cross_crate_properties`,
//! `resilience`).

#![warn(missing_docs)]
