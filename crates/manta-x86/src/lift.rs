//! Lifting x86-64 machine code to `manta-ir` SSA.
//!
//! The x86 counterpart of `manta_isa::lift` — and deliberately shaped so
//! that code compiled from the same source produces the *same* IR from
//! either frontend (the differential tests pin inferred types to be
//! bit-identical). Three x86-specific recovery problems are handled here:
//!
//! * **eflags.** x86 splits a conditional branch into a flag-setting
//!   `cmp`/`test` and a flag-consuming `jcc`. The lifter records the last
//!   flag definition per block symbolically and materializes it as an SSA
//!   boolean ([`manta_ir::InstKind::Cmp`]) at the consuming `jcc` — so the
//!   IR carries `cmp.Q` + `condbr` exactly like the SB-ISA lift, with no
//!   flags register in sight. Non-compare ALU writes clobber the recorded
//!   flags; a `jcc` with no live `cmp`/`test` in its block is an error.
//! * **Sub-registers.** `eax`/`ax`/`al` are masked views of `rax`: a
//!   32-bit register move and the register forms of `movzx`/`movsx` lift
//!   to an `and` with the width mask at the narrow width, giving the type
//!   substrate the same width evidence a narrow load would.
//! * **The stack frame.** `rsp`/`rbp` never become SSA values. A frame
//!   (`push rbp; mov rbp, rsp`) is recognized and `rbp`-relative offsets
//!   are partitioned into *slots*: each distinct `lea r, [rbp-off]` starts
//!   a slot (one [`manta_ir::InstKind::Alloca`], sized by the gap to the
//!   next slot), and any offsets below the lowest `lea` form one residual
//!   alloca at function entry — the mirror image of SB-ISA's `salloc`
//!   spill area. Direct `[rbp-off]` accesses become `gep`s into the
//!   owning slot.
//!
//! Calls follow the SysV ABI: `rdi`/`rsi`/`rdx`/`rcx`/`r8`/`r9` carry
//! parameters, `rax` carries the return value. Direct call targets resolve
//! through the image's function table or PLT; indirect calls recover their
//! arity from the argument registers written since the last call (a
//! RetDec-style heuristic) and are assumed to return a value.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use manta_ir::{
    BinOp, BlockId, Callee, ConstKind, ExternId, Frontend, FrontendError, FuncId, Function,
    GlobalId, InstKind, Module, SsaBuilder, Terminator, Value, ValueId, ValueKind, Width,
};

use crate::decode::decode_all;
use crate::image::{rip_target, Image, ImageError, ImageFunction};
use crate::inst::{Alu, Cc, Gpr, Inst, Mem, OpWidth, Rm, Shift};

/// Lifting failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LiftError {
    /// Description.
    pub message: String,
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lift error: {}", self.message)
    }
}

impl std::error::Error for LiftError {}

impl From<ImageError> for LiftError {
    fn from(e: ImageError) -> LiftError {
        LiftError { message: e.message }
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, LiftError> {
    Err(LiftError {
        message: message.into(),
    })
}

/// Lifts a decoded image to an IR module.
///
/// # Errors
///
/// Returns [`LiftError`] when the machine code does not decode, branches
/// outside its function, manipulates `rsp`/`rbp` outside the recognized
/// frame idioms, or consumes flags no `cmp`/`test` defined.
pub fn lift(image: &Image) -> Result<Module, LiftError> {
    let mut module = Module::new(image.name.clone());
    // Externs first, preserving PLT order so indexes line up.
    for e in &image.externs {
        let fallback: Vec<Width> = vec![Width::W64; e.nparams as usize];
        let ret = if e.has_ret { Some(Width::W64) } else { None };
        module.declare_extern(&e.name, &fallback, ret);
    }
    for g in &image.globals {
        module.push_global_named(&g.name, g.size);
    }
    // Decode every body up front; direct calls may reference any function.
    let mut decoded: Vec<Vec<(Inst, usize, usize)>> = Vec::with_capacity(image.functions.len());
    for f in &image.functions {
        if f.nparams as usize > 6 {
            return err(format!(
                "function {} has too many register parameters",
                f.name
            ));
        }
        let body = &image.text[f.offset as usize..(f.offset + f.len) as usize];
        let insts = decode_all(body).map_err(|e| LiftError {
            message: format!("in function {}: {}", f.name, e.message),
        })?;
        decoded.push(insts);
    }
    // Function shells first (direct calls may reference any index).
    for (i, f) in image.functions.iter().enumerate() {
        let params = vec![Width::W64; f.nparams as usize];
        let ret = if f.has_ret { Some(Width::W64) } else { None };
        let func = Function::new(FuncId::from_index(i), f.name.clone(), &params, ret);
        module.push_function_raw(func);
    }
    // Lift bodies.
    let mut total_insts = 0u64;
    for (i, f) in image.functions.iter().enumerate() {
        total_insts += decoded[i].len() as u64;
        let lifted = Lifter::new(&module, image, i, f, &decoded[i])?.run()?;
        *module.function_mut(FuncId::from_index(i)) = lifted;
    }
    // Address-taken marking: any `lea r, [rip+d]` landing on a function
    // entry — after body installation so the flag survives.
    for (fi, insts) in decoded.iter().enumerate() {
        for &(inst, off, len) in insts {
            if let Inst::Lea {
                mem: Mem::Rip { disp },
                ..
            } = inst
            {
                let addr = rip_target(image, fi, (off + len) as u64, disp);
                if let Some(ti) = image.func_at_addr(addr) {
                    module
                        .function_mut(FuncId::from_index(ti))
                        .set_address_taken(true);
                }
            }
        }
    }
    manta_telemetry::counter("lift.insts_decoded", total_insts);
    manta_ir::verify::verify_module(&module).map_err(|e| LiftError {
        message: format!("lifted module failed verification: {e}"),
    })?;
    Ok(module)
}

/// The last flag-defining instruction seen in the current block, held
/// symbolically until a `jcc` consumes it.
#[derive(Clone, Copy)]
enum FlagSrc {
    /// No live flag definition (block start, or clobbered by an ALU write
    /// or a call).
    None,
    /// `cmp lhs, rhs`.
    Cmp { lhs: ValueId, rhs: ValueId },
    /// `test a, b`.
    Test { a: ValueId, b: ValueId },
}

/// One `lea`-rooted frame slot: `[off, off + size)` below the frame base.
struct LeaSlot {
    off: i32,
    size: u64,
    value: Option<ValueId>,
}

/// The spill area below the lowest `lea`-rooted slot, lifted as one alloca
/// at function entry (the mirror of SB-ISA's `salloc`).
struct Residual {
    min_off: i32,
    size: u64,
    value: Option<ValueId>,
}

struct Lifter<'a> {
    module: &'a Module,
    image: &'a Image,
    func_index: usize,
    src: &'a ImageFunction,
    insts: &'a [(Inst, usize, usize)],
    func: Function,
    /// Instruction index → owning block.
    block_of: Vec<BlockId>,
    /// Block → leader instruction index.
    leader_of: HashMap<BlockId, usize>,
    /// Machine-CFG predecessors per block.
    preds: HashMap<BlockId, Vec<BlockId>>,
    /// Byte offset → instruction index (branch-target resolution).
    off_to_idx: HashMap<usize, usize>,
    /// Shared Braun-style register renamer (`manta_ir::SsaBuilder`).
    ssa: SsaBuilder<Gpr>,
    has_frame: bool,
    lea_slots: Vec<LeaSlot>,
    residual: Option<Residual>,
    flags: FlagSrc,
    /// SysV argument registers written since the last call, for the
    /// indirect-call arity heuristic.
    args_written: [bool; 6],
    /// Index of the instruction being translated (RIP resolution).
    cur_idx: usize,
    flags_materialized: u64,
    frame_slots: u64,
}

impl<'a> Lifter<'a> {
    fn new(
        module: &'a Module,
        image: &'a Image,
        func_index: usize,
        src: &'a ImageFunction,
        insts: &'a [(Inst, usize, usize)],
    ) -> Result<Lifter<'a>, LiftError> {
        let params = vec![Width::W64; src.nparams as usize];
        let ret = if src.has_ret { Some(Width::W64) } else { None };
        let func = Function::new(
            FuncId::from_index(func_index),
            src.name.clone(),
            &params,
            ret,
        );
        Ok(Lifter {
            module,
            image,
            func_index,
            src,
            insts,
            func,
            block_of: Vec::new(),
            leader_of: HashMap::new(),
            preds: HashMap::new(),
            off_to_idx: HashMap::new(),
            ssa: SsaBuilder::new(HashMap::new()),
            has_frame: false,
            lea_slots: Vec::new(),
            residual: None,
            flags: FlagSrc::None,
            args_written: [false; 6],
            cur_idx: 0,
            flags_materialized: 0,
            frame_slots: 0,
        })
    }

    /// Instruction index a branch at `(off, len, rel)` lands on.
    fn branch_target(&self, off: usize, len: usize, rel: i32) -> Result<usize, LiftError> {
        let target = off as i64 + len as i64 + rel as i64;
        usize::try_from(target)
            .ok()
            .and_then(|t| self.off_to_idx.get(&t).copied())
            .ok_or_else(|| LiftError {
                message: format!(
                    "branch at offset {off} in {} targets {target:#x}, not an \
                     instruction boundary in the same function",
                    self.src.name
                ),
            })
    }

    fn run(mut self) -> Result<Function, LiftError> {
        let n = self.insts.len();
        if n == 0 {
            // Empty body: entry stays `unreachable`.
            return Ok(self.func);
        }
        for (i, &(_, off, _)) in self.insts.iter().enumerate() {
            self.off_to_idx.insert(off, i);
        }
        self.scan_frame()?;
        // 1. Leaders: index 0, branch targets, fallthroughs of terminators.
        let mut is_leader = vec![false; n];
        is_leader[0] = true;
        for (i, &(inst, off, len)) in self.insts.iter().enumerate() {
            match inst {
                Inst::Jmp { rel } | Inst::Jcc { rel, .. } => {
                    let t = self.branch_target(off, len, rel)?;
                    is_leader[t] = true;
                }
                _ => {}
            }
            if inst.is_terminator() && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }
        // 2. Blocks in leader order; entry (index 0) is the existing bb0.
        self.block_of = vec![BlockId(0); n];
        let mut current = self.func.entry();
        self.leader_of.insert(current, 0);
        for (i, &leader) in is_leader.iter().enumerate() {
            if leader && i != 0 {
                current = self.func.add_block();
                self.leader_of.insert(current, i);
            }
            self.block_of[i] = current;
        }
        // 3. Machine CFG edges (for phi placement). Jcc pushes the taken
        // target before the fallthrough, mirroring SB-ISA's `brz`.
        for (i, &(inst, off, len)) in self.insts.iter().enumerate() {
            let b = self.block_of[i];
            let mut succs: Vec<usize> = Vec::new();
            match inst {
                Inst::Jmp { rel } => succs.push(self.branch_target(off, len, rel)?),
                Inst::Jcc { rel, .. } => {
                    succs.push(self.branch_target(off, len, rel)?);
                    if i + 1 < n {
                        succs.push(i + 1);
                    }
                }
                Inst::Ret => {}
                _ => {
                    if i + 1 < n && is_leader[i + 1] {
                        succs.push(i + 1);
                    }
                }
            }
            let ends_block = inst.is_terminator() || (i + 1 < n && is_leader[i + 1]);
            if ends_block {
                for s in succs {
                    let sb = self.block_of[s];
                    self.preds.entry(sb).or_default().push(b);
                }
            }
        }
        // 4. Translate in block order; SSA renaming is the shared
        // two-phase `manta_ir::SsaBuilder` (pending phis are resolved in
        // step 5 once every block's end state is sealed).
        self.ssa = SsaBuilder::new(self.preds.clone());
        let blocks: Vec<BlockId> = (0..self.func.block_count())
            .map(|i| BlockId(i as u32))
            .collect();
        for &b in &blocks {
            let seed: Vec<(Gpr, ValueId)> = if b == self.func.entry() {
                self.func
                    .params()
                    .iter()
                    .enumerate()
                    .map(|(idx, &p)| (Gpr::arg(idx), p))
                    .collect()
            } else {
                Vec::new()
            };
            self.ssa.begin_block(seed);
            // Flags and the arity heuristic never cross block boundaries.
            self.flags = FlagSrc::None;
            self.args_written = [false; 6];
            if b == self.func.entry() {
                if let Some(size) = self.residual.as_ref().map(|r| r.size) {
                    // The residual spill area is allocated up front, exactly
                    // where SB-ISA's `salloc` sits.
                    let v = self.emit(b, Width::W64, |dst| InstKind::Alloca { dst, size });
                    self.residual.as_mut().expect("just checked").value = Some(v);
                    self.frame_slots += 1;
                }
            }
            let start = self.leader_of[&b];
            let mut i = start;
            let mut terminated = false;
            while i < n && self.block_of[i] == b {
                let (inst, off, len) = self.insts[i];
                self.translate(b, i, off, len, &inst, &mut terminated)?;
                i += 1;
            }
            if !terminated {
                // Fallthrough into the next block.
                if i < n {
                    self.func
                        .replace_terminator(b, Terminator::Br(self.block_of[i]));
                } else {
                    self.func.replace_terminator(b, Terminator::Unreachable);
                }
            }
            self.ssa.end_block(b);
        }
        // 5. Resolve pending phis against sealed end-of-block states.
        self.ssa.finish(&mut self.func);
        manta_telemetry::counter("lift.insts_decoded", 0); // name registered by module lift
        manta_telemetry::counter("lift.flags_materialized", self.flags_materialized);
        manta_telemetry::counter("lift.frame_slots", self.frame_slots);
        Ok(self.func)
    }

    /// Recognizes the frame prologue and partitions every `rbp`-relative
    /// offset into `lea`-rooted slots plus a residual spill area.
    fn scan_frame(&mut self) -> Result<(), LiftError> {
        self.has_frame = matches!(
            self.insts.first(),
            Some(&(Inst::Push { reg: Gpr::RBP }, ..))
        ) && matches!(
            self.insts.get(1),
            Some(&(
                Inst::MovRR {
                    w: OpWidth::B64,
                    dst: Gpr::RBP,
                    src: Gpr::RSP,
                },
                ..
            ))
        );
        let mut lea_offs: BTreeSet<i32> = BTreeSet::new();
        let mut direct_offs: BTreeSet<i32> = BTreeSet::new();
        let mut note = |mem: &Mem, is_lea: bool| -> Result<(), LiftError> {
            if let Mem::Base {
                base: Gpr::RBP,
                disp,
            } = *mem
            {
                if disp >= 0 {
                    return err(format!(
                        "{}: [rbp+{disp}] accesses at or above the frame base",
                        self.src.name
                    ));
                }
                if is_lea {
                    lea_offs.insert(disp);
                } else {
                    direct_offs.insert(disp);
                }
            }
            Ok(())
        };
        for &(inst, ..) in self.insts {
            match inst {
                Inst::Lea { mem, .. } => note(&mem, true)?,
                Inst::MovLoad { mem, .. }
                | Inst::MovStore { mem, .. }
                | Inst::MovStoreImm { mem, .. }
                | Inst::AluRM { mem, .. }
                | Inst::MovZx {
                    src: Rm::Mem(mem), ..
                }
                | Inst::MovSx {
                    src: Rm::Mem(mem), ..
                } => note(&mem, false)?,
                _ => {}
            }
        }
        if lea_offs.is_empty() && direct_offs.is_empty() {
            return Ok(());
        }
        if !self.has_frame {
            return err(format!(
                "{}: rbp-relative access without a `push rbp; mov rbp, rsp` prologue",
                self.src.name
            ));
        }
        // Slot `i` spans from its lea offset up to the next one (or 0).
        let leas: Vec<i32> = lea_offs.iter().copied().collect();
        for (i, &off) in leas.iter().enumerate() {
            let end = leas.get(i + 1).copied().unwrap_or(0);
            self.lea_slots.push(LeaSlot {
                off,
                size: (end - off) as u64,
                value: None,
            });
        }
        let floor = leas.first().copied().unwrap_or(0);
        if let Some(&min_direct) = direct_offs.first() {
            if min_direct < floor {
                self.residual = Some(Residual {
                    min_off: min_direct,
                    size: (floor - min_direct) as u64,
                    value: None,
                });
            }
        }
        Ok(())
    }

    /// The address of frame offset `off`, creating the owning slot's
    /// alloca at first touch.
    fn frame_addr(&mut self, b: BlockId, off: i32) -> Result<ValueId, LiftError> {
        if let Some(i) = self
            .lea_slots
            .iter()
            .position(|s| s.off <= off && (off as i64) < s.off as i64 + s.size as i64)
        {
            let base = match self.lea_slots[i].value {
                Some(v) => v,
                None => {
                    let size = self.lea_slots[i].size;
                    let v = self.emit(b, Width::W64, |dst| InstKind::Alloca { dst, size });
                    self.lea_slots[i].value = Some(v);
                    self.frame_slots += 1;
                    v
                }
            };
            let inner = (off - self.lea_slots[i].off) as u64;
            if inner == 0 {
                return Ok(base);
            }
            return Ok(self.emit(b, Width::W64, |dst| InstKind::Gep {
                dst,
                base,
                offset: inner,
            }));
        }
        if let Some(res) = &self.residual {
            if off >= res.min_off {
                let base = res.value.expect("residual alloca emitted at entry");
                let inner = (off - res.min_off) as u64;
                if inner == 0 {
                    return Ok(base);
                }
                return Ok(self.emit(b, Width::W64, |dst| InstKind::Gep {
                    dst,
                    base,
                    offset: inner,
                }));
            }
        }
        err(format!(
            "{}: [rbp{off}] is outside every recovered frame slot",
            self.src.name
        ))
    }

    fn read_reg(&mut self, b: BlockId, r: Gpr) -> Result<ValueId, LiftError> {
        if r == Gpr::RSP || r == Gpr::RBP {
            return err(format!(
                "{}: {} read outside the frame idioms",
                self.src.name, r
            ));
        }
        Ok(self.ssa.read(&mut self.func, b, r))
    }

    fn write_reg(&mut self, r: Gpr, v: ValueId) -> Result<(), LiftError> {
        if r == Gpr::RSP || r == Gpr::RBP {
            return err(format!(
                "{}: {} written outside the frame idioms",
                self.src.name, r
            ));
        }
        if let Some(pos) = Gpr::SYSV_ARGS.iter().position(|&a| a == r) {
            self.args_written[pos] = true;
        }
        self.ssa.write(r, v);
        Ok(())
    }

    /// The address an operand like `[base + index*scale + disp]` denotes,
    /// as an SSA value. `rbp` bases route through the frame slots;
    /// `[rip+d]` resolves to globals.
    fn lift_addr(&mut self, b: BlockId, mem: &Mem) -> Result<ValueId, LiftError> {
        match *mem {
            Mem::Base { base: Gpr::RSP, .. } => err(format!(
                "{}: rsp-relative memory access (only rbp frames are lifted)",
                self.src.name
            )),
            Mem::Base {
                base: Gpr::RBP,
                disp,
            } => self.frame_addr(b, disp),
            Mem::Base { base, disp } => {
                let base = self.read_reg(b, base)?;
                if disp == 0 {
                    Ok(base)
                } else if disp > 0 {
                    Ok(self.emit(b, Width::W64, |dst| InstKind::Gep {
                        dst,
                        base,
                        offset: disp as u64,
                    }))
                } else {
                    err(format!(
                        "{}: negative displacement {disp} off a non-frame base",
                        self.src.name
                    ))
                }
            }
            Mem::BaseIndex {
                base,
                index,
                scale,
                disp,
            } => {
                if base == Gpr::RSP || base == Gpr::RBP {
                    return err(format!(
                        "{}: indexed addressing off {base} is not lifted",
                        self.src.name
                    ));
                }
                let base_v = self.read_reg(b, base)?;
                let mut idx = self.read_reg(b, index)?;
                if scale > 1 {
                    let amt = self.const_int(i64::from(scale.trailing_zeros()), Width::W64);
                    idx = self.emit(b, Width::W64, |dst| InstKind::BinOp {
                        op: BinOp::Shl,
                        dst,
                        lhs: idx,
                        rhs: amt,
                    });
                }
                let sum = self.emit(b, Width::W64, |dst| InstKind::BinOp {
                    op: BinOp::Add,
                    dst,
                    lhs: base_v,
                    rhs: idx,
                });
                if disp == 0 {
                    Ok(sum)
                } else if disp > 0 {
                    Ok(self.emit(b, Width::W64, |dst| InstKind::Gep {
                        dst,
                        base: sum,
                        offset: disp as u64,
                    }))
                } else {
                    err(format!(
                        "{}: negative displacement {disp} in indexed addressing",
                        self.src.name
                    ))
                }
            }
            Mem::Rip { disp } => {
                let addr = self.rip_addr(disp, b)?;
                match addr {
                    RipTarget::Global(g, 0) => Ok(self.global_value(g)),
                    RipTarget::Global(g, inner) => {
                        let base = self.global_value(g);
                        Ok(self.emit(b, Width::W64, |dst| InstKind::Gep {
                            dst,
                            base,
                            offset: inner,
                        }))
                    }
                    RipTarget::Func(_) => err(format!(
                        "{}: memory access through a function address",
                        self.src.name
                    )),
                }
            }
        }
    }

    /// Resolves a `[rip+disp]` reference at the current instruction.
    fn rip_addr(&mut self, disp: i32, _b: BlockId) -> Result<RipTarget, LiftError> {
        let (_, off, len) = self.insts[self.cur_idx];
        let addr = rip_target(self.image, self.func_index, (off + len) as u64, disp);
        if let Some((gi, inner)) = self.image.global_at_addr(addr) {
            return Ok(RipTarget::Global(GlobalId(gi as u32), inner));
        }
        if let Some(ti) = self.image.func_at_addr(addr) {
            return Ok(RipTarget::Func(FuncId::from_index(ti)));
        }
        err(format!(
            "{}: [rip{disp:+}] resolves to {addr:#x}, neither a global nor a \
             function entry",
            self.src.name
        ))
    }

    fn global_value(&mut self, g: GlobalId) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::GlobalAddr(g),
            width: Width::W64,
        })
    }

    fn const_int(&mut self, v: i64, width: Width) -> ValueId {
        self.func.add_value(Value {
            kind: ValueKind::Const(ConstKind::Int(v)),
            width,
        })
    }

    fn def_value(&mut self, width: Width) -> (ValueId, manta_ir::InstId) {
        let next = manta_ir::InstId::from_index(self.func.inst_count());
        let v = self.func.add_value(Value {
            kind: ValueKind::Inst { def: next },
            width,
        });
        (v, next)
    }

    fn emit(&mut self, b: BlockId, width: Width, f: impl FnOnce(ValueId) -> InstKind) -> ValueId {
        let (v, expected) = self.def_value(width);
        let got = self.func.append_inst(b, f(v));
        debug_assert_eq!(got, expected);
        v
    }

    /// Reads the flag source at a `jcc` and materializes the SSA boolean.
    fn materialize_flags(&mut self, b: BlockId, cc: Cc) -> Result<ValueId, LiftError> {
        // The IR compare carries the *negated* condition: `jcc target` falls
        // through (then-edge) exactly when `!cc` holds — matching the SB
        // lift of `cmp.Q` + `brz`.
        let pred = cc.negate().pred();
        let v = match self.flags {
            FlagSrc::None => {
                return err(format!(
                    "{}: j{} without a live cmp/test in the same block",
                    self.src.name,
                    cc.mnemonic()
                ))
            }
            FlagSrc::Cmp { lhs, rhs } => self.emit(b, Width::W1, |dst| InstKind::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            }),
            FlagSrc::Test { a, b: tb } => {
                if !matches!(cc, Cc::E | Cc::Ne) {
                    return err(format!(
                        "{}: j{} after test is outside the lifted subset (only \
                         je/jne)",
                        self.src.name,
                        cc.mnemonic()
                    ));
                }
                let operand = if a == tb {
                    a
                } else {
                    self.emit(b, Width::W64, |dst| InstKind::BinOp {
                        op: BinOp::And,
                        dst,
                        lhs: a,
                        rhs: tb,
                    })
                };
                let zero = self.const_int(0, Width::W64);
                self.emit(b, Width::W1, |dst| InstKind::Cmp {
                    dst,
                    pred,
                    lhs: operand,
                    rhs: zero,
                })
            }
        };
        self.flags_materialized += 1;
        Ok(v)
    }

    fn alu_binop(op: Alu) -> BinOp {
        match op {
            Alu::Add => BinOp::Add,
            Alu::Sub => BinOp::Sub,
            Alu::And => BinOp::And,
            Alu::Or => BinOp::Or,
            Alu::Xor => BinOp::Xor,
            Alu::Mul => BinOp::Mul,
            Alu::Cmp => unreachable!("cmp is handled by the flag machinery"),
        }
    }

    /// Reads register `r` through a sub-register mask of `width`.
    fn masked_read(&mut self, b: BlockId, r: Gpr, width: OpWidth) -> Result<ValueId, LiftError> {
        let full = self.read_reg(b, r)?;
        let mask = if width.bits() >= 64 {
            return Ok(full);
        } else {
            (1i64 << width.bits()) - 1
        };
        let mask_v = self.const_int(mask, Width::W64);
        Ok(self.emit(b, width.ir(), |dst| InstKind::BinOp {
            op: BinOp::And,
            dst,
            lhs: full,
            rhs: mask_v,
        }))
    }

    fn finish_call(
        &mut self,
        b: BlockId,
        callee: Callee,
        nargs: usize,
        ret_width: Option<Width>,
    ) -> Result<(), LiftError> {
        let mut args = Vec::with_capacity(nargs);
        for i in 0..nargs {
            args.push(self.read_reg(b, Gpr::arg(i))?);
        }
        if let Some(w) = ret_width {
            let v = self.emit(b, w, |dst| InstKind::Call {
                dst: Some(dst),
                callee,
                args: args.clone(),
            });
            self.write_reg(Gpr::RAX, v)?;
        } else {
            self.func.append_inst(
                b,
                InstKind::Call {
                    dst: None,
                    callee,
                    args,
                },
            );
        }
        // Calls clobber both flags and the arity-heuristic window.
        self.flags = FlagSrc::None;
        self.args_written = [false; 6];
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn translate(
        &mut self,
        b: BlockId,
        idx: usize,
        off: usize,
        len: usize,
        inst: &Inst,
        terminated: &mut bool,
    ) -> Result<(), LiftError> {
        self.cur_idx = idx;
        let n = self.insts.len();
        match *inst {
            // --- Frame idioms: no IR. ---------------------------------
            Inst::MovRR {
                w: OpWidth::B64,
                dst: Gpr::RBP,
                src: Gpr::RSP,
            }
            | Inst::MovRR {
                w: OpWidth::B64,
                dst: Gpr::RSP,
                src: Gpr::RBP,
            }
            | Inst::Push { reg: Gpr::RBP }
            | Inst::Pop { reg: Gpr::RBP }
            | Inst::AluRI {
                op: Alu::Add | Alu::Sub,
                dst: Gpr::RSP,
                ..
            } => {}
            Inst::Push { reg } | Inst::Pop { reg } => {
                // Callee-save spills bracket the body and restore what they
                // pushed; modelling them as no-ops keeps values flowing.
                let callee_saved =
                    matches!(reg, Gpr::RBX | Gpr::R12 | Gpr::R13 | Gpr::R14 | Gpr::R15);
                if !callee_saved {
                    return err(format!(
                        "{}: push/pop of caller-saved {reg} is outside the \
                         lifted subset",
                        self.src.name
                    ));
                }
            }
            // --- Data movement. ---------------------------------------
            Inst::MovRR { w, dst, src } => {
                let v = match w {
                    OpWidth::B64 => {
                        let s = self.read_reg(b, src)?;
                        self.emit(b, self.func.value(s).width, |dst| InstKind::Copy {
                            dst,
                            src: s,
                        })
                    }
                    // A 32-bit register move zero-extends: lift as a masked
                    // view so the 32-bit width reaches the substrate.
                    _ => self.masked_read(b, src, w)?,
                };
                self.write_reg(dst, v)?;
            }
            Inst::MovRI { dst, imm } => {
                let v = self.const_int(imm, Width::W64);
                self.write_reg(dst, v)?;
            }
            Inst::MovLoad { w, dst, mem } => {
                let addr = self.lift_addr(b, &mem)?;
                let width = w.ir();
                let v = self.emit(b, width, |dst| InstKind::Load { dst, addr, width });
                self.write_reg(dst, v)?;
            }
            Inst::MovStore { w: _, mem, src } => {
                let addr = self.lift_addr(b, &mem)?;
                let val = self.read_reg(b, src)?;
                self.func.append_inst(b, InstKind::Store { addr, val });
            }
            Inst::MovStoreImm { w: _, mem, imm } => {
                let addr = self.lift_addr(b, &mem)?;
                let val = self.const_int(i64::from(imm), Width::W64);
                self.func.append_inst(b, InstKind::Store { addr, val });
            }
            Inst::MovZx { from, dst, src } => {
                // The register form is a masked view of the wide register.
                let v = match src {
                    Rm::Reg(r) => self.masked_read(b, r, from)?,
                    Rm::Mem(mem) => {
                        let addr = self.lift_addr(b, &mem)?;
                        let width = from.ir();
                        self.emit(b, width, |dst| InstKind::Load { dst, addr, width })
                    }
                };
                self.write_reg(dst, v)?;
            }
            Inst::MovSx { from, dst, src } => {
                let v = match src {
                    Rm::Reg(r) => {
                        // Sign extension is NOT a mask (the high bits are
                        // copies of bit `from-1`), so the register form
                        // lifts as the shift-up/shift-down pair — the same
                        // staging SB-ISA encodes with two shift
                        // instructions, so both frontends produce
                        // bit-identical IR. The constant binds before the
                        // register read to match SB's `movi` staging order.
                        let amt = i64::from(64 - from.bits());
                        let c1 = self.const_int(amt, Width::W64);
                        let lhs = self.read_reg(b, r)?;
                        let hi = self.emit(b, Width::W64, |dst| InstKind::BinOp {
                            op: BinOp::Shl,
                            dst,
                            lhs,
                            rhs: c1,
                        });
                        let c2 = self.const_int(amt, Width::W64);
                        self.emit(b, Width::W64, |dst| InstKind::BinOp {
                            op: BinOp::Shr,
                            dst,
                            lhs: hi,
                            rhs: c2,
                        })
                    }
                    // Memory forms stay plain narrow loads: the access
                    // width is the type evidence, as with `movzx`.
                    Rm::Mem(mem) => {
                        let addr = self.lift_addr(b, &mem)?;
                        let width = from.ir();
                        self.emit(b, width, |dst| InstKind::Load { dst, addr, width })
                    }
                };
                self.write_reg(dst, v)?;
            }
            Inst::Lea { dst, mem } => match mem {
                Mem::Base {
                    base: Gpr::RBP,
                    disp,
                } => {
                    let v = self.frame_addr(b, disp)?;
                    self.write_reg(dst, v)?;
                }
                Mem::Rip { disp } => {
                    let v = match self.rip_addr(disp, b)? {
                        RipTarget::Global(g, 0) => self.global_value(g),
                        RipTarget::Global(g, inner) => {
                            let base = self.global_value(g);
                            self.emit(b, Width::W64, |dst| InstKind::Gep {
                                dst,
                                base,
                                offset: inner,
                            })
                        }
                        RipTarget::Func(f) => self.func.add_value(Value {
                            kind: ValueKind::FuncAddr(f),
                            width: Width::W64,
                        }),
                    };
                    self.write_reg(dst, v)?;
                }
                _ => {
                    let v = self.lift_addr(b, &mem)?;
                    self.write_reg(dst, v)?;
                }
            },
            // --- ALU and flags. ---------------------------------------
            Inst::AluRR {
                op: Alu::Cmp,
                dst,
                src,
            } => {
                let lhs = self.read_reg(b, dst)?;
                let rhs = self.read_reg(b, src)?;
                self.flags = FlagSrc::Cmp { lhs, rhs };
            }
            Inst::AluRI {
                op: Alu::Cmp,
                dst,
                imm,
            } => {
                // Immediate before the register read: the read may create a
                // phi, and SB's `movi` staging binds its constant first, so
                // value creation order must match that sequence.
                let rhs = self.const_int(i64::from(imm), Width::W64);
                let lhs = self.read_reg(b, dst)?;
                self.flags = FlagSrc::Cmp { lhs, rhs };
            }
            Inst::AluRM {
                op: Alu::Cmp,
                dst,
                mem,
            } => {
                let lhs = self.read_reg(b, dst)?;
                let addr = self.lift_addr(b, &mem)?;
                let rhs = self.emit(b, Width::W64, |dst| InstKind::Load {
                    dst,
                    addr,
                    width: Width::W64,
                });
                self.flags = FlagSrc::Cmp { lhs, rhs };
            }
            Inst::AluRR { op, dst, src } => {
                let lhs = self.read_reg(b, dst)?;
                let rhs = self.read_reg(b, src)?;
                let op = Self::alu_binop(op);
                let v = self.emit(b, Width::W64, |dst| InstKind::BinOp { op, dst, lhs, rhs });
                self.write_reg(dst, v)?;
                self.flags = FlagSrc::None;
            }
            Inst::AluRI { op, dst, imm } => {
                // Immediate first, as in the compare arm above.
                let rhs = self.const_int(i64::from(imm), Width::W64);
                let lhs = self.read_reg(b, dst)?;
                let op = Self::alu_binop(op);
                let v = self.emit(b, Width::W64, |dst| InstKind::BinOp { op, dst, lhs, rhs });
                self.write_reg(dst, v)?;
                self.flags = FlagSrc::None;
            }
            Inst::AluRM { op, dst, mem } => {
                let lhs = self.read_reg(b, dst)?;
                let addr = self.lift_addr(b, &mem)?;
                let rhs = self.emit(b, Width::W64, |dst| InstKind::Load {
                    dst,
                    addr,
                    width: Width::W64,
                });
                let op = Self::alu_binop(op);
                let v = self.emit(b, Width::W64, |dst| InstKind::BinOp { op, dst, lhs, rhs });
                self.write_reg(dst, v)?;
                self.flags = FlagSrc::None;
            }
            Inst::TestRR { a, b: tb } => {
                let av = self.read_reg(b, a)?;
                let bv = self.read_reg(b, tb)?;
                self.flags = FlagSrc::Test { a: av, b: bv };
            }
            Inst::ShiftRI { sh, dst, amt } => {
                // Immediate first, as in the compare arm above.
                let rhs = self.const_int(i64::from(amt), Width::W64);
                let lhs = self.read_reg(b, dst)?;
                let op = match sh {
                    Shift::Shl => BinOp::Shl,
                    Shift::Shr => BinOp::Shr,
                };
                let v = self.emit(b, Width::W64, |dst| InstKind::BinOp { op, dst, lhs, rhs });
                self.write_reg(dst, v)?;
                self.flags = FlagSrc::None;
            }
            // --- Control flow. ----------------------------------------
            Inst::Jcc { cc, rel } => {
                let cond = self.materialize_flags(b, cc)?;
                let target = self.branch_target(off, len, rel)?;
                let else_bb = self.block_of[target];
                let then_bb = if idx + 1 < n {
                    self.block_of[idx + 1]
                } else {
                    // Branch at the very end: no fallthrough exists; both
                    // arms go to the target.
                    else_bb
                };
                self.func.replace_terminator(
                    b,
                    Terminator::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    },
                );
                *terminated = true;
            }
            Inst::Jmp { rel } => {
                let target = self.branch_target(off, len, rel)?;
                self.func
                    .replace_terminator(b, Terminator::Br(self.block_of[target]));
                *terminated = true;
            }
            Inst::Call { rel } => {
                let addr = rip_target(self.image, self.func_index, (off + len) as u64, rel);
                if let Some(ti) = self.image.func_at_addr(addr) {
                    let target = &self.image.functions[ti];
                    let ret = if target.has_ret {
                        Some(Width::W64)
                    } else {
                        None
                    };
                    let nargs = target.nparams as usize;
                    self.finish_call(b, Callee::Direct(FuncId::from_index(ti)), nargs, ret)?;
                } else if let Some(ei) = self.image.plt_at_addr(addr) {
                    let decl = self.module.extern_decl(ExternId(ei as u32));
                    let nargs = self.image.externs[ei].nparams as usize;
                    let ret = decl.ret_width;
                    self.finish_call(b, Callee::Extern(ExternId(ei as u32)), nargs, ret)?;
                } else {
                    return err(format!(
                        "{}: call targets {addr:#x}, neither a function entry \
                         nor a PLT stub",
                        self.src.name
                    ));
                }
            }
            Inst::CallInd { reg } => {
                let fp = self.read_reg(b, reg)?;
                // Arity heuristic: the contiguous run of SysV argument
                // registers written since the last call. An indirect callee
                // is assumed to return a value (the conservative RetDec
                // choice — `rax` may or may not be read afterwards).
                let nargs = self.args_written.iter().take_while(|&&w| w).count();
                self.finish_call(b, Callee::Indirect(fp), nargs, Some(Width::W64))?;
            }
            Inst::Ret => {
                let val = if self.src.has_ret {
                    Some(self.read_reg(b, Gpr::RAX)?)
                } else {
                    None
                };
                self.func.replace_terminator(b, Terminator::Ret(val));
                *terminated = true;
            }
        }
        Ok(())
    }
}

/// What a `[rip+disp]` reference resolves to.
enum RipTarget {
    /// Global index plus byte offset into the region.
    Global(GlobalId, u64),
    /// A function entry.
    Func(FuncId),
}

/// The x86-64 frontend plugin: recognizes XLF images by their ELF magic
/// and lifts them via [`lift`].
#[derive(Clone, Copy, Debug, Default)]
pub struct X86Frontend;

impl Frontend for X86Frontend {
    fn name(&self) -> &'static str {
        "x86"
    }

    fn describe(&self) -> &'static str {
        "x86-64 subset (XLF ELF-subset container, magic \"\\x7fELF\")"
    }

    fn detects(&self, bytes: &[u8]) -> bool {
        bytes.starts_with(crate::image::MAGIC)
    }

    fn lift_bytes(&self, bytes: &[u8]) -> Result<Module, FrontendError> {
        let image =
            crate::image::decode_image(bytes).map_err(|e| FrontendError::new(e.to_string()))?;
        lift(&image).map_err(|e| FrontendError::new(e.message))
    }
}

#[cfg(test)]
mod tests {
    use manta_ir::CmpPred;

    use super::*;
    use crate::asm::assemble;

    fn lift_text(text: &str) -> Module {
        lift(&assemble(text).unwrap()).unwrap()
    }

    fn lift_err(text: &str) -> LiftError {
        lift(&assemble(text).unwrap()).unwrap_err()
    }

    #[test]
    fn lifts_straightline_function_with_call() {
        let m = lift_text(
            "module m\nextern malloc, 1, ret\nfunc f(1) -> ret {\n    mov rdi, rdi\n    call malloc\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        assert_eq!(f.params().len(), 1);
        assert!(f.insts().any(|i| matches!(i.kind, InstKind::Call { .. })));
        assert!(f
            .blocks()
            .any(|b| matches!(b.term, Terminator::Ret(Some(_)))));
    }

    #[test]
    fn jcc_materializes_cmp_and_condbr() {
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    cmp rdi, 0\n    je zero\n    mov rax, 1\n    ret\nzero:\n    mov rax, 2\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        // `je` lifts as the negated predicate: fallthrough iff `rdi != 0`.
        assert!(f.insts().any(|i| matches!(
            i.kind,
            InstKind::Cmp {
                pred: CmpPred::Ne,
                ..
            }
        )));
        assert!(f
            .blocks()
            .any(|b| matches!(b.term, Terminator::CondBr { .. })));
    }

    #[test]
    fn branch_join_builds_phi() {
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    cmp rdi, 0\n    je zero\n    mov rcx, 1\n    jmp done\nzero:\n    mov rcx, 2\ndone:\n    mov rax, rcx\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        let phis = f
            .insts()
            .filter(|i| matches!(i.kind, InstKind::Phi { .. }))
            .count();
        assert_eq!(phis, 1, "one phi for rcx at the join");
    }

    #[test]
    fn loop_carried_value_builds_phi() {
        let m = lift_text(
            "module m\nfunc count(1) -> ret {\nhead:\n    cmp rdi, 0\n    je done\n    sub rdi, 1\n    jmp head\ndone:\n    mov rax, rdi\n    ret\n}\n",
        );
        let f = m.function_by_name("count").unwrap();
        assert!(
            f.insts().any(|i| matches!(i.kind, InstKind::Phi { .. })),
            "loop-carried rdi needs a phi"
        );
    }

    #[test]
    fn test_jne_lifts_like_brz() {
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    test rdi, rdi\n    je out\n    mov rax, 1\n    ret\nout:\n    mov rax, 0\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        // `test r, r; je` is a zero test: cmp (rdi != 0) like SB's brz.
        assert!(f.insts().any(|i| matches!(
            i.kind,
            InstKind::Cmp {
                pred: CmpPred::Ne,
                ..
            }
        )));
    }

    #[test]
    fn sub_registers_lift_as_masked_views() {
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    movzx rax, dil\n    mov ecx, eax\n    mov rax, rcx\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        // movzx rax, dil → and(rdi, 0xff) at W8; mov ecx, eax → and at W32.
        let masks: Vec<Width> = f
            .insts()
            .filter_map(|i| match i.kind {
                InstKind::BinOp {
                    op: BinOp::And,
                    dst,
                    ..
                } => Some(f.value(dst).width),
                _ => None,
            })
            .collect();
        assert_eq!(masks, vec![Width::W8, Width::W32]);
    }

    #[test]
    fn movsx_register_form_lifts_as_a_shift_pair() {
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    movsx rax, dil\n    add rax, rdi\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        // movsx rax, dil → (rdi << 56) >> 56, never an And mask — the
        // extension feeds the add directly.
        let ops: Vec<BinOp> = f
            .insts()
            .filter_map(|i| match i.kind {
                InstKind::BinOp { op, .. } => Some(op),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec![BinOp::Shl, BinOp::Shr, BinOp::Add]);
        let amounts: Vec<i64> = f
            .insts()
            .filter_map(|i| match i.kind {
                InstKind::BinOp {
                    op: BinOp::Shl | BinOp::Shr,
                    rhs,
                    ..
                } => match f.value(rhs).kind {
                    ValueKind::Const(manta_ir::ConstKind::Int(c)) => Some(c),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert_eq!(amounts, vec![56, 56]);
    }

    #[test]
    fn movsx_memory_form_stays_a_narrow_load() {
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    push rbp\n    mov rbp, rsp\n    sub rsp, 8\n    mov qword [rbp-8], rdi\n    movsx rax, dword [rbp-8]\n    mov rsp, rbp\n    pop rbp\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        assert!(f.insts().any(|i| matches!(
            i.kind,
            InstKind::Load {
                width: Width::W32,
                ..
            }
        )));
        assert!(!f
            .insts()
            .any(|i| matches!(i.kind, InstKind::BinOp { op: BinOp::Shl, .. })));
    }

    #[test]
    fn rbp_locals_become_frame_allocas() {
        let m = lift_text(
            "module m\nextern observe, 1, void\nfunc f(1) -> ret {\n    push rbp\n    mov rbp, rsp\n    sub rsp, 32\n    lea rax, [rbp-16]\n    mov qword [rbp-16], rdi\n    mov qword [rbp-24], rdi\n    mov rdi, rax\n    call observe\n    mov rax, qword [rbp-24]\n    mov rsp, rbp\n    pop rbp\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        // One lea-rooted slot ([rbp-16), 16 bytes) + one residual spill
        // area covering [rbp-24, rbp-16).
        let sizes: Vec<u64> = f
            .insts()
            .filter_map(|i| match i.kind {
                InstKind::Alloca { size, .. } => Some(size),
                _ => None,
            })
            .collect();
        assert_eq!(sizes, vec![8, 16], "residual spill first, then the slot");
        // The store at [rbp-16] goes straight to the slot alloca (no gep);
        // the [rbp-24] access hits the residual area.
        assert!(f.insts().any(|i| matches!(i.kind, InstKind::Store { .. })));
    }

    #[test]
    fn direct_only_rbp_frame_is_one_residual_alloca() {
        let m = lift_text(
            "module m\nfunc f(1) -> ret {\n    push rbp\n    mov rbp, rsp\n    mov qword [rbp-8], rdi\n    mov rax, qword [rbp-8]\n    pop rbp\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        let allocas: Vec<u64> = f
            .insts()
            .filter_map(|i| match i.kind {
                InstKind::Alloca { size, .. } => Some(size),
                _ => None,
            })
            .collect();
        assert_eq!(allocas, vec![8]);
    }

    #[test]
    fn lea_func_marks_address_taken_and_icall_recovers_arity() {
        let m = lift_text(
            "module m\nfunc helper(1) -> ret {\n    mov rax, rdi\n    ret\n}\nfunc f(0) -> ret {\n    lea rcx, func helper\n    mov rdi, 7\n    call rcx\n    ret\n}\n",
        );
        assert!(m.function_by_name("helper").unwrap().is_address_taken());
        let f = m.function_by_name("f").unwrap();
        let icall_args = f
            .insts()
            .find_map(|i| match &i.kind {
                InstKind::Call {
                    callee: Callee::Indirect(_),
                    args,
                    ..
                } => Some(args.len()),
                _ => None,
            })
            .expect("indirect call lifted");
        assert_eq!(icall_args, 1, "mov rdi, 7 before `call rcx` means 1 arg");
    }

    #[test]
    fn global_lea_and_interior_access() {
        let m = lift_text(
            "module m\nglobal table, 64\nfunc f(0) -> ret {\n    lea rax, global table\n    mov rcx, qword [rax+8]\n    ret\n}\n",
        );
        let f = m.function_by_name("f").unwrap();
        assert!(f
            .values()
            .any(|(_, v)| matches!(v.kind, ValueKind::GlobalAddr(_))));
        assert!(f
            .insts()
            .any(|i| matches!(i.kind, InstKind::Gep { offset: 8, .. })));
    }

    #[test]
    fn jcc_without_flags_is_rejected() {
        let e = lift_err(
            "module m\nfunc f(1) -> ret {\n    mov rax, rdi\n    je out\nout:\n    ret\n}\n",
        );
        assert!(e.message.contains("without a live cmp/test"), "{e}");
    }

    #[test]
    fn rsp_access_is_rejected() {
        let e = lift_err("module m\nfunc f(1) -> ret {\n    mov rax, qword [rsp+8]\n    ret\n}\n");
        assert!(e.message.contains("rsp"), "{e}");
    }

    #[test]
    fn rbp_access_without_prologue_is_rejected() {
        let e = lift_err("module m\nfunc f(1) -> ret {\n    mov qword [rbp-8], rdi\n    ret\n}\n");
        assert!(e.message.contains("prologue"), "{e}");
    }

    #[test]
    fn undefined_register_reads_become_undef() {
        let m = lift_text("module m\nfunc f(0) -> ret {\n    mov rax, r9\n    ret\n}\n");
        let f = m.function_by_name("f").unwrap();
        assert!(f
            .values()
            .any(|(_, v)| matches!(v.kind, ValueKind::Const(ConstKind::Undef))));
    }

    #[test]
    fn frontend_detects_and_lifts() {
        let img = assemble("module m\nfunc f(0) -> void {\n    ret\n}\n").unwrap();
        let bytes = crate::image::encode_image(&img);
        let fe = X86Frontend;
        assert!(fe.detects(&bytes));
        assert!(!fe.detects(b"SBF1"));
        let m = fe.lift_bytes(&bytes).unwrap();
        assert!(m.function_by_name("f").is_some());
    }
}
