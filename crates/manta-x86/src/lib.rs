//! # manta-x86
//!
//! An x86-64-subset frontend: byte-level disassembler, line-oriented
//! assembler, ELF-subset image container, and a lifter into `manta-ir` SSA.
//! This is the second [`manta_ir::Frontend`] next to SB-ISA (`manta-isa`)
//! and is differentially tested against it: the workloads generator emits
//! every program in both encodings and the engine must infer bit-identical
//! types from either.
//!
//! * [`inst`] — the instruction subset (mov/movzx/movsx/lea, the classic
//!   ALU group, cmp/test + jcc, push/pop, call/ret; rel32 control flow).
//! * [`encode`]/[`decode`] — canonical byte codec with REX, ModRM/SIB and
//!   RIP-relative addressing; `decode(bytes)` re-encodes byte-identically.
//! * [`image`] — the XLF ELF-subset container: text blob + function table +
//!   PLT stubs + globals, plus the [`image::ImageBuilder`] linker layer.
//! * [`asm`] — a line-oriented Intel-syntax assembler with labels.
//! * [`lift`] — decoder + Braun SSA construction into a [`manta_ir::Module`]:
//!   eflags materialize as SSA booleans at their consuming `jcc`,
//!   sub-registers become masked views, `rbp`-relative slots become frame
//!   allocas, and the SysV ABI maps registers to parameters and returns.

#![warn(missing_docs)]

pub mod asm;
pub mod decode;
pub mod encode;
pub mod image;
pub mod inst;
pub mod lift;

pub use asm::{assemble, AsmError};
pub use decode::{decode_all, decode_one, DecodeError};
pub use encode::{encode, encode_to_vec, encoded_len};
pub use image::{
    decode_image, encode_image, Image, ImageBuilder, ImageError, ImageExtern, ImageFunction,
    ImageGlobal, SymInst,
};
pub use inst::{Alu, Cc, Gpr, Inst, Mem, OpWidth, Rm, Shift};
pub use lift::{lift, LiftError, X86Frontend};
