//! The XLF ("x86 linked format") container — an ELF-subset image.
//!
//! An [`Image`] holds a whole x86-64 program the way a stripped ELF binary
//! would: a raw `.text` byte blob, a function table (symbol, entry offset,
//! length), PLT stubs for external calls, and a data segment of globals.
//! Function and global *names* are carried for evaluation bookkeeping only
//! (the ground-truth oracle keys on them); the lifter never consumes types
//! from the image because the format has none.
//!
//! The address-space layout is fixed, mirroring a small non-PIE executable:
//!
//! | segment | base           | contents                          |
//! |---------|----------------|-----------------------------------|
//! | PLT     | `0x40_0000`    | one 16-byte stub slot per extern  |
//! | text    | `0x40_1000`    | function bodies, 16-byte aligned  |
//! | data    | `0x60_0000`    | globals, 8-byte aligned           |
//!
//! [`ImageBuilder`] is the linker layer: it lays out functions, resolves
//! labels and inter-function/extern/global references in [`SymInst`] streams
//! to rel32 displacements, and produces the final byte image. Both the
//! line-oriented assembler (`asm`) and the workloads emitter sit on top of
//! it.

use std::collections::HashMap;
use std::fmt;

use crate::encode::{encode, encoded_len};
use crate::inst::{Cc, Gpr, Inst, Mem};

/// Magic bytes identifying an XLF image (the ELF ident prefix).
pub const MAGIC: &[u8; 4] = b"\x7fELF";
/// ELF ident continuation: 64-bit, little-endian, version 1, SysV ABI.
const IDENT_TAIL: [u8; 4] = [2, 1, 1, 0];
/// `e_machine` for x86-64.
const EM_X86_64: u16 = 0x3e;

/// Base virtual address of the PLT; stub `i` sits at `PLT_BASE + 16 * i`.
pub const PLT_BASE: u64 = 0x40_0000;
/// Size of one PLT stub slot.
pub const PLT_STUB_SIZE: u64 = 16;
/// Base virtual address of the text segment.
pub const TEXT_BASE: u64 = 0x40_1000;
/// Base virtual address of the data segment (globals).
pub const DATA_BASE: u64 = 0x60_0000;

/// An external declaration — one PLT stub.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageExtern {
    /// Symbol name.
    pub name: String,
    /// Parameter count (ABI-visible).
    pub nparams: u8,
    /// Whether a value is returned in `rax`.
    pub has_ret: bool,
}

/// A global region in the data segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageGlobal {
    /// Symbol name.
    pub name: String,
    /// Region size in bytes.
    pub size: u64,
}

/// A function table entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageFunction {
    /// Symbol name.
    pub name: String,
    /// Number of SysV register parameters (`rdi`, `rsi`, ...).
    pub nparams: u8,
    /// Whether the function returns a value in `rax`.
    pub has_ret: bool,
    /// Entry offset into the text blob.
    pub offset: u32,
    /// Body length in bytes.
    pub len: u32,
}

/// A whole x86-64 program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Image {
    /// Program name.
    pub name: String,
    /// External declarations, in PLT order.
    pub externs: Vec<ImageExtern>,
    /// Globals, in data-segment order.
    pub globals: Vec<ImageGlobal>,
    /// Function table.
    pub functions: Vec<ImageFunction>,
    /// The text segment bytes (functions plus `0xCC` alignment padding).
    pub text: Vec<u8>,
}

impl Image {
    /// Virtual address of function `i`'s entry.
    pub fn func_addr(&self, i: usize) -> u64 {
        TEXT_BASE + self.functions[i].offset as u64
    }

    /// Virtual address of extern `i`'s PLT stub.
    pub fn plt_addr(&self, i: usize) -> u64 {
        PLT_BASE + PLT_STUB_SIZE * i as u64
    }

    /// Virtual address of global `i` (8-byte aligned layout).
    pub fn global_addr(&self, i: usize) -> u64 {
        let mut addr = DATA_BASE;
        for g in &self.globals[..i] {
            addr += (g.size + 7) & !7;
        }
        addr
    }

    /// Function index whose *entry* is at `addr`, if any.
    pub fn func_at_addr(&self, addr: u64) -> Option<usize> {
        (0..self.functions.len()).find(|&i| self.func_addr(i) == addr)
    }

    /// Extern index whose PLT stub starts at `addr`, if any.
    pub fn plt_at_addr(&self, addr: u64) -> Option<usize> {
        if addr < PLT_BASE || !addr.is_multiple_of(PLT_STUB_SIZE) {
            return None;
        }
        let i = ((addr - PLT_BASE) / PLT_STUB_SIZE) as usize;
        (i < self.externs.len()).then_some(i)
    }

    /// Global index containing `addr`, with the offset into the region.
    pub fn global_at_addr(&self, addr: u64) -> Option<(usize, u64)> {
        for i in 0..self.globals.len() {
            let base = self.global_addr(i);
            if addr >= base && addr < base + self.globals[i].size.max(1) {
                return Some((i, addr - base));
            }
        }
        None
    }

    /// Total text size in bytes.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }
}

/// Image encoding/decoding or linking failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid XLF image: {}", self.message)
    }
}

impl std::error::Error for ImageError {}

fn err<T>(message: impl Into<String>) -> Result<T, ImageError> {
    Err(ImageError {
        message: message.into(),
    })
}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

/// Serializes `image` to bytes.
pub fn encode_image(image: &Image) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&IDENT_TAIL);
    buf.extend_from_slice(&EM_X86_64.to_le_bytes());
    put_str(&mut buf, &image.name);
    buf.extend_from_slice(&(image.externs.len() as u32).to_le_bytes());
    for e in &image.externs {
        put_str(&mut buf, &e.name);
        buf.push(e.nparams);
        buf.push(e.has_ret as u8);
    }
    buf.extend_from_slice(&(image.globals.len() as u32).to_le_bytes());
    for g in &image.globals {
        put_str(&mut buf, &g.name);
        buf.extend_from_slice(&g.size.to_le_bytes());
    }
    buf.extend_from_slice(&(image.functions.len() as u32).to_le_bytes());
    for f in &image.functions {
        put_str(&mut buf, &f.name);
        buf.push(f.nparams);
        buf.push(f.has_ret as u8);
        buf.extend_from_slice(&f.offset.to_le_bytes());
        buf.extend_from_slice(&f.len.to_le_bytes());
    }
    buf.extend_from_slice(&(image.text.len() as u32).to_le_bytes());
    buf.extend_from_slice(&image.text);
    buf
}

/// Deserializes an image from bytes.
///
/// # Errors
///
/// Returns [`ImageError`] for truncated or malformed input, including
/// function table entries that point outside the text blob.
pub fn decode_image(mut bytes: &[u8]) -> Result<Image, ImageError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return err("bad magic");
    }
    bytes = &bytes[4..];
    let Some((ident, rest)) = bytes.split_first_chunk::<4>() else {
        return err("truncated ident");
    };
    if *ident != IDENT_TAIL {
        return err("unsupported ELF class/data/version");
    }
    bytes = rest;
    if get_u16(&mut bytes)? != EM_X86_64 {
        return err("unsupported machine (want x86-64)");
    }
    let name = get_str(&mut bytes)?;
    let mut image = Image {
        name,
        ..Default::default()
    };
    let n_ext = get_u32(&mut bytes)? as usize;
    for _ in 0..n_ext {
        let name = get_str(&mut bytes)?;
        let nparams = get_u8(&mut bytes)?;
        let has_ret = get_u8(&mut bytes)? != 0;
        image.externs.push(ImageExtern {
            name,
            nparams,
            has_ret,
        });
    }
    let n_glob = get_u32(&mut bytes)? as usize;
    for _ in 0..n_glob {
        let name = get_str(&mut bytes)?;
        let size = get_u64(&mut bytes)?;
        image.globals.push(ImageGlobal { name, size });
    }
    let n_fn = get_u32(&mut bytes)? as usize;
    for _ in 0..n_fn {
        let name = get_str(&mut bytes)?;
        let nparams = get_u8(&mut bytes)?;
        let has_ret = get_u8(&mut bytes)? != 0;
        let offset = get_u32(&mut bytes)?;
        let len = get_u32(&mut bytes)?;
        image.functions.push(ImageFunction {
            name,
            nparams,
            has_ret,
            offset,
            len,
        });
    }
    let text_len = get_u32(&mut bytes)? as usize;
    if bytes.len() < text_len {
        return err("truncated text segment");
    }
    image.text = bytes[..text_len].to_vec();
    for f in &image.functions {
        let end = f.offset as u64 + f.len as u64;
        if end > image.text.len() as u64 {
            return err(format!(
                "function `{}` extends past the text segment",
                f.name
            ));
        }
    }
    Ok(image)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &mut &[u8]) -> Result<String, ImageError> {
    let len = get_u16(bytes)? as usize;
    if bytes.len() < len {
        return err("truncated string");
    }
    let s = String::from_utf8(bytes[..len].to_vec()).map_err(|_| ImageError {
        message: "non-utf8 string".into(),
    })?;
    *bytes = &bytes[len..];
    Ok(s)
}

macro_rules! getter {
    ($name:ident, $ty:ty, $size:expr) => {
        fn $name(bytes: &mut &[u8]) -> Result<$ty, ImageError> {
            let Some((head, rest)) = bytes.split_first_chunk::<$size>() else {
                return err("truncated input");
            };
            let v = <$ty>::from_le_bytes(*head);
            *bytes = rest;
            Ok(v)
        }
    };
}
getter!(get_u8, u8, 1);
getter!(get_u16, u16, 2);
getter!(get_u32, u32, 4);
getter!(get_u64, u64, 8);

// ---------------------------------------------------------------------------
// Linker layer
// ---------------------------------------------------------------------------

/// An instruction with possibly-symbolic operands, resolved by
/// [`ImageBuilder::build`]. All symbolic control-flow forms lower to fixed
/// rel32 encodings, so layout is single-pass.
#[derive(Clone, PartialEq, Debug)]
pub enum SymInst {
    /// A fully concrete instruction.
    Real(Inst),
    /// A label binding to the next instruction's address. Emits nothing.
    Label(String),
    /// `jmp <label>` within the function.
    JmpLabel(String),
    /// `j<cc> <label>` within the function.
    JccLabel(Cc, String),
    /// `call <function>` by name.
    CallFunc(String),
    /// `call <extern>` through its PLT stub.
    CallExtern(String),
    /// `lea <reg>, [rip + <function>]` — takes a function's address.
    LeaFunc(Gpr, String),
    /// `lea <reg>, [rip + <global>]` — takes a global's address.
    LeaGlobal(Gpr, String),
}

impl SymInst {
    /// Encoded length in bytes (labels are zero-sized).
    fn len(&self) -> usize {
        match self {
            SymInst::Real(inst) => encoded_len(inst),
            SymInst::Label(_) => 0,
            SymInst::JmpLabel(_) => 5,                          // E9 rel32
            SymInst::JccLabel(..) => 6,                         // 0F 8x rel32
            SymInst::CallFunc(_) | SymInst::CallExtern(_) => 5, // E8 rel32
            SymInst::LeaFunc(..) | SymInst::LeaGlobal(..) => 7, // REX.W 8D rip rel32
        }
    }
}

/// A function body awaiting layout.
struct PendingFunction {
    name: String,
    nparams: u8,
    has_ret: bool,
    body: Vec<SymInst>,
}

/// Builds an [`Image`] from symbolic function bodies, resolving labels and
/// cross-references to concrete rel32 displacements.
#[derive(Default)]
pub struct ImageBuilder {
    name: String,
    externs: Vec<ImageExtern>,
    globals: Vec<ImageGlobal>,
    funcs: Vec<PendingFunction>,
}

impl ImageBuilder {
    /// Starts a builder for a program called `name`.
    pub fn new(name: impl Into<String>) -> ImageBuilder {
        ImageBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares an external symbol; allocates the next PLT stub.
    pub fn declare_extern(&mut self, name: impl Into<String>, nparams: u8, has_ret: bool) {
        self.externs.push(ImageExtern {
            name: name.into(),
            nparams,
            has_ret,
        });
    }

    /// Declares a global region in the data segment.
    pub fn declare_global(&mut self, name: impl Into<String>, size: u64) {
        self.globals.push(ImageGlobal {
            name: name.into(),
            size,
        });
    }

    /// Adds a function body.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        nparams: u8,
        has_ret: bool,
        body: Vec<SymInst>,
    ) {
        self.funcs.push(PendingFunction {
            name: name.into(),
            nparams,
            has_ret,
            body,
        });
    }

    /// Lays out the text segment and resolves every symbolic reference.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] for undefined labels, functions, externs or
    /// globals, and duplicate labels within a function.
    pub fn build(self) -> Result<Image, ImageError> {
        // Pass 1: function entry offsets (16-byte aligned) and body lengths.
        let mut offsets = Vec::with_capacity(self.funcs.len());
        let mut cursor: u32 = 0;
        for f in &self.funcs {
            cursor = (cursor + 15) & !15;
            offsets.push(cursor);
            let len: usize = f.body.iter().map(SymInst::len).sum();
            cursor += len as u32;
        }

        let func_index: HashMap<&str, usize> = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();
        let extern_index: HashMap<&str, usize> = self
            .externs
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.as_str(), i))
            .collect();

        let image_skeleton = Image {
            name: self.name.clone(),
            externs: self.externs.clone(),
            globals: self.globals.clone(),
            functions: Vec::new(),
            text: Vec::new(),
        };
        let global_index: HashMap<&str, usize> = self
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.as_str(), i))
            .collect();

        // Pass 2: emit bytes with every reference resolved.
        let mut text: Vec<u8> = Vec::with_capacity(cursor as usize);
        let mut functions = Vec::with_capacity(self.funcs.len());
        for (fi, f) in self.funcs.iter().enumerate() {
            while text.len() < offsets[fi] as usize {
                text.push(0xcc); // int3 padding between functions
            }
            let func_base = TEXT_BASE + offsets[fi] as u64;

            // Local label offsets within the function body.
            let mut labels: HashMap<&str, u64> = HashMap::new();
            let mut local: u64 = 0;
            for si in &f.body {
                if let SymInst::Label(l) = si {
                    if labels.insert(l.as_str(), local).is_some() {
                        return err(format!("duplicate label `{l}` in function `{}`", f.name));
                    }
                } else {
                    local += si.len() as u64;
                }
            }
            let body_len = local;

            let rel32 = |target: u64, next_addr: u64| -> Result<i32, ImageError> {
                let delta = target as i64 - next_addr as i64;
                i32::try_from(delta).map_err(|_| ImageError {
                    message: format!("rel32 overflow reaching {target:#x}"),
                })
            };

            local = 0;
            for si in &f.body {
                let next_addr = func_base + local + si.len() as u64;
                match si {
                    SymInst::Real(inst) => encode(inst, &mut text),
                    SymInst::Label(_) => {}
                    SymInst::JmpLabel(l) | SymInst::JccLabel(_, l) => {
                        let target = func_base
                            + *labels.get(l.as_str()).ok_or_else(|| ImageError {
                                message: format!("undefined label `{l}` in function `{}`", f.name),
                            })?;
                        let rel = rel32(target, next_addr)?;
                        let inst = match si {
                            SymInst::JmpLabel(_) => Inst::Jmp { rel },
                            SymInst::JccLabel(cc, _) => Inst::Jcc { cc: *cc, rel },
                            _ => unreachable!(),
                        };
                        encode(&inst, &mut text);
                    }
                    SymInst::CallFunc(name) => {
                        let ti = *func_index.get(name.as_str()).ok_or_else(|| ImageError {
                            message: format!("call to undefined function `{name}`"),
                        })?;
                        let rel = rel32(TEXT_BASE + offsets[ti] as u64, next_addr)?;
                        encode(&Inst::Call { rel }, &mut text);
                    }
                    SymInst::CallExtern(name) => {
                        let ei = *extern_index.get(name.as_str()).ok_or_else(|| ImageError {
                            message: format!("call to undeclared extern `{name}`"),
                        })?;
                        let rel = rel32(PLT_BASE + PLT_STUB_SIZE * ei as u64, next_addr)?;
                        encode(&Inst::Call { rel }, &mut text);
                    }
                    SymInst::LeaFunc(dst, name) => {
                        let ti = *func_index.get(name.as_str()).ok_or_else(|| ImageError {
                            message: format!("lea of undefined function `{name}`"),
                        })?;
                        let disp = rel32(TEXT_BASE + offsets[ti] as u64, next_addr)?;
                        encode(
                            &Inst::Lea {
                                dst: *dst,
                                mem: Mem::Rip { disp },
                            },
                            &mut text,
                        );
                    }
                    SymInst::LeaGlobal(dst, name) => {
                        let gi = *global_index.get(name.as_str()).ok_or_else(|| ImageError {
                            message: format!("lea of undeclared global `{name}`"),
                        })?;
                        let disp = rel32(image_skeleton.global_addr(gi), next_addr)?;
                        encode(
                            &Inst::Lea {
                                dst: *dst,
                                mem: Mem::Rip { disp },
                            },
                            &mut text,
                        );
                    }
                }
                local += si.len() as u64;
            }
            debug_assert_eq!(
                text.len(),
                offsets[fi] as usize + body_len as usize,
                "layout length drifted in `{}`",
                f.name
            );
            functions.push(ImageFunction {
                name: f.name.clone(),
                nparams: f.nparams,
                has_ret: f.has_ret,
                offset: offsets[fi],
                len: body_len as u32,
            });
        }

        Ok(Image {
            name: self.name,
            externs: self.externs,
            globals: self.globals,
            functions,
            text,
        })
    }
}

/// Resolves a RIP-relative displacement: `inst_end_offset` is the offset of
/// the byte after the instruction within function `func_index`.
pub fn rip_target(image: &Image, func_index: usize, inst_end_offset: u64, disp: i32) -> u64 {
    (TEXT_BASE + image.functions[func_index].offset as u64 + inst_end_offset)
        .wrapping_add(disp as i64 as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::OpWidth;

    fn sample() -> Image {
        let mut b = ImageBuilder::new("sample");
        b.declare_extern("malloc", 1, true);
        b.declare_global("table", 64);
        b.function(
            "helper",
            1,
            true,
            vec![
                SymInst::Real(Inst::MovRR {
                    w: OpWidth::B64,
                    dst: Gpr::RAX,
                    src: Gpr::RDI,
                }),
                SymInst::Real(Inst::Ret),
            ],
        );
        b.function(
            "main",
            0,
            true,
            vec![
                SymInst::Real(Inst::MovRI {
                    dst: Gpr::RDI,
                    imm: 16,
                }),
                SymInst::CallExtern("malloc".into()),
                SymInst::Real(Inst::TestRR {
                    a: Gpr::RAX,
                    b: Gpr::RAX,
                }),
                SymInst::JccLabel(Cc::E, "out".into()),
                SymInst::Real(Inst::MovRR {
                    w: OpWidth::B64,
                    dst: Gpr::RDI,
                    src: Gpr::RAX,
                }),
                SymInst::CallFunc("helper".into()),
                SymInst::Label("out".into()),
                SymInst::LeaGlobal(Gpr::RSI, "table".into()),
                SymInst::Real(Inst::Ret),
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn codec_roundtrip() {
        let img = sample();
        let bytes = encode_image(&img);
        assert!(bytes.starts_with(MAGIC));
        let back = decode_image(&bytes).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode_image(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_image(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn functions_are_16_aligned_and_within_text() {
        let img = sample();
        for f in &img.functions {
            assert_eq!(f.offset % 16, 0, "{}", f.name);
            assert!((f.offset + f.len) as usize <= img.text.len());
        }
    }

    #[test]
    fn call_rel32_reaches_function_entry() {
        let img = sample();
        let main = &img.functions[1];
        let code = &img.text[main.offset as usize..(main.offset + main.len) as usize];
        // Find the second E8 (call helper; the first is call malloc@plt).
        let mut calls = Vec::new();
        let mut pos = 0;
        while pos < code.len() {
            let (inst, len) = crate::decode::decode_one(&code[pos..]).unwrap();
            if let Inst::Call { rel } = inst {
                let target = (TEXT_BASE + main.offset as u64 + pos as u64 + len as u64)
                    .wrapping_add(rel as i64 as u64);
                calls.push(target);
            }
            pos += len;
        }
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0], img.plt_addr(0));
        assert_eq!(calls[1], img.func_addr(0));
    }

    #[test]
    fn undefined_references_error() {
        let mut b = ImageBuilder::new("bad");
        b.function("f", 0, false, vec![SymInst::JmpLabel("nowhere".into())]);
        assert!(b.build().unwrap_err().message.contains("nowhere"));

        let mut b = ImageBuilder::new("bad2");
        b.function("f", 0, false, vec![SymInst::CallFunc("ghost".into())]);
        assert!(b.build().unwrap_err().message.contains("ghost"));
    }

    #[test]
    fn global_layout_is_8_aligned() {
        let mut b = ImageBuilder::new("g");
        b.declare_global("a", 3);
        b.declare_global("b", 16);
        b.function("f", 0, false, vec![SymInst::Real(Inst::Ret)]);
        let img = b.build().unwrap();
        assert_eq!(img.global_addr(0), DATA_BASE);
        assert_eq!(img.global_addr(1), DATA_BASE + 8);
        assert_eq!(img.global_at_addr(DATA_BASE + 9), Some((1, 1)));
    }
}
